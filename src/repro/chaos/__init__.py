"""Chaos engineering for the simulated cluster.

The paper's flow control and incremental termination protocol are sound
because the transport is ordered and reliable (InfiniBand RC).  This
package makes that assumption *testable* instead of baked in: a
seed-driven :class:`FaultPlan` injects message drops, duplications,
reordering delays, machine stalls, and hard crashes into the simulated
network, and the reliability layer (``repro.runtime.reliability``)
restores the FIFO-reliable abstraction on top — so every query must
prove it returns exact results under imperfect delivery.

Typical use::

    from repro import ClusterConfig, run_query
    from repro.chaos import ChaosConfig

    config = ClusterConfig(
        num_machines=4, seed=7, reliability=True,
        chaos=ChaosConfig(drop_rate=0.05, duplicate_rate=0.02,
                          reorder_rate=0.1),
    )
    result = run_query(graph, pgql, config)   # exact results, or
                                              # QueryAborted — never a hang

From the shell: ``python -m repro chaos --profile soak --verify ...``.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.network import ChaosNetwork
from repro.chaos.plan import PROFILES, ChaosConfig, FaultPlan, profile

__all__ = [
    "ChaosConfig",
    "ChaosController",
    "ChaosNetwork",
    "FaultPlan",
    "PROFILES",
    "profile",
]
