"""A :class:`~repro.cluster.network.Network` that injects faults.

``ChaosNetwork`` keeps the base cost model (latency, bandwidth, NIC
serialization) but breaks the delivery discipline according to a
:class:`~repro.chaos.plan.FaultPlan`:

* **drop** — the envelope is never enqueued; the sender still paid its
  NIC slot and remains oblivious (exactly like a lost frame);
* **duplicate** — a second copy is enqueued with an independent delay,
  bypassing the FIFO clamp (a retransmission-style spurious copy);
* **delay/reorder** — the original is pushed past the per-channel FIFO
  clock, so later traffic on the same channel can overtake it.

Every injection is counted and, when a tracer is installed, emitted as
a typed ``repro.obs`` event so faults show up on the query timeline.
"""

from repro.cluster.network import Network
from repro.obs.events import MessageDelayed, MessageDropped, MessageDuplicated


def _payload_name(payload):
    return getattr(payload, "trace_name", type(payload).__name__)


class ChaosNetwork(Network):
    """Latency/bandwidth network with seeded fault injection."""

    def __init__(self, latency=0, bandwidth=0, sender_rate=8, plan=None,
                 tracer=None):
        super().__init__(latency=latency, bandwidth=bandwidth,
                         sender_rate=sender_rate)
        if plan is None:
            raise ValueError("ChaosNetwork requires a FaultPlan")
        self._plan = plan
        self.tracer = tracer

    @property
    def plan(self):
        return self._plan

    def send(self, now, src, dst, payload, size=0):
        base = (
            self._injection_tick(now, src)
            + self._latency
            + self._transfer_ticks(size)
        )
        drop, duplicate, delay, dup_delay = self._plan.message_fate(
            now, src, dst
        )
        tracer = self.tracer
        if delay:
            # A delayed message escapes the FIFO clamp: that is exactly
            # how it ends up overtaken by later traffic on its channel.
            deliver_at = base + delay
            self.messages_delayed += 1
            if tracer is not None:
                tracer.emit(MessageDelayed(
                    now, src, dst, _payload_name(payload), delay
                ))
        else:
            deliver_at = self._fifo_clamp((src, dst), base)
        if drop:
            self.messages_dropped += 1
            if tracer is not None:
                tracer.emit(MessageDropped(
                    now, src, dst, _payload_name(payload)
                ))
        else:
            self._push(src, dst, payload, deliver_at, size, sent_at=now)
        if duplicate:
            self.messages_duplicated += 1
            if tracer is not None:
                tracer.emit(MessageDuplicated(
                    now, src, dst, _payload_name(payload), dup_delay
                ))
            self._push(src, dst, payload, base + dup_delay, size,
                       sent_at=now)
        return deliver_at
