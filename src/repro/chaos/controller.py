"""Machine-level fault scripting: stalls and crashes.

The :class:`ChaosController` is owned by the simulator and consulted
once per tick.  It walks the fault plan's scripted stall/crash schedule,
keeps the set of currently-frozen machines, and emits the corresponding
trace events.  A *stall* freezes a machine's workers for a tick range —
its NIC keeps receiving, so inboxes fill and peers' flow-control
windows saturate until it resumes.  A *crash* is permanent and makes
the running query unrecoverable; the simulator turns it into a
structured :class:`~repro.errors.QueryAborted`.
"""

from repro.errors import ClusterConfigError
from repro.obs.events import MachineCrashed, MachineResumed, MachineStalled


class ChaosController:
    """Applies a fault plan's scripted machine events tick by tick."""

    def __init__(self, plan, num_machines, tracer=None):
        config = plan.config
        for machine, _start, _duration in config.stalls:
            if machine >= num_machines:
                raise ClusterConfigError(
                    "stall targets machine %d of %d" % (machine, num_machines)
                )
        for machine, _tick in config.crashes:
            if machine >= num_machines:
                raise ClusterConfigError(
                    "crash targets machine %d of %d" % (machine, num_machines)
                )
        self._tracer = tracer
        #: Pending scripted events, soonest last (popped from the end).
        self._pending_stalls = sorted(
            ((start, machine, duration)
             for machine, start, duration in config.stalls),
            reverse=True,
        )
        self._pending_crashes = sorted(
            ((tick, machine) for machine, tick in config.crashes),
            reverse=True,
        )
        #: machine -> first tick it runs again, while stalled.
        self._stall_until = {}
        self.stalls_applied = 0

    def begin_tick(self, now):
        """Apply events scheduled at or before *now*.

        Returns the id of a machine that crashed this tick, or ``None``.
        The caller aborts the query on a crash, so at most one crash is
        ever reported.
        """
        while self._pending_stalls and self._pending_stalls[-1][0] <= now:
            start, machine, duration = self._pending_stalls.pop()
            until = max(now, start) + duration
            previous = self._stall_until.get(machine, 0)
            self._stall_until[machine] = max(previous, until)
            self.stalls_applied += 1
            if self._tracer is not None:
                self._tracer.emit(MachineStalled(
                    now, machine, self._stall_until[machine]
                ))
        expired = [
            machine for machine, until in self._stall_until.items()
            if until <= now
        ]
        for machine in expired:
            del self._stall_until[machine]
            if self._tracer is not None:
                self._tracer.emit(MachineResumed(now, machine))
        if self._pending_crashes and self._pending_crashes[-1][0] <= now:
            _tick, machine = self._pending_crashes.pop()
            if self._tracer is not None:
                self._tracer.emit(MachineCrashed(now, machine))
            return machine
        return None

    def is_stalled(self, machine, now):
        until = self._stall_until.get(machine)
        return until is not None and now < until

    def next_event_tick(self, now):
        """Earliest scripted transition after *now*, or ``None``.

        The simulator folds this into its fast-forward target so an
        otherwise idle cluster still wakes up to resume a stalled
        machine or apply a scheduled crash.
        """
        candidates = []
        if self._pending_stalls:
            candidates.append(self._pending_stalls[-1][0])
        if self._pending_crashes:
            candidates.append(self._pending_crashes[-1][0])
        candidates.extend(self._stall_until.values())
        future = [tick for tick in candidates if tick > now]
        return min(future) if future else None
