"""Deterministic, seed-driven fault plans.

A :class:`ChaosConfig` declares *what* can go wrong — message drop /
duplication / reordering rates, scripted machine stalls, and hard
crashes.  A :class:`FaultPlan` is the seeded *realization* of such a
config for one run: every decision (drop this message? how many ticks
of delay?) is drawn from one ``random.Random(seed)`` stream, so a given
``(config, seed)`` pair injects exactly the same faults every time —
chaos runs are replayable bug reports, not flaky ones.

Named profiles (:data:`PROFILES`) give the CLI and CI one-word handles
for common fault mixes.
"""

import random
from dataclasses import dataclass, field

from repro.errors import ClusterConfigError


@dataclass
class ChaosConfig:
    """Declarative fault model for one simulated run.

    Rates are per network message (work and control traffic alike).
    ``stalls`` and ``crashes`` are scripted: a stall freezes a machine's
    workers for a tick range (its NIC keeps receiving, so delivery
    buffers fill up — a GC pause / scheduler hiccup); a crash kills the
    machine for good, which is unrecoverable for a running query.
    """

    #: Seed for the fault plan's RNG stream; ``None`` falls back to the
    #: cluster-wide ``ClusterConfig.seed`` so one knob replays a run.
    seed: int = None
    #: Probability a message silently vanishes.
    drop_rate: float = 0.0
    #: Probability a delivered message arrives a second time.
    duplicate_rate: float = 0.0
    #: Probability a message is delayed past later traffic (reordering).
    reorder_rate: float = 0.0
    #: Max extra delay ticks for reordered messages and duplicate copies.
    max_delay: int = 12
    #: Scripted compute stalls: tuple of ``(machine, start_tick, duration)``.
    stalls: tuple = field(default_factory=tuple)
    #: Scripted hard crashes: tuple of ``(machine, tick)``.
    crashes: tuple = field(default_factory=tuple)

    def __post_init__(self):
        self.stalls = tuple(tuple(spec) for spec in self.stalls)
        self.crashes = tuple(tuple(spec) for spec in self.crashes)
        self.validate()

    def validate(self):
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ClusterConfigError("%s must be in [0, 1)" % name)
        if self.max_delay < 1:
            raise ClusterConfigError("max_delay must be >= 1")
        for machine, start, duration in self.stalls:
            if start < 0 or duration < 1 or machine < 0:
                raise ClusterConfigError(
                    "bad stall spec (machine=%r, start=%r, duration=%r)"
                    % (machine, start, duration)
                )
        for machine, tick in self.crashes:
            if tick < 0 or machine < 0:
                raise ClusterConfigError(
                    "bad crash spec (machine=%r, tick=%r)" % (machine, tick)
                )
        return self

    @property
    def has_message_faults(self):
        """True when delivery can be imperfect (needs the reliability
        layer to keep the termination protocol sound)."""
        return bool(self.drop_rate or self.duplicate_rate
                    or self.reorder_rate)

    def replace(self, **changes):
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


#: Named fault mixes for the CLI (``repro chaos --profile``) and CI.
PROFILES = {
    "drop": dict(drop_rate=0.05),
    "dup": dict(duplicate_rate=0.05),
    "reorder": dict(reorder_rate=0.15),
    "drop-dup": dict(drop_rate=0.05, duplicate_rate=0.02),
    "soak": dict(drop_rate=0.05, duplicate_rate=0.02, reorder_rate=0.10),
}


def profile(name, seed=None, **overrides):
    """The named fault profile as a :class:`ChaosConfig`."""
    try:
        base = dict(PROFILES[name])
    except KeyError:
        raise ClusterConfigError(
            "unknown chaos profile %r (have: %s)"
            % (name, ", ".join(sorted(PROFILES)))
        )
    base.update(overrides)
    return ChaosConfig(seed=seed, **base)


class FaultPlan:
    """Seeded realization of a :class:`ChaosConfig` for one run.

    All randomness lives here; the network and controller only apply
    the plan's decisions.  Decisions are drawn in simulation order,
    which is itself deterministic, so the whole injection schedule is a
    pure function of ``(config, seed)``.
    """

    def __init__(self, config, default_seed=0):
        self.config = config
        self.seed = config.seed if config.seed is not None else default_seed
        self._rng = random.Random(self.seed)

    def message_fate(self, now, src, dst):
        """Decide the fate of one message: ``(drop, duplicate, delay,
        dup_delay)``.

        A dropped message is never also duplicated (the fault models a
        lost frame); duplicate copies and reordered originals get an
        independent delay draw each.
        """
        config = self.config
        rng = self._rng
        drop = bool(config.drop_rate) and rng.random() < config.drop_rate
        duplicate = (
            not drop
            and bool(config.duplicate_rate)
            and rng.random() < config.duplicate_rate
        )
        delay = 0
        if config.reorder_rate and rng.random() < config.reorder_rate:
            delay = rng.randint(1, config.max_delay)
        dup_delay = rng.randint(1, config.max_delay) if duplicate else 0
        return drop, duplicate, delay, dup_delay
