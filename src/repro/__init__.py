"""PGX.D/Async reproduction: a distributed graph pattern matching engine.

Reimplementation of *PGX.D/Async: A Scalable Distributed Graph Pattern
Matching Engine* (GRADES'17) on a deterministic simulated cluster.

Quickstart::

    from repro import GraphBuilder, PgxdAsyncEngine, ClusterConfig

    builder = GraphBuilder()
    alice = builder.add_vertex(label="person", age=31)
    bob = builder.add_vertex(label="person", age=19)
    builder.add_edge(alice, bob, label="friend")
    graph = builder.build()

    engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=4))
    result = engine.query(
        "SELECT a, b WHERE (a WITH age > 18)-[:friend]->(b)"
    )
    print(result.rows)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced figure.
"""

from repro.baselines import (
    BftEngine,
    JoinEngine,
    SharedMemoryEngine,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.context import ExecutionContext
from repro.engine_api import (
    Engine,
    QueryHandle,
    QueryStatus,
    available_engines,
)
from repro.chaos import ChaosConfig
from repro.errors import (
    AnalysisError,
    ClusterConfigError,
    FlowControlError,
    GraphError,
    PgqlError,
    PgqlSyntaxError,
    PgqlValidationError,
    PlanError,
    QueryAborted,
    RemoteAccessError,
    ReproError,
    RuntimeFault,
    TelemetryError,
)
from repro.graph import (
    DistributedGraph,
    EdgeBalancedRandomPartitioner,
    GraphBuilder,
    HashPartitioner,
    PropertyGraph,
    chain_graph,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    uniform_random_graph,
)
from repro.pgql import parse, parse_and_validate
from repro.plan import (
    MatchSemantics,
    PlannerOptions,
    SchedulingPolicy,
    plan_query,
)
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    TimeSeriesSampler,
    Tracer,
    TraceProfile,
)
from repro.runtime import (
    PgxdAsyncEngine,
    QueryResult,
    ResultSet,
    run_query,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engines (unified Engine contract, see repro.engine_api)
    "Engine",
    "available_engines",
    "PgxdAsyncEngine",
    "SharedMemoryEngine",
    "BftEngine",
    "JoinEngine",
    # submit/handle surface + execution context
    "QueryHandle",
    "QueryStatus",
    "ExecutionContext",
    "run_query",
    "QueryResult",
    "ResultSet",
    "ClusterConfig",
    "QueryMetrics",
    # observability
    "Tracer",
    "TraceProfile",
    "Telemetry",
    "MetricsRegistry",
    "TimeSeriesSampler",
    # graph
    "GraphBuilder",
    "PropertyGraph",
    "DistributedGraph",
    "EdgeBalancedRandomPartitioner",
    "HashPartitioner",
    "uniform_random_graph",
    "chain_graph",
    "load_edge_list",
    "save_edge_list",
    "load_json",
    "save_json",
    # pgql / planning
    "parse",
    "parse_and_validate",
    "plan_query",
    "PlannerOptions",
    "MatchSemantics",
    "SchedulingPolicy",
    # errors
    "ReproError",
    "AnalysisError",
    "GraphError",
    "RemoteAccessError",
    "PgqlError",
    "PgqlSyntaxError",
    "PgqlValidationError",
    "PlanError",
    "RuntimeFault",
    "QueryAborted",
    # chaos & reliability
    "ChaosConfig",
    "FlowControlError",
    "ClusterConfigError",
    "TelemetryError",
]
