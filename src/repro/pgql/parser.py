"""Recursive-descent parser for the PGQL subset.

Grammar sketch (see DESIGN.md §6 for coverage notes)::

    query        := SELECT select_list WHERE where_list
                    [GROUP BY expr_list] [HAVING expr]
                    [ORDER BY order_list] [LIMIT number]
    select_list  := select_item ("," select_item)*
    select_item  := expr [AS ident]
    where_list   := where_elem ("," where_elem)*
    where_elem   := path | expr                 -- disambiguated by backtracking
    path         := vertex (edge vertex)*
    vertex       := "(" [ident] [":" ident] [WITH expr] ")"
    edge         := "->" | "<-"                            -- anonymous shorthand
                  | "-" "[" [ident] [":" ident] "]" "->"   -- forward
                  | "<-" "[" [ident] [":" ident] "]" "-"   -- reverse

Inside a ``WITH`` filter, bare identifiers and argument-less ``id()`` /
``label()`` calls refer to the enclosing vertex; the parser rewrites them
to qualified references immediately, so downstream passes only ever see
``PropRef`` / ``IdCall`` / ``LabelCall`` with explicit variables.
"""

from repro.errors import PgqlSyntaxError
from repro.graph.types import Direction
from repro.pgql.ast import (
    Aggregate,
    AggregateFunc,
    Binary,
    EdgePattern,
    HasPropCall,
    IdCall,
    LabelCall,
    Literal,
    OrderItem,
    PathPattern,
    PropRef,
    Query,
    SelectItem,
    Unary,
    VarRef,
    VertexPattern,
)
from repro.pgql.lexer import TokenType, tokenize

_AGG_KEYWORDS = {
    "COUNT": AggregateFunc.COUNT,
    "SUM": AggregateFunc.SUM,
    "AVG": AggregateFunc.AVG,
    "MIN": AggregateFunc.MIN,
    "MAX": AggregateFunc.MAX,
}


def parse(text):
    """Parse *text* into a :class:`repro.pgql.ast.Query`."""
    return _Parser(text).parse_query()


class _Parser:
    def __init__(self, text):
        self._tokens = tokenize(text)
        self._pos = 0
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, value):
        token = self._advance()
        if not token.is_symbol(value):
            raise PgqlSyntaxError(
                "expected %r, found %r" % (value, token.value), token.position
            )
        return token

    def _expect_keyword(self, value):
        token = self._advance()
        if not token.is_keyword(value):
            raise PgqlSyntaxError(
                "expected %s, found %r" % (value, token.value), token.position
            )
        return token

    def _expect_ident(self):
        token = self._advance()
        if token.type is not TokenType.IDENT:
            raise PgqlSyntaxError(
                "expected identifier, found %r" % (token.value,), token.position
            )
        return token.value

    def _accept_symbol(self, value):
        if self._peek().is_symbol(value):
            self._advance()
            return True
        return False

    def _accept_keyword(self, value):
        if self._peek().is_keyword(value):
            self._advance()
            return True
        return False

    def _fresh_var(self, prefix):
        name = "$%s%d" % (prefix, self._anon_counter)
        self._anon_counter += 1
        return name

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def parse_query(self):
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_items = self._parse_select_list()
        self._expect_keyword("WHERE")
        paths, constraints = self._parse_where_list()

        group_by = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_symbol(","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()

        order_by = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type is not TokenType.NUMBER or isinstance(token.value, float):
                raise PgqlSyntaxError("LIMIT expects an integer", token.position)
            limit = token.value

        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise PgqlSyntaxError(
                "unexpected trailing input: %r" % (trailing.value,),
                trailing.position,
            )
        return Query(
            select_items,
            paths,
            constraints,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_list(self):
        items = [self._parse_select_item()]
        while self._peek().is_symbol(","):
            # A comma could also start the WHERE clause's pattern list only
            # after WHERE; inside SELECT it always separates select items.
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        expr = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _parse_order_item(self):
        expr = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, ascending)

    # ------------------------------------------------------------------
    # WHERE clause: paths and constraints, disambiguated by backtracking
    # ------------------------------------------------------------------
    def _parse_where_list(self):
        paths = []
        constraints = []
        while True:
            element = self._parse_where_element()
            if isinstance(element, PathPattern):
                paths.append(element)
            else:
                constraints.append(element)
            if not self._accept_symbol(","):
                break
        return paths, constraints

    def _parse_where_element(self):
        if self._peek().is_symbol("("):
            saved = self._pos
            saved_anon = self._anon_counter
            try:
                return self._parse_path()
            except PgqlSyntaxError:
                self._pos = saved
                self._anon_counter = saved_anon
        return self._parse_expression()

    def _parse_path(self):
        vertices = [self._parse_vertex()]
        edges = []
        while True:
            edge = self._try_parse_edge()
            if edge is None:
                break
            edges.append(edge)
            vertices.append(self._parse_vertex())
        return PathPattern(vertices, edges)

    def _parse_vertex(self):
        self._expect_symbol("(")
        var = None
        label = None
        filter_expr = None
        token = self._peek()
        if token.type is TokenType.IDENT:
            var = self._advance().value
        if self._accept_symbol(":"):
            label = self._expect_ident()
        anonymous = var is None
        if anonymous:
            var = self._fresh_var("v")
        if self._accept_keyword("WITH"):
            filter_expr = self._parse_expression(implicit_var=var)
        self._expect_symbol(")")
        return VertexPattern(var, label=label, filter=filter_expr,
                             anonymous=anonymous)

    def _try_parse_edge(self):
        token = self._peek()
        if token.is_symbol("->"):
            self._advance()
            return EdgePattern(self._fresh_var("e"), direction=Direction.OUT,
                               anonymous=True)
        if token.is_symbol("-") and self._peek(1).is_symbol("["):
            self._advance()
            var, label = self._parse_edge_body()
            self._expect_symbol("->")
            anonymous = var is None
            if anonymous:
                var = self._fresh_var("e")
            return EdgePattern(var, label=label, direction=Direction.OUT,
                               anonymous=anonymous)
        if token.is_symbol("-") and self._peek(1).is_symbol("/"):
            self._advance()
            label, min_hops, max_hops = self._parse_quantified_body()
            self._expect_symbol("->")
            return EdgePattern(
                self._fresh_var("e"), label=label, direction=Direction.OUT,
                anonymous=True, min_hops=min_hops, max_hops=max_hops,
            )
        if token.is_symbol("<-"):
            self._advance()
            if self._peek().is_symbol("["):
                var, label = self._parse_edge_body()
                self._expect_symbol("-")
            elif self._peek().is_symbol("/"):
                label, min_hops, max_hops = self._parse_quantified_body()
                self._expect_symbol("-")
                return EdgePattern(
                    self._fresh_var("e"), label=label,
                    direction=Direction.IN, anonymous=True,
                    min_hops=min_hops, max_hops=max_hops,
                )
            else:
                var, label = None, None
            anonymous = var is None
            if anonymous:
                var = self._fresh_var("e")
            return EdgePattern(var, label=label, direction=Direction.IN,
                               anonymous=anonymous)
        return None

    def _parse_quantified_body(self):
        """``/:label{m,n}/`` — the body of a variable-length edge."""
        self._expect_symbol("/")
        label = None
        if self._accept_symbol(":"):
            label = self._expect_ident()
        self._expect_symbol("{")
        min_token = self._advance()
        if min_token.type is not TokenType.NUMBER or \
                isinstance(min_token.value, float):
            raise PgqlSyntaxError("path quantifier expects integers",
                                  min_token.position)
        self._expect_symbol(",")
        max_token = self._advance()
        if max_token.type is not TokenType.NUMBER or \
                isinstance(max_token.value, float):
            raise PgqlSyntaxError("path quantifier expects integers",
                                  max_token.position)
        self._expect_symbol("}")
        self._expect_symbol("/")
        return label, min_token.value, max_token.value

    def _parse_edge_body(self):
        self._expect_symbol("[")
        var = None
        label = None
        if self._peek().type is TokenType.IDENT:
            var = self._advance().value
        if self._accept_symbol(":"):
            label = self._expect_ident()
        self._expect_symbol("]")
        return var, label

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self, implicit_var=None):
        return self._parse_or(implicit_var)

    def _parse_or(self, implicit_var):
        expr = self._parse_and(implicit_var)
        while self._accept_keyword("OR"):
            expr = Binary("OR", expr, self._parse_and(implicit_var))
        return expr

    def _parse_and(self, implicit_var):
        expr = self._parse_not(implicit_var)
        while self._accept_keyword("AND"):
            expr = Binary("AND", expr, self._parse_not(implicit_var))
        return expr

    def _parse_not(self, implicit_var):
        if self._accept_keyword("NOT"):
            return Unary("NOT", self._parse_not(implicit_var))
        return self._parse_comparison(implicit_var)

    def _parse_comparison(self, implicit_var):
        expr = self._parse_additive(implicit_var)
        token = self._peek()
        for op in ("=", "!=", "<=", ">=", "<", ">"):
            if token.is_symbol(op):
                self._advance()
                return Binary(op, expr, self._parse_additive(implicit_var))
        return expr

    def _parse_additive(self, implicit_var):
        expr = self._parse_multiplicative(implicit_var)
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                rhs = self._parse_multiplicative(implicit_var)
                expr = Binary(token.value, expr, rhs)
            else:
                return expr

    def _parse_multiplicative(self, implicit_var):
        expr = self._parse_unary(implicit_var)
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/") or token.is_symbol("%"):
                self._advance()
                expr = Binary(token.value, expr, self._parse_unary(implicit_var))
            else:
                return expr

    def _parse_unary(self, implicit_var):
        if self._accept_symbol("-"):
            return Unary("-", self._parse_unary(implicit_var))
        return self._parse_primary(implicit_var)

    def _parse_primary(self, implicit_var):
        token = self._peek()
        if token.is_symbol("("):
            self._advance()
            expr = self._parse_expression(implicit_var)
            self._expect_symbol(")")
            return expr
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.KEYWORD and token.value in _AGG_KEYWORDS:
            return self._parse_aggregate(implicit_var)
        if token.type is TokenType.IDENT:
            return self._parse_reference(implicit_var)
        raise PgqlSyntaxError(
            "unexpected token %r in expression" % (token.value,), token.position
        )

    def _parse_aggregate(self, implicit_var):
        func = _AGG_KEYWORDS[self._advance().value]
        self._expect_symbol("(")
        distinct = self._accept_keyword("DISTINCT")
        if func is AggregateFunc.COUNT and self._accept_symbol("*"):
            self._expect_symbol(")")
            return Aggregate(func, None, distinct)
        arg = self._parse_expression(implicit_var)
        self._expect_symbol(")")
        return Aggregate(func, arg, distinct)

    def _parse_reference(self, implicit_var):
        name = self._expect_ident()
        # Bare calls bind to the WITH filter's vertex: ``id()``, ``label()``.
        if self._peek().is_symbol("(") and implicit_var is not None \
                and name in ("id", "label"):
            self._advance()
            self._expect_symbol(")")
            if name == "id":
                return IdCall(implicit_var)
            return LabelCall(implicit_var)
        if self._accept_symbol("."):
            member = self._expect_ident()
            if self._accept_symbol("("):
                if member == "id":
                    self._expect_symbol(")")
                    return IdCall(name)
                if member == "label":
                    self._expect_symbol(")")
                    return LabelCall(name)
                if member == "has":
                    token = self._advance()
                    if token.type is not TokenType.STRING:
                        raise PgqlSyntaxError(
                            "has() expects a string literal", token.position
                        )
                    self._expect_symbol(")")
                    return HasPropCall(name, token.value)
                raise PgqlSyntaxError(
                    "unknown method %r (supported: id, label, has)" % member,
                    self._peek().position,
                )
            return PropRef(name, member)
        if implicit_var is not None:
            # Inside WITH, a bare identifier is a property of the vertex.
            return PropRef(implicit_var, name)
        return VarRef(name)
