"""Abstract syntax tree for the PGQL subset.

The grammar covers what the paper exercises (fixed-length edge patterns,
vertex/edge variables, labels, ``WITH`` inline filters, constraint
expressions) plus the extensions listed in its future-work section
(aggregates, ``GROUP BY``, ``ORDER BY``, ``LIMIT``).
"""

import enum

from repro.graph.types import Direction


class AggregateFunc(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""

    def children(self):
        return ()

    def walk(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Literal(%r)" % (self.value,)


class VarRef(Expr):
    """A bare variable: evaluates to the matched vertex (or edge) id."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "VarRef(%s)" % self.name


class PropRef(Expr):
    """``var.prop`` — a property of a matched vertex or edge."""

    __slots__ = ("var", "prop")

    def __init__(self, var, prop):
        self.var = var
        self.prop = prop

    def __repr__(self):
        return "PropRef(%s.%s)" % (self.var, self.prop)


class IdCall(Expr):
    """``var.id()`` — the internal id of a matched vertex or edge."""

    __slots__ = ("var",)

    def __init__(self, var):
        self.var = var

    def __repr__(self):
        return "IdCall(%s)" % self.var


class LabelCall(Expr):
    """``var.label()`` — the label string of a matched vertex or edge."""

    __slots__ = ("var",)

    def __init__(self, var):
        self.var = var

    def __repr__(self):
        return "LabelCall(%s)" % self.var


class HasPropCall(Expr):
    """``var.has(prop)`` — whether the graph declares property *prop*."""

    __slots__ = ("var", "prop")

    def __init__(self, var, prop):
        self.var = var
        self.prop = prop

    def __repr__(self):
        return "HasPropCall(%s, %r)" % (self.var, self.prop)


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op  # "NOT" or "-"
        self.operand = operand

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "Unary(%s, %r)" % (self.op, self.operand)


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    #: Operators with Python-comparable semantics; see expressions.py for
    #: the exact evaluation rules.
    OPS = ("OR", "AND", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return "Binary(%s, %r, %r)" % (self.op, self.lhs, self.rhs)


class Aggregate(Expr):
    """``COUNT(*)``, ``SUM(expr)``, ... — valid in SELECT/HAVING/ORDER BY."""

    __slots__ = ("func", "arg", "distinct")

    def __init__(self, func, arg, distinct=False):
        self.func = func
        self.arg = arg  # None for COUNT(*)
        self.distinct = distinct

    def children(self):
        return () if self.arg is None else (self.arg,)

    def __repr__(self):
        return "Aggregate(%s, %r, distinct=%r)" % (
            self.func.value,
            self.arg,
            self.distinct,
        )


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
class VertexPattern:
    """``(name :label WITH filter)`` — one vertex of a path pattern."""

    __slots__ = ("var", "label", "filter", "anonymous")

    def __init__(self, var, label=None, filter=None, anonymous=False):
        self.var = var
        self.label = label
        self.filter = filter  # Expr or None, already rewritten to PropRefs
        self.anonymous = anonymous

    def __repr__(self):
        return "VertexPattern(%s, label=%r)" % (self.var, self.label)


class EdgePattern:
    """``-[name :label]->`` — one edge of a path pattern.

    ``direction`` is relative to the textual order: OUT means the left
    vertex points to the right vertex.

    A *quantified* edge — ``-/:label{m,n}/->`` — matches a path of
    between ``min_hops`` and ``max_hops`` same-label edges (the bounded
    form of the paper's future-work "recursive paths").  Quantified
    edges are always anonymous; the planner expands them into a union
    of fixed-length patterns (see ``repro.plan.paths``).
    """

    __slots__ = ("var", "label", "direction", "anonymous", "min_hops",
                 "max_hops")

    def __init__(self, var, label=None, direction=Direction.OUT,
                 anonymous=False, min_hops=1, max_hops=1):
        self.var = var
        self.label = label
        self.direction = direction
        self.anonymous = anonymous
        self.min_hops = min_hops
        self.max_hops = max_hops

    @property
    def quantified(self):
        return (self.min_hops, self.max_hops) != (1, 1)

    def __repr__(self):
        return "EdgePattern(%s, label=%r, dir=%s, hops=%d..%d)" % (
            self.var,
            self.label,
            self.direction.value,
            self.min_hops,
            self.max_hops,
        )


class PathPattern:
    """A chain of vertices connected by edges.

    ``edges[i]`` connects ``vertices[i]`` and ``vertices[i + 1]``.
    """

    __slots__ = ("vertices", "edges")

    def __init__(self, vertices, edges):
        assert len(vertices) == len(edges) + 1
        self.vertices = vertices
        self.edges = edges

    def __repr__(self):
        return "PathPattern(%d vertices)" % len(self.vertices)


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
class SelectItem:
    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias

    def __repr__(self):
        return "SelectItem(%r, alias=%r)" % (self.expr, self.alias)


class OrderItem:
    __slots__ = ("expr", "ascending")

    def __init__(self, expr, ascending=True):
        self.expr = expr
        self.ascending = ascending


class Query:
    """A parsed PGQL query."""

    __slots__ = (
        "select_items",
        "paths",
        "constraints",
        "group_by",
        "having",
        "order_by",
        "limit",
        "distinct",
    )

    def __init__(
        self,
        select_items,
        paths,
        constraints,
        group_by=None,
        having=None,
        order_by=None,
        limit=None,
        distinct=False,
    ):
        self.select_items = select_items
        self.paths = paths
        self.constraints = constraints
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.limit = limit
        self.distinct = distinct

    def vertex_vars(self):
        """All vertex variable names in pattern order, deduplicated."""
        seen = []
        for path in self.paths:
            for vertex in path.vertices:
                if vertex.var not in seen:
                    seen.append(vertex.var)
        return seen

    def edge_vars(self):
        """All edge variable names in pattern order."""
        names = []
        for path in self.paths:
            for edge in path.edges:
                names.append(edge.var)
        return names

    def all_expressions(self):
        """Every expression in the query (filters, constraints, select, ...)."""
        for path in self.paths:
            for vertex in path.vertices:
                if vertex.filter is not None:
                    yield vertex.filter
        yield from self.constraints
        for item in self.select_items:
            yield item.expr
        yield from self.group_by
        if self.having is not None:
            yield self.having
        for item in self.order_by:
            yield item.expr
