"""Render a parsed query back to PGQL text.

``to_pgql(parse(text))`` produces a semantically identical query (the
round trip is property-tested); useful for logging, plan debugging, and
the query-rewriting passes (e.g. variable-length path expansion).
"""

from repro.errors import PgqlError
from repro.graph.types import Direction
from repro.pgql.ast import (
    Aggregate,
    Binary,
    HasPropCall,
    IdCall,
    LabelCall,
    Literal,
    PropRef,
    Unary,
    VarRef,
)

#: Binding strength per operator, for minimal parenthesization.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def to_pgql(query):
    """Serialize a :class:`~repro.pgql.ast.Query` to PGQL text."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(
        expr_to_pgql(item.expr) + (" AS %s" % item.alias if item.alias else "")
        for item in query.select_items
    ))
    parts.append("WHERE")
    elements = [_path_to_pgql(path) for path in query.paths]
    elements.extend(expr_to_pgql(expr) for expr in query.constraints)
    parts.append(", ".join(elements))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expr_to_pgql(expr) for expr in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(expr_to_pgql(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(
            expr_to_pgql(item.expr) + ("" if item.ascending else " DESC")
            for item in query.order_by
        ))
    if query.limit is not None:
        parts.append("LIMIT %d" % query.limit)
    return " ".join(parts)


def _path_to_pgql(path):
    pieces = [_vertex_to_pgql(path.vertices[0])]
    for index, edge in enumerate(path.edges):
        pieces.append(_edge_to_pgql(edge))
        pieces.append(_vertex_to_pgql(path.vertices[index + 1]))
    return "".join(pieces)


def _vertex_to_pgql(vertex):
    inner = "" if vertex.anonymous else vertex.var
    if vertex.label is not None:
        inner += ":%s" % vertex.label
    if vertex.filter is not None:
        inner += " WITH %s" % expr_to_pgql(vertex.filter)
    return "(%s)" % inner.strip()


def _edge_to_pgql(edge):
    body = "" if edge.anonymous else edge.var
    if edge.label is not None:
        body += ":%s" % edge.label
    min_hops = getattr(edge, "min_hops", 1)
    max_hops = getattr(edge, "max_hops", 1)
    if (min_hops, max_hops) != (1, 1):
        quantified = "/%s{%d,%d}/" % (
            ":%s" % edge.label if edge.label is not None else "",
            min_hops,
            max_hops,
        )
        if edge.direction is Direction.OUT:
            return "-%s->" % quantified
        return "<-%s-" % quantified
    if edge.direction is Direction.OUT:
        return "-[%s]->" % body
    return "<-[%s]-" % body


def expr_to_pgql(expr, parent_precedence=0):
    """Serialize one expression with minimal parentheses."""
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, PropRef):
        return "%s.%s" % (expr.var, expr.prop)
    if isinstance(expr, IdCall):
        return "%s.id()" % expr.var
    if isinstance(expr, LabelCall):
        return "%s.label()" % expr.var
    if isinstance(expr, HasPropCall):
        return '%s.has("%s")' % (expr.var, expr.prop)
    if isinstance(expr, Unary):
        if expr.op == "NOT":
            text = "NOT %s" % expr_to_pgql(expr.operand, 3)
            # NOT sits between AND and the comparisons; inside anything
            # tighter it must be parenthesized.
            if parent_precedence > 2:
                return "(%s)" % text
            return text
        inner = expr_to_pgql(expr.operand, 7)
        if inner.startswith("-"):
            # "--x" would lex as a line comment; keep the inner negation
            # parenthesized.
            inner = "(%s)" % inner
        return "-%s" % inner
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        # Comparisons are non-associative in the grammar: a nested
        # comparison on either side needs its own parentheses.
        lhs_floor = precedence + 1 if precedence == 4 else precedence
        lhs = expr_to_pgql(expr.lhs, lhs_floor)
        # Right operand binds one tighter: our parser is left-associative.
        rhs = expr_to_pgql(expr.rhs, precedence + 1)
        text = "%s %s %s" % (lhs, expr.op, rhs)
        if precedence < parent_precedence:
            return "(%s)" % text
        return text
    if isinstance(expr, Aggregate):
        inner = "*" if expr.arg is None else expr_to_pgql(expr.arg)
        distinct = "DISTINCT " if expr.distinct else ""
        return "%s(%s%s)" % (expr.func.value, distinct, inner)
    raise PgqlError("cannot print expression: %r" % (expr,))


def _literal(value):
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return '"%s"' % escaped
    return repr(value)
