"""Generic expression evaluation.

Expressions are evaluated against an :class:`EvalEnv`, which resolves
variable references to matched entities and property reads to values.
The distributed runtime does not use this tree-walking evaluator on hot
paths — ``repro.plan.execution`` compiles filters into closures bound to
context offsets — but the same semantics are defined here once and the
compiled closures defer to the operator functions below.

Semantics notes:

* There are no NULLs: property columns are dense, so entities that never
  set a property observe the type default (0 / 0.0 / "" / False).
* ``=`` / ``!=`` follow Python equality (cross-type compares are unequal,
  never an error).
* Ordered comparisons and arithmetic between incompatible types make a
  *predicate* evaluate to False rather than crashing a query; when
  evaluated as a value (e.g. in SELECT) they raise
  :class:`~repro.errors.PgqlValidationError`.
"""

from repro.errors import PgqlValidationError
from repro.pgql.ast import (
    Aggregate,
    Binary,
    HasPropCall,
    IdCall,
    LabelCall,
    Literal,
    PropRef,
    Unary,
    VarRef,
)


class EvalEnv:
    """Resolution interface used by :func:`evaluate`.

    Subclasses override the four lookup methods.  ``var`` names may be
    bound to vertices or edges; the environment decides.
    """

    def entity_id(self, var):
        """The internal id the variable is bound to."""
        raise NotImplementedError

    def prop(self, var, prop):
        """The value of ``var.prop``."""
        raise NotImplementedError

    def label(self, var):
        """The label string of the bound entity (or None)."""
        raise NotImplementedError

    def has_prop(self, var, prop):
        """Whether the graph declares property *prop* for ``var``'s kind."""
        raise NotImplementedError


class MappingEnv(EvalEnv):
    """An env backed by plain dicts — convenient for tests and results.

    *ids* maps var -> entity id; *props* maps (var, prop) -> value;
    *labels* maps var -> label string.
    """

    def __init__(self, ids=None, props=None, labels=None):
        self._ids = ids or {}
        self._props = props or {}
        self._labels = labels or {}

    def entity_id(self, var):
        try:
            return self._ids[var]
        except KeyError:
            raise PgqlValidationError("unbound variable %r" % var)

    def prop(self, var, prop):
        try:
            return self._props[(var, prop)]
        except KeyError:
            raise PgqlValidationError("no value for %s.%s" % (var, prop))

    def label(self, var):
        return self._labels.get(var)

    def has_prop(self, var, prop):
        return (var, prop) in self._props


def evaluate(expr, env):
    """Evaluate *expr* strictly; type mismatches raise."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, VarRef):
        return env.entity_id(expr.name)
    if isinstance(expr, IdCall):
        return env.entity_id(expr.var)
    if isinstance(expr, PropRef):
        return env.prop(expr.var, expr.prop)
    if isinstance(expr, LabelCall):
        return env.label(expr.var)
    if isinstance(expr, HasPropCall):
        return env.has_prop(expr.var, expr.prop)
    if isinstance(expr, Unary):
        return apply_unary(expr.op, evaluate(expr.operand, env))
    if isinstance(expr, Binary):
        if expr.op == "AND":
            return bool(evaluate(expr.lhs, env)) and bool(evaluate(expr.rhs, env))
        if expr.op == "OR":
            return bool(evaluate(expr.lhs, env)) or bool(evaluate(expr.rhs, env))
        return apply_binary(expr.op, evaluate(expr.lhs, env),
                            evaluate(expr.rhs, env))
    if isinstance(expr, Aggregate):
        raise PgqlValidationError(
            "aggregate %s cannot be evaluated per-row" % expr.func.value
        )
    raise PgqlValidationError("unknown expression node: %r" % (expr,))


def evaluate_predicate(expr, env):
    """Evaluate *expr* as a filter: mismatches count as non-matches."""
    try:
        return bool(evaluate(expr, env))
    except (TypeError, ZeroDivisionError):
        return False


def apply_unary(op, value):
    if op == "NOT":
        return not value
    if op == "-":
        return -value
    raise PgqlValidationError("unknown unary operator %r" % op)


_BINARY_OPS = {
    "=": lambda lhs, rhs: lhs == rhs,
    "!=": lambda lhs, rhs: lhs != rhs,
    "<": lambda lhs, rhs: lhs < rhs,
    "<=": lambda lhs, rhs: lhs <= rhs,
    ">": lambda lhs, rhs: lhs > rhs,
    ">=": lambda lhs, rhs: lhs >= rhs,
    "+": lambda lhs, rhs: lhs + rhs,
    "-": lambda lhs, rhs: lhs - rhs,
    "*": lambda lhs, rhs: lhs * rhs,
    "/": lambda lhs, rhs: lhs / rhs,
    "%": lambda lhs, rhs: lhs % rhs,
}


def apply_binary(op, lhs, rhs):
    func = _BINARY_OPS.get(op)
    if func is None:
        raise PgqlValidationError("unknown binary operator %r" % op)
    return func(lhs, rhs)


def binary_op_func(op):
    """The raw Python callable for *op* (used by the filter compiler)."""
    func = _BINARY_OPS.get(op)
    if func is None:
        raise PgqlValidationError("unknown binary operator %r" % op)
    return func


def referenced_vars(expr):
    """The set of variable names an expression depends on."""
    vars_ = set()
    for node in expr.walk():
        if isinstance(node, VarRef):
            vars_.add(node.name)
        elif isinstance(node, (PropRef, IdCall, LabelCall, HasPropCall)):
            vars_.add(node.var)
    return vars_


def referenced_props(expr):
    """The set of ``(var, prop)`` pairs an expression reads."""
    pairs = set()
    for node in expr.walk():
        if isinstance(node, PropRef):
            pairs.add((node.var, node.prop))
    return pairs


def contains_aggregate(expr):
    return any(isinstance(node, Aggregate) for node in expr.walk())


def split_conjuncts(expr):
    """Split a boolean expression on top-level ANDs.

    The planner pushes each conjunct down to the earliest stage where all
    of its variables are bound.
    """
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.lhs) + split_conjuncts(expr.rhs)
    return [expr]
