"""Tokenizer for the PGQL subset.

Hand-rolled single-pass scanner.  The only context-sensitive rule is that
``<-`` is emitted as one LARROW token only when immediately followed by
``[`` or ``(`` (pattern position); otherwise ``<`` and the rest are lexed
separately so that expressions like ``a.x < -3`` work.
"""

import enum

from repro.errors import PgqlSyntaxError

KEYWORDS = frozenset(
    """
    SELECT WHERE WITH AS AND OR NOT TRUE FALSE
    GROUP BY HAVING ORDER ASC DESC LIMIT DISTINCT
    COUNT SUM AVG MIN MAX
    """.split()
)


class TokenType(enum.Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


class Token:
    __slots__ = ("type", "value", "position")

    def __init__(self, type_, value, position):
        self.type = type_
        self.value = value
        self.position = position

    def is_symbol(self, value):
        return self.type is TokenType.SYMBOL and self.value == value

    def is_keyword(self, value):
        return self.type is TokenType.KEYWORD and self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.type.value, self.value)


#: Multi-character symbols, longest first so the scanner is greedy.
_MULTI_SYMBOLS = ("->", "<=", ">=", "!=", "<>", "==")
_SINGLE_SYMBOLS = set("()[]{},.:=<>+-*/%")


def tokenize(text):
    """Return the token list for *text*, ending with an EOF token."""
    tokens = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and text.startswith("--", index):
            # SQL-style line comment.
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if char.isdigit():
            token, index = _scan_number(text, index)
            tokens.append(token)
            continue
        if char in ("'", '"'):
            token, index = _scan_string(text, index)
            tokens.append(token)
            continue
        if char == "<" and text.startswith("<-", index):
            after = _next_nonspace(text, index + 2)
            if after is not None and after in "[(/":
                tokens.append(Token(TokenType.SYMBOL, "<-", index))
                index += 2
                continue
        matched = False
        for symbol in _MULTI_SYMBOLS:
            if text.startswith(symbol, index):
                value = "=" if symbol == "==" else symbol
                value = "!=" if symbol == "<>" else value
                tokens.append(Token(TokenType.SYMBOL, value, index))
                index += len(symbol)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, char, index))
            index += 1
            continue
        raise PgqlSyntaxError("unexpected character %r" % char, index)
    tokens.append(Token(TokenType.EOF, None, length))
    return tokens


def _next_nonspace(text, index):
    while index < len(text):
        if not text[index].isspace():
            return text[index]
        index += 1
    return None


def _scan_number(text, start):
    index = start
    length = len(text)
    while index < length and text[index].isdigit():
        index += 1
    is_float = False
    if index < length and text[index] == "." and index + 1 < length \
            and text[index + 1].isdigit():
        is_float = True
        index += 1
        while index < length and text[index].isdigit():
            index += 1
    if index < length and text[index] in "eE":
        peek = index + 1
        if peek < length and text[peek] in "+-":
            peek += 1
        if peek < length and text[peek].isdigit():
            is_float = True
            index = peek
            while index < length and text[index].isdigit():
                index += 1
    literal = text[start:index]
    value = float(literal) if is_float else int(literal)
    return Token(TokenType.NUMBER, value, start), index


def _scan_string(text, start):
    quote = text[start]
    index = start + 1
    pieces = []
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\\" and index + 1 < length:
            escape = text[index + 1]
            pieces.append({"n": "\n", "t": "\t"}.get(escape, escape))
            index += 2
            continue
        if char == quote:
            return Token(TokenType.STRING, "".join(pieces), start), index + 1
        pieces.append(char)
        index += 1
    raise PgqlSyntaxError("unterminated string literal", start)
