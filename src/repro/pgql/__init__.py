"""PGQL front-end: lexer, parser, AST, expression evaluation, validation."""

from repro.pgql.ast import (
    Aggregate,
    AggregateFunc,
    Binary,
    EdgePattern,
    HasPropCall,
    IdCall,
    LabelCall,
    Literal,
    OrderItem,
    PathPattern,
    PropRef,
    Query,
    SelectItem,
    Unary,
    VarRef,
    VertexPattern,
)
from repro.pgql.expressions import (
    EvalEnv,
    MappingEnv,
    evaluate,
    evaluate_predicate,
    referenced_props,
    referenced_vars,
    split_conjuncts,
)
from repro.pgql.lexer import Token, TokenType, tokenize
from repro.pgql.parser import parse
from repro.pgql.printer import expr_to_pgql, to_pgql
from repro.pgql.validator import validate


def parse_and_validate(text):
    """Parse *text* and run semantic validation; returns the Query."""
    return validate(parse(text))


__all__ = [
    "parse",
    "to_pgql",
    "expr_to_pgql",
    "validate",
    "parse_and_validate",
    "tokenize",
    "Token",
    "TokenType",
    "Query",
    "SelectItem",
    "OrderItem",
    "PathPattern",
    "VertexPattern",
    "EdgePattern",
    "Literal",
    "VarRef",
    "PropRef",
    "IdCall",
    "LabelCall",
    "HasPropCall",
    "Unary",
    "Binary",
    "Aggregate",
    "AggregateFunc",
    "EvalEnv",
    "MappingEnv",
    "evaluate",
    "evaluate_predicate",
    "referenced_vars",
    "referenced_props",
    "split_conjuncts",
]
