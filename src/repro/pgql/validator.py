"""Semantic validation of parsed queries.

Checks performed:

* every variable referenced by an expression is bound by a pattern;
* vertex variables are used consistently (a name reused across paths
  refers to the same vertex — that is legal and joins the paths — but an
  edge variable may be bound only once);
* aggregates appear only in SELECT / HAVING / ORDER BY, never nested,
  and never in WHERE filters;
* when the query aggregates or groups, every non-aggregate select item
  must be one of the GROUP BY expressions;
* LIMIT is non-negative.
"""

from repro.errors import PgqlValidationError
from repro.pgql.ast import Aggregate, VarRef
from repro.pgql.expressions import contains_aggregate, referenced_vars


def validate(query):
    """Raise :class:`PgqlValidationError` if *query* is malformed.

    Also resolves SELECT aliases referenced from GROUP BY / HAVING /
    ORDER BY (SQL-style), provided the alias does not shadow a pattern
    variable.  Returns the query for call chaining.
    """
    if not query.paths:
        raise PgqlValidationError("query has no graph pattern")

    _resolve_select_aliases(query)
    _check_quantified_edges(query)

    vertex_vars = set(query.vertex_vars())
    edge_vars = []
    for path in query.paths:
        for edge in path.edges:
            edge_vars.append(edge.var)
    duplicate_edges = {var for var in edge_vars if edge_vars.count(var) > 1}
    if duplicate_edges:
        raise PgqlValidationError(
            "edge variables bound more than once: %s"
            % ", ".join(sorted(duplicate_edges))
        )
    bound = vertex_vars | set(edge_vars)

    shared = vertex_vars & set(edge_vars)
    if shared:
        raise PgqlValidationError(
            "names used for both vertices and edges: %s"
            % ", ".join(sorted(shared))
        )

    for expr in query.all_expressions():
        unknown = referenced_vars(expr) - bound
        if unknown:
            raise PgqlValidationError(
                "unbound variables: %s" % ", ".join(sorted(unknown))
            )

    for path in query.paths:
        for vertex in path.vertices:
            if vertex.filter is not None and contains_aggregate(vertex.filter):
                raise PgqlValidationError("aggregates not allowed in WITH filters")
    for constraint in query.constraints:
        if contains_aggregate(constraint):
            raise PgqlValidationError(
                "aggregates not allowed in WHERE constraints"
            )

    for expr in _aggregate_hosts(query):
        _check_no_nested_aggregates(expr)

    has_aggregates = any(
        contains_aggregate(item.expr) for item in query.select_items
    )
    if query.having is not None and not (has_aggregates or query.group_by):
        raise PgqlValidationError("HAVING requires aggregation or GROUP BY")
    if has_aggregates or query.group_by:
        group_keys = [_expr_key(expr) for expr in query.group_by]
        for item in query.select_items:
            if contains_aggregate(item.expr):
                continue
            if _expr_key(item.expr) not in group_keys:
                raise PgqlValidationError(
                    "non-aggregate select item %r must appear in GROUP BY"
                    % (item.expr,)
                )

    if query.limit is not None and query.limit < 0:
        raise PgqlValidationError("LIMIT must be non-negative")
    return query


#: Cap on variable-length path bounds: expansions grow linearly in the
#: hop count and multiplicatively across quantified edges.
MAX_QUANTIFIED_HOPS = 8
MAX_PATH_EXPANSIONS = 64


def _check_quantified_edges(query):
    quantified = [
        edge
        for path in query.paths
        for edge in path.edges
        if edge.quantified
    ]
    if not quantified:
        return
    expansions = 1
    for edge in quantified:
        if edge.min_hops < 1:
            raise PgqlValidationError(
                "path quantifier lower bound must be >= 1"
            )
        if edge.max_hops < edge.min_hops:
            raise PgqlValidationError(
                "path quantifier upper bound below lower bound"
            )
        if edge.max_hops > MAX_QUANTIFIED_HOPS:
            raise PgqlValidationError(
                "path quantifier upper bound capped at %d"
                % MAX_QUANTIFIED_HOPS
            )
        expansions *= edge.max_hops - edge.min_hops + 1
    if expansions > MAX_PATH_EXPANSIONS:
        raise PgqlValidationError(
            "variable-length paths expand to %d plans (cap %d)"
            % (expansions, MAX_PATH_EXPANSIONS)
        )
    if query.group_by or query.having is not None or any(
        contains_aggregate(item.expr) for item in query.select_items
    ):
        raise PgqlValidationError(
            "aggregation is not supported together with variable-length "
            "paths"
        )


def _resolve_select_aliases(query):
    """Substitute bare alias references in GROUP BY / HAVING / ORDER BY.

    A ``VarRef`` whose name matches a select alias — and is not a pattern
    variable — is replaced by the aliased expression, so users can write
    ``SELECT a.age / 10 AS decade ... ORDER BY decade``.
    """
    pattern_vars = set(query.vertex_vars())
    for path in query.paths:
        for edge in path.edges:
            pattern_vars.add(edge.var)
    aliases = {
        item.alias: item.expr
        for item in query.select_items
        if item.alias and item.alias not in pattern_vars
    }
    if not aliases:
        return

    def substitute(expr):
        if isinstance(expr, VarRef) and expr.name in aliases:
            return aliases[expr.name]
        return expr

    query.group_by = [substitute(expr) for expr in query.group_by]
    if query.having is not None:
        query.having = substitute(query.having)
    for item in query.order_by:
        item.expr = substitute(item.expr)


def _aggregate_hosts(query):
    for item in query.select_items:
        yield item.expr
    if query.having is not None:
        yield query.having
    for item in query.order_by:
        yield item.expr


def _check_no_nested_aggregates(expr):
    for node in expr.walk():
        if isinstance(node, Aggregate) and node.arg is not None:
            if contains_aggregate(node.arg):
                raise PgqlValidationError("nested aggregates are not allowed")


def _expr_key(expr):
    """A structural key for comparing expressions (repr is structural)."""
    return repr(expr)
