"""Per-execution context threaded uniformly through the engine.

Historically ``execute_plan`` / ``run_query`` grew one keyword argument
per cross-cutting concern (``tracer=``, ``telemetry=``, ``deadline=``),
and the multi-query service would have added two more.  An
:class:`ExecutionContext` carries all of them as one value:

* ``tracer`` — a :class:`repro.obs.Tracer`, or None (tracing off);
* ``telemetry`` — a :class:`repro.obs.Telemetry`, or None (off);
* ``deadline`` — per-query deadline in simulated ticks (the run aborts
  with :class:`~repro.errors.QueryAborted` past it), or None;
* ``priority`` — fair-share weight when the query runs through the
  :class:`~repro.service.QueryService` scheduler (higher = more worker
  time per global tick); ignored by direct single-query execution;
* ``query_id`` — the tenant identity stamped on flow-state snapshots,
  abort diagnostics, and per-tenant telemetry labels; None for plain
  single-query runs.

The legacy keyword arguments still work (thin deprecation shims fold
them into a context), so existing call sites and tests are unaffected.
"""

from dataclasses import dataclass, replace


@dataclass
class ExecutionContext:
    """Everything cross-cutting about one query execution."""

    #: Optional repro.obs.Tracer recording this execution.
    tracer: object = None
    #: Optional repro.obs.Telemetry (registry + per-tick series).
    telemetry: object = None
    #: Abort the run past this many simulated ticks (None = no deadline).
    deadline: int = None
    #: Fair-share weight under the multi-query service scheduler.
    priority: int = 1
    #: Tenant identity for scoped diagnostics and telemetry labels.
    query_id: str = None
    #: Optional repro.obs.feedback.StageProfiler collecting per-stage
    #: actual cardinalities per machine (plan-vs-actual observability).
    profiler: object = None

    def replace(self, **changes):
        """Return a copy with *changes* applied."""
        return replace(self, **changes)

    @classmethod
    def from_options(cls, options, engine=None, **overrides):
        """Build a context from :class:`~repro.plan.options.PlannerOptions`.

        Mirrors the engine's historical per-query switches: ``trace`` /
        ``telemetry`` flags allocate fresh recorders (falling back to
        the engine config's cluster-wide flags when *engine* is given),
        and ``timeout_ticks`` becomes the deadline.
        """
        tracer = None
        telemetry = None
        config = getattr(engine, "config", None)
        want_trace = (options is not None and options.trace) or (
            config is not None and config.trace
        )
        if want_trace:
            from repro.obs import Tracer

            max_events = (
                config.trace_max_events if config is not None else 1_000_000
            )
            tracer = Tracer(max_events=max_events)
        want_telemetry = (options is not None and options.telemetry) or (
            config is not None and config.telemetry
        )
        if want_telemetry:
            from repro.obs import Telemetry

            interval = (
                config.telemetry_interval if config is not None else 1
            )
            telemetry = Telemetry(interval=interval)
        profiler = None
        if options is not None and getattr(options, "profile", False):
            from repro.obs.feedback import StageProfiler

            profiler = StageProfiler()
        deadline = options.timeout_ticks if options is not None else None
        context = cls(tracer=tracer, telemetry=telemetry, deadline=deadline,
                      profiler=profiler)
        if overrides:
            context = context.replace(**overrides)
        return context
