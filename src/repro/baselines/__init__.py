"""Baseline engines the paper (or its ablations) compare against:

* :class:`SharedMemoryEngine` — single-machine PGX stand-in (Figure 5's
  normalization baseline) and correctness oracle;
* :class:`BftEngine` — level-synchronous breadth-first evaluation, the
  "BFT" strategy of §2;
* :class:`JoinEngine` — eager relational joins over binding tables, the
  GraphFrames-style strategy of §2.

All three implement the unified :class:`repro.engine_api.Engine`
contract — ``Engine(graph, config=None, **kw)`` construction and
``query(query, options=None) -> QueryResult`` — so any engine can be
swapped into an experiment without changing the calling code.
"""

from repro.baselines.bft_engine import BftEngine
from repro.baselines.join_engine import JoinEngine
from repro.baselines.single_machine import SharedMemoryEngine
from repro.engine_api import Engine, available_engines

__all__ = [
    "Engine",
    "available_engines",
    "SharedMemoryEngine",
    "BftEngine",
    "JoinEngine",
]
