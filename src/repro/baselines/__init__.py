"""Baseline engines the paper (or its ablations) compare against:

* :class:`SharedMemoryEngine` — single-machine PGX stand-in (Figure 5's
  normalization baseline) and correctness oracle;
* :class:`BftEngine` — level-synchronous breadth-first evaluation, the
  "BFT" strategy of §2;
* :class:`JoinEngine` — eager relational joins over binding tables, the
  GraphFrames-style strategy of §2.
"""

from repro.baselines.bft_engine import BftEngine
from repro.baselines.join_engine import JoinEngine
from repro.baselines.single_machine import SharedMemoryEngine

__all__ = ["SharedMemoryEngine", "BftEngine", "JoinEngine"]
