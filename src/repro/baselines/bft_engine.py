"""Level-synchronous breadth-first baseline (paper §1/§2 comparison).

This engine evaluates the same execution plan stage by stage with a
global barrier between stages — the "run each operator separately in a
breadth-first manner" strategy the paper contrasts against.  All
machines fully expand stage *n* into a materialized stage-(n+1) frontier
before anyone starts stage *n+1*, which demonstrates both problems the
paper calls out:

* **intermediate state explosion** — the whole frontier is alive at the
  barrier (``peak_intermediate``), whereas the DFT engine keeps only
  O(workers × stages × flow-control-budget) contexts;
* **communication in the critical path** — every superstep pays the full
  exchange latency before any machine can proceed.

The time model matches the async engine's: per superstep,
``max_machine_ops / (workers * ops_per_tick)`` compute ticks plus one
network latency for the exchange plus a barrier cost.
"""

from collections import defaultdict

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.engine_api import Engine
from repro.errors import PlanError
from repro.graph.distributed import DistributedGraph
from repro.graph.types import Direction
from repro.plan import PlannerOptions, plan_query
from repro.plan.distributed import HopKind
from repro.runtime.aggregation import finalize
from repro.runtime.engine import QueryResult

#: Fixed cost (ticks) of a global barrier, covering the synchronization
#: round-trips of a bulk-synchronous step.
BARRIER_TICKS = 4


class BftEngine(Engine):
    """Distributed breadth-first / bulk-synchronous matcher."""

    def __init__(self, graph, config=None, partitioner=None):
        self.config = config or ClusterConfig()
        if isinstance(graph, DistributedGraph):
            self.dist_graph = graph
        else:
            self.dist_graph = DistributedGraph.create(
                graph, self.config.num_machines, partitioner=partitioner
            )
        self.graph = self.dist_graph.graph

    def query(self, query, options=None):
        if isinstance(query, str):
            from repro.pgql import parse_and_validate

            query = parse_and_validate(query)
        from repro.plan.paths import has_quantified_paths

        if has_quantified_paths(query):
            from repro.runtime.engine import execute_union

            return execute_union(query, options, self.query)
        plan = plan_query(query, self.graph, options or PlannerOptions())
        return self.execute_plan(plan)

    def execute_plan(self, plan):
        num_machines = self.config.num_machines
        workers = self.config.workers_per_machine
        ops_per_tick = self.config.ops_per_tick

        # Stage-0 frontier: every local vertex (or the single origin).
        frontier = defaultdict(list)
        root = plan.root
        if root.single_vertex_id is not None:
            origin = root.single_vertex_id
            if 0 <= origin < self.graph.num_vertices:
                frontier[self.dist_graph.owner(origin)].append((origin,))
        else:
            for machine in range(num_machines):
                local = self.dist_graph.local(machine)
                frontier[machine] = [
                    (int(vertex),) for vertex in local.local_vertices()
                ]

        ticks = 0
        total_ops = 0
        peak_intermediate = sum(len(rows) for rows in frontier.values())
        rows_out = []

        for stage in plan.stages:
            next_frontier = defaultdict(list)
            machine_ops = [0] * num_machines
            exchanged = 0
            for machine in range(num_machines):
                local = self.dist_graph.local(machine)
                for ctx in frontier[machine]:
                    machine_ops[machine] += self._expand(
                        plan, stage, ctx, local, next_frontier, rows_out
                    )
            total_ops += sum(machine_ops)
            compute_ticks = -(-max(machine_ops, default=0)
                              // (workers * ops_per_tick))
            ticks += compute_ticks + BARRIER_TICKS
            if stage.hop.kind is not HopKind.OUTPUT and num_machines > 1:
                exchanged = sum(
                    len(rows)
                    for machine, rows in next_frontier.items()
                )
                ticks += self.config.network_latency
                if self.config.network_bandwidth:
                    ticks += exchanged // self.config.network_bandwidth
            frontier = next_frontier
            alive = sum(len(rows) for rows in frontier.values())
            peak_intermediate = max(peak_intermediate, alive)

        result_set = finalize(
            plan.output,
            rows_out,
            plan.query.vertex_vars(),
            plan.query.edge_vars(),
        )
        metrics = QueryMetrics(
            ticks=ticks,
            num_machines=num_machines,
            total_ops=total_ops,
            num_results=len(rows_out),
            peak_buffered_contexts=peak_intermediate,
        )
        return QueryResult(result_set, metrics, plan)

    # ------------------------------------------------------------------
    def _expand(self, plan, stage, ctx, local, next_frontier, rows_out):
        """Run one stage on one context; returns micro-ops performed."""
        graph = self.graph
        vertex = ctx[stage.vertex_slot]
        ops = stage.work_cost

        if stage.label_id is not None and \
                graph.vertex_label(vertex) != stage.label_id:
            return ops
        for slot in stage.iso_vertex_slots:
            if ctx[slot] == vertex:
                return ops
        if stage.filter is not None and not stage.filter(ctx, vertex, -1):
            return ops
        for slot in stage.forbidden_slots:
            if graph.edges_between(vertex, ctx[slot]):
                return ops
        if stage.captures:
            ctx = ctx + tuple(capture(vertex) for capture in stage.captures)

        hop = stage.hop
        kind = hop.kind
        if kind is HopKind.OUTPUT:
            rows_out.append(ctx)
            return ops + 1
        if kind is HopKind.NEIGHBOR:
            if hop.direction is Direction.OUT:
                neighbors, edge_ids = local.out_edges(vertex)
            else:
                neighbors, edge_ids = local.in_edges(vertex)
            for target, eid in zip(neighbors, edge_ids):
                ops += hop.work_cost
                target = int(target)
                eid = int(eid)
                if not self._edge_ok(hop, ctx, vertex, eid):
                    continue
                out_ctx = self._extend(hop, ctx, eid, target)
                next_frontier[local.owner(target)].append(out_ctx)
            return ops
        if kind is HopKind.VERTEX:
            target = ctx[hop.target_slot]
            if hop.edge_req_orientation is None:
                next_frontier[local.owner(target)].append(ctx)
                return ops + 1
            if hop.edge_req_orientation == "current_to_target":
                edge_ids = local.edges_between(vertex, target)
            else:
                edge_ids = local.in_edges_from(vertex, target)
            for eid in edge_ids:
                ops += hop.work_cost
                if not self._edge_ok(hop, ctx, vertex, eid):
                    continue
                out_ctx = self._extend(hop, ctx, eid, None)
                next_frontier[local.owner(target)].append(out_ctx)
            return ops
        if kind is HopKind.ALL_VERTICES:
            # Cartesian restart: the context fans out to every vertex.
            for machine in range(self.config.num_machines):
                peer = self.dist_graph.local(machine)
                for target in peer.local_vertices():
                    ops += 1
                    next_frontier[machine].append(ctx + (int(target),))
            return ops
        raise PlanError(
            "the BFT baseline does not support hop kind %r "
            "(plan with use_common_neighbors=False)" % (kind,)
        )

    def _edge_ok(self, hop, ctx, vertex, eid):
        if hop.edge_label_id is not None and \
                self.graph.edge_label(eid) != hop.edge_label_id:
            return False
        for slot in hop.iso_edge_slots:
            if ctx[slot] == eid:
                return False
        if hop.edge_filter is not None and \
                not hop.edge_filter(ctx, vertex, eid):
            return False
        return True

    def _extend(self, hop, ctx, eid, target):
        if hop.edge_captures:
            ctx = ctx + tuple(capture(eid) for capture in hop.edge_captures)
        if target is not None and hop.appends_target_id:
            ctx = ctx + (target,)
        return ctx
