"""Shared-memory single-machine matcher (the paper's "PGX" baseline).

Figure 5 of the paper normalizes PGX.D/Async runtimes to single-machine
PGX.  This engine plays that role: it executes the same compiled
execution plan with a plain depth-first traversal over the whole graph —
no partitioning, no messages, no flow control, no termination protocol —
and models time as ``ops / (workers * ops_per_tick)`` (perfect intra-
machine parallelism, which flatters the baseline exactly like a mature
shared-memory engine would).

It is also the correctness oracle for the distributed engine's tests:
both engines must produce identical result multisets.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.engine_api import Engine
from repro.plan import PlannerOptions, plan_query
from repro.plan.distributed import HopKind
from repro.runtime.aggregation import finalize
from repro.runtime.engine import QueryResult


class _Stats:
    __slots__ = ("ops", "live_frames", "peak_frames", "results")

    def __init__(self):
        self.ops = 0
        self.live_frames = 0
        self.peak_frames = 0
        self.results = 0

    def frame(self, delta):
        self.live_frames += delta
        if self.live_frames > self.peak_frames:
            self.peak_frames = self.live_frames


class SharedMemoryEngine(Engine):
    """PGX-like in-memory pattern matcher over an unpartitioned graph."""

    def __init__(self, graph, config=None):
        self.graph = graph
        self.config = config or ClusterConfig(num_machines=1)

    def query(self, query, options=None):
        if isinstance(query, str):
            from repro.pgql import parse_and_validate

            query = parse_and_validate(query)
        from repro.plan.paths import has_quantified_paths

        if has_quantified_paths(query):
            from repro.runtime.engine import execute_union

            return execute_union(query, options, self.query)
        plan = plan_query(query, self.graph, options or PlannerOptions())
        return self.execute_plan(plan)

    def execute_plan(self, plan):
        stats = _Stats()
        rows = []
        roots = self._root_vertices(plan)
        for vertex in roots:
            stats.ops += 1
            self._run_vertex(plan, 0, (vertex,), vertex, rows, stats)
        result_set = finalize(
            plan.output,
            rows,
            plan.query.vertex_vars(),
            plan.query.edge_vars(),
        )
        ticks = -(-stats.ops // (
            self.config.workers_per_machine * self.config.ops_per_tick
        ))
        metrics = QueryMetrics(
            ticks=ticks,
            num_machines=1,
            total_ops=stats.ops,
            num_results=stats.results,
            peak_live_frames=stats.peak_frames,
        )
        return QueryResult(result_set, metrics, plan)

    # ------------------------------------------------------------------
    def _root_vertices(self, plan):
        root = plan.root
        if root.single_vertex_id is not None:
            if 0 <= root.single_vertex_id < self.graph.num_vertices:
                return [root.single_vertex_id]
            return []
        return self.graph.vertices()

    def _run_vertex(self, plan, stage_index, ctx, vertex, rows, stats):
        """Vertex function + hop of one stage, recursing depth-first."""
        graph = self.graph
        stage = plan.stages[stage_index]
        stats.frame(1)
        stats.ops += stage.work_cost - 1
        try:
            if stage.label_id is not None and \
                    graph.vertex_label(vertex) != stage.label_id:
                return
            for slot in stage.iso_vertex_slots:
                if ctx[slot] == vertex:
                    return
            if stage.filter is not None and not stage.filter(ctx, vertex, -1):
                return
            for slot in stage.forbidden_slots:
                if graph.edges_between(vertex, ctx[slot]):
                    return
            if stage.captures:
                ctx = ctx + tuple(
                    capture(vertex) for capture in stage.captures
                )
            self._run_hop(plan, stage, ctx, vertex, rows, stats)
        finally:
            stats.frame(-1)

    def _run_hop(self, plan, stage, ctx, vertex, rows, stats):
        graph = self.graph
        hop = stage.hop
        kind = hop.kind
        next_index = stage.index + 1

        if kind is HopKind.OUTPUT:
            stats.ops += 1
            stats.results += 1
            rows.append(ctx)
            return

        if kind is HopKind.NEIGHBOR:
            from repro.graph.types import Direction

            if hop.direction is Direction.OUT:
                neighbors, edge_ids = graph.out_edges(vertex)
            else:
                neighbors, edge_ids = graph.in_edges(vertex)
            for target, eid in zip(neighbors, edge_ids):
                stats.ops += hop.work_cost
                target = int(target)
                eid = int(eid)
                if not self._edge_ok(hop, ctx, vertex, eid):
                    continue
                out_ctx = self._extend(hop, ctx, eid, target)
                self._run_vertex(plan, next_index, out_ctx, target, rows,
                                 stats)
            return

        if kind is HopKind.VERTEX:
            target = ctx[hop.target_slot]
            if hop.edge_req_orientation is None:
                stats.ops += 1
                self._run_vertex(plan, next_index, ctx, target, rows, stats)
                return
            if hop.edge_req_orientation == "current_to_target":
                edge_ids = graph.edges_between(vertex, target)
            else:
                edge_ids = graph.in_edges_from(vertex, target)
            for eid in edge_ids:
                stats.ops += hop.work_cost
                if not self._edge_ok(hop, ctx, vertex, eid):
                    continue
                out_ctx = self._extend(hop, ctx, eid, None)
                self._run_vertex(plan, next_index, out_ctx, target, rows,
                                 stats)
            return

        if kind is HopKind.ALL_VERTICES:
            for target in graph.vertices():
                stats.ops += 1
                self._run_vertex(plan, next_index, ctx + (target,), target,
                                 rows, stats)
            return

        if kind is HopKind.CN_COLLECT:
            # Shared memory: run collect + probe inline.
            probe_stage = plan.stages[next_index]
            probe_vertex = ctx[probe_stage.vertex_slot]
            probe_hop = probe_stage.hop
            neighbors, edge_ids = graph.out_edges(vertex)
            for target, eid in zip(neighbors, edge_ids):
                stats.ops += 1
                target = int(target)
                eid = int(eid)
                if not self._edge_ok(hop, ctx, vertex, eid):
                    continue
                appendix = tuple(
                    capture(eid) for capture in hop.edge_captures
                )
                for probe_eid in graph.edges_between(probe_vertex, target):
                    stats.ops += 1
                    base_ctx = ctx + appendix
                    if not self._edge_ok(probe_hop, base_ctx, probe_vertex,
                                         probe_eid):
                        continue
                    out_ctx = self._extend(probe_hop, base_ctx, probe_eid,
                                           target)
                    self._run_vertex(plan, next_index + 1, out_ctx, target,
                                     rows, stats)
            return

        raise AssertionError("unexpected hop in shared-memory engine: %r"
                             % (kind,))

    def _edge_ok(self, hop, ctx, vertex, eid):
        if hop.edge_label_id is not None and \
                self.graph.edge_label(eid) != hop.edge_label_id:
            return False
        for slot in hop.iso_edge_slots:
            if ctx[slot] == eid:
                return False
        if hop.edge_filter is not None and \
                not hop.edge_filter(ctx, vertex, eid):
            return False
        return True

    def _extend(self, hop, ctx, eid, target):
        if hop.edge_captures:
            ctx = ctx + tuple(capture(eid) for capture in hop.edge_captures)
        if target is not None and hop.appends_target_id:
            ctx = ctx + (target,)
        return ctx
