"""Relational join baseline (the GraphFrames-style comparison of §2).

GraphFrames "implements distributed graph pattern matching on top of
Apache Spark's dataframes: one dataframe for vertices and another for
edges; a stage for matching an edge is naturally mapped into a join
operation."  This baseline reproduces that strategy over in-memory
tables: the pattern is evaluated operator by operator on a *binding
table* (one row per partial match), each NeighborMatch being a hash
join between the binding table and the edge table.

It shares the logical plan with the other engines but none of the
distributed machinery — the point of the comparison is the volume of
materialized intermediate rows (``peak_rows``), which the ablation
benches contrast with the DFT engine's bounded live state.
"""

from collections import defaultdict

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.engine_api import Engine
from repro.errors import PlanError
from repro.graph.types import Direction
from repro.pgql import parse_and_validate
from repro.pgql.ast import Query
from repro.pgql.expressions import EvalEnv, evaluate
from repro.plan import PlannerOptions
from repro.plan.logical import (
    CartesianRootMatch,
    CommonNeighborMatch,
    EdgeCheck,
    NeighborMatch,
    RootVertexMatch,
    build_logical_plan,
)
from repro.plan.options import MatchSemantics
from repro.runtime.results import ResultSet


class _BindingEnv(EvalEnv):
    """Expression environment over one binding row (var -> entity id)."""

    def __init__(self, graph, vertex_vars):
        self._graph = graph
        self._vertex_vars = vertex_vars
        self._binding = None

    def bind(self, binding):
        self._binding = binding
        return self

    def entity_id(self, var):
        return self._binding[var]

    def prop(self, var, prop):
        if var in self._vertex_vars:
            return self._graph.vertex_prop(prop, self._binding[var])
        return self._graph.edge_prop(prop, self._binding[var])

    def label(self, var):
        if var in self._vertex_vars:
            return self._graph.vertex_label_name(self._binding[var])
        return self._graph.edge_label_name(self._binding[var])

    def has_prop(self, var, prop):
        if var in self._vertex_vars:
            return self._graph.has_vertex_prop(prop)
        return self._graph.has_edge_prop(prop)


class JoinEngine(Engine):
    """Evaluates patterns with eager hash joins over binding tables."""

    def __init__(self, graph, config=None):
        self.graph = graph
        # The join baseline is single-machine; the config only supplies
        # the unified Engine constructor shape (and the machine count
        # reported in metrics).
        self.config = config or ClusterConfig(num_machines=1)
        # Hash indexes of the edge table, built once per engine.
        self._by_src = defaultdict(list)
        self._by_dst = defaultdict(list)
        for eid in range(graph.num_edges):
            src, dst = graph.edge_endpoints(eid)
            self._by_src[src].append((eid, dst))
            self._by_dst[dst].append((eid, src))

    def query(self, query, options=None):
        options = options or PlannerOptions()
        if isinstance(query, str):
            query = parse_and_validate(query)
        elif not isinstance(query, Query):
            raise TypeError("expected PGQL text or a parsed Query")
        from repro.plan.paths import has_quantified_paths

        if has_quantified_paths(query):
            from repro.runtime.engine import execute_union

            return execute_union(query, options, self.query)
        if options.semantics is not MatchSemantics.HOMOMORPHISM:
            raise PlanError("the join baseline implements homomorphism only")
        from repro.pgql.expressions import contains_aggregate

        if query.group_by or any(
            contains_aggregate(item.expr) for item in query.select_items
        ):
            raise PlanError("the join baseline does not aggregate")
        plan = build_logical_plan(query, vertex_order=options.vertex_order)
        return self._execute(query, plan)

    def _execute(self, query, plan):
        graph = self.graph
        vertex_vars = set(query.vertex_vars())
        env = _BindingEnv(graph, vertex_vars)
        label_lookup = graph.labels.lookup

        bindings = [{}]
        ops = 0
        peak_rows = 1
        for op in plan.ops:
            produced = []
            if isinstance(op, (RootVertexMatch, CartesianRootMatch)):
                wanted = None
                if op.label is not None:
                    wanted = label_lookup(op.label)
                for binding in bindings:
                    for vertex in graph.vertices():
                        ops += 1
                        if wanted is not None and \
                                graph.vertex_label(vertex) != wanted:
                            continue
                        if wanted is None and op.label is not None:
                            continue  # label absent from the graph
                        row = dict(binding)
                        row[op.var] = vertex
                        produced.append(row)
            elif isinstance(op, NeighborMatch):
                index = (
                    self._by_src
                    if op.direction is Direction.OUT
                    else self._by_dst
                )
                wanted = None
                if op.edge_label is not None:
                    wanted = label_lookup(op.edge_label)
                dst_label = None
                if op.dst_label is not None:
                    dst_label = label_lookup(op.dst_label)
                for binding in bindings:
                    src = binding[op.src_var]
                    for eid, target in index.get(src, ()):
                        ops += 1
                        if wanted is not None and \
                                graph.edge_label(eid) != wanted:
                            continue
                        if op.edge_label is not None and wanted is None:
                            continue
                        if op.dst_label is not None and (
                            dst_label is None
                            or graph.vertex_label(target) != dst_label
                        ):
                            continue
                        row = dict(binding)
                        row[op.dst_var] = target
                        row[op.edge_var] = eid
                        produced.append(row)
            elif isinstance(op, EdgeCheck):
                wanted = None
                if op.edge_label is not None:
                    wanted = label_lookup(op.edge_label)
                for binding in bindings:
                    src = binding[op.src_var]
                    dst = binding[op.dst_var]
                    for eid in graph.edges_between(src, dst):
                        ops += 1
                        if wanted is not None and \
                                graph.edge_label(eid) != wanted:
                            continue
                        if op.edge_label is not None and wanted is None:
                            continue
                        row = dict(binding)
                        row[op.edge_var] = eid
                        produced.append(row)
            elif isinstance(op, CommonNeighborMatch):
                raise PlanError(
                    "the join baseline needs plans without the "
                    "common-neighbor operator"
                )
            else:
                raise PlanError("unknown operator: %r" % (op,))

            if op.filters:
                kept = []
                for row in produced:
                    ops += 1
                    env.bind(row)
                    if all(
                        _predicate(conjunct, env) for conjunct in op.filters
                    ):
                        kept.append(row)
                produced = kept
            bindings = produced
            peak_rows = max(peak_rows, len(bindings))

        rows = []
        for binding in bindings:
            env.bind(binding)
            rows.append(
                tuple(
                    evaluate(item.expr, env)
                    for item in query.select_items
                )
            )
        columns = [
            item.alias if item.alias else repr(item.expr)
            for item in query.select_items
        ]
        metrics = QueryMetrics(
            ticks=ops,
            num_machines=1,
            total_ops=ops,
            num_results=len(rows),
            peak_buffered_contexts=peak_rows,
        )
        from repro.runtime.engine import QueryResult

        return QueryResult(ResultSet(columns, rows), metrics, plan)


def _predicate(expr, env):
    try:
        return bool(evaluate(expr, env))
    except (TypeError, ZeroDivisionError):
        return False
