"""Benchmark workloads: the BSBM-like e-commerce graph + query 5, and
the uniform-random-graph / random-pattern-query suite."""

from repro.workloads.bsbm import (
    BsbmGraph,
    generate_bsbm,
    query5,
    query5_parts,
)
from repro.workloads.random_graphs import (
    random_pattern_query,
    random_query_suite,
    seeded_workload,
    split_heavy_fast,
)
from repro.workloads.skewed import (
    skewed_music_graph,
    skewed_query_suite,
    skewed_workload,
)

__all__ = [
    "BsbmGraph",
    "generate_bsbm",
    "query5",
    "query5_parts",
    "random_pattern_query",
    "random_query_suite",
    "seeded_workload",
    "skewed_music_graph",
    "skewed_query_suite",
    "skewed_workload",
    "split_heavy_fast",
]
