"""Skewed "music industry" workload for the cost-based planner pillar.

The graph is deliberately lopsided: a huge ``person`` population, a
handful of ``band`` vertices soaking up most of the ``fan_of`` edges
(power-law fan-in), and a mid-sized ``song`` catalog whose ``likes``
edges again concentrate on a few hits.  On such a graph the textual
left-to-right matching order is consistently bad — the queries below are
*written* to start at the fat end — so the workload separates a
cost-based planner from the naive appearance order on deterministic
work/message metrics, not just wall time.

The query suite exercises each planner capability once:

* a forward chain whose cheap anchor is the *last* variable in the text
  (label + equality filter on ``band``), forcing a reordering that
  traverses ``fan_of`` against its direction — priced with the
  in-degree histograms;
* a reverse hop anchored on a single hit song (in-degree statistics
  again, this time as the root choice);
* a triangle (fan of a band who also likes one of its songs);
* a common-neighbor intersection (two named listeners sharing a song)
  where the §5 operator should be auto-enabled by the model.

Everything is a pure function of the seed.
"""

import random

from repro.graph.builder import GraphBuilder


def _skewed_index(rng, count, exponent=3.0):
    """Random index in ``[0, count)`` biased toward 0 (power-law-ish)."""
    return min(count - 1, int(count * (rng.random() ** exponent)))


def skewed_music_graph(num_persons=300, num_bands=8, num_songs=40,
                       fan_edges=900, likes_edges=600, num_curators=12,
                       curator_likes=25, seed=0):
    """Seeded skewed graph: persons >> songs >> bands, hub-heavy edges.

    Besides the base population, *num_curators* ``curator`` vertices
    each like *curator_likes* distinct songs — a separately-labeled
    high-fan-out cohort, so the per-label degree histograms price their
    expansions correctly and the common-neighbor operator has real
    candidate lists to intersect.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()
    bands = [
        builder.add_vertex(label="band", name="band%d" % index,
                           genre=index % 4)
        for index in range(num_bands)
    ]
    songs = [
        builder.add_vertex(label="song", title="song%d" % index,
                           year=1990 + index % 30)
        for index in range(num_songs)
    ]
    persons = [
        builder.add_vertex(label="person", name="p%d" % index,
                           age=18 + index % 50)
        for index in range(num_persons)
    ]
    curators = [
        builder.add_vertex(label="curator", name="c%d" % index,
                           age=25 + index % 40)
        for index in range(num_curators)
    ]
    # Every song is recorded by exactly one band; hits cluster on band0.
    for song in songs:
        builder.add_edge(bands[_skewed_index(rng, num_bands)], song,
                         label="recorded")
    # Fandom: most fan_of edges land on the first few bands.
    for _ in range(fan_edges):
        builder.add_edge(rng.choice(persons),
                         bands[_skewed_index(rng, num_bands)],
                         label="fan_of")
    # Listening: likes concentrate on the first few songs (the hits).
    for _ in range(likes_edges):
        builder.add_edge(rng.choice(persons),
                         songs[_skewed_index(rng, num_songs)],
                         label="likes")
    # Curators like broad, distinct song sets (intersection fodder).
    for curator in curators:
        for song_index in sorted(
            rng.sample(range(num_songs), min(curator_likes, num_songs))
        ):
            builder.add_edge(curator, songs[song_index], label="likes")
    return builder.build()


def skewed_query_suite(seed=0, num_bands=8, num_songs=40, num_curators=12):
    """Deterministic planner-adversarial queries (naive-bad text order).

    Anchors are drawn from the *rare tail* of the skew: filtering on a
    tail band or tail song is genuinely selective, which is exactly the
    situation where matching in text order (fat end first) loses.
    """
    rng = random.Random(seed ^ 0x5EED)
    band = "band%d" % rng.randrange(num_bands // 2, num_bands)
    song = "song%d" % rng.randrange(num_songs // 2, num_songs)
    half = max(1, num_curators // 2)
    listener_a = "c%d" % rng.randrange(half)
    listener_b = "c%d" % rng.randrange(half, num_curators)
    return [
        # Text order starts at the 300-person fat end; the selective
        # anchor (band name equality) is last.
        "SELECT p, b, s WHERE (p:person)-[:fan_of]->(b:band)"
        "-[:recorded]->(s:song), b.name = '%s'" % band,
        # Reverse hop: the only cheap start is the tail song, reached
        # against the likes direction (in-degree statistics).
        "SELECT p, s WHERE (p:person)-[:likes]->(s:song), "
        "s.title = '%s'" % song,
        # Triangle: fan of a band who also likes one of its songs.
        "SELECT p, b, s WHERE (p:person)-[:fan_of]->(b:band), "
        "(b)-[:recorded]->(s:song), (p)-[:likes]->(s), "
        "b.name = '%s'" % band,
        # Common-neighbor intersection: two named curators sharing a
        # song — the §5 operator's home turf.
        "SELECT a, s, b WHERE (a:curator)-[:likes]->(s:song)"
        "<-[:likes]-(b:curator), a.name = '%s', b.name = '%s'"
        % (listener_a, listener_b),
    ]


def skewed_workload(config, num_persons=300, num_bands=8, num_songs=40,
                    fan_edges=900, likes_edges=600, num_curators=12,
                    curator_likes=25):
    """``(graph, queries)`` pair derived entirely from ``config.seed``."""
    seed = getattr(config, "seed", 0)
    graph = skewed_music_graph(
        num_persons=num_persons, num_bands=num_bands, num_songs=num_songs,
        fan_edges=fan_edges, likes_edges=likes_edges,
        num_curators=num_curators, curator_likes=curator_likes, seed=seed,
    )
    queries = skewed_query_suite(
        seed=seed, num_bands=num_bands, num_songs=num_songs,
        num_curators=num_curators,
    )
    return graph, queries
