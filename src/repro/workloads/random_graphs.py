"""Random-graph workload (paper §4.1, second experiment).

"We use an artificial uniformly random graph ... We evaluate 10 randomly
selected queries, with four edge patterns each" and split them into
*heavy* (seconds-scale) and *fast* queries.  This module generates the
scaled-down equivalent: a seeded uniform random graph (from
``repro.graph.generators``) plus a deterministic family of random
pattern queries with a configurable number of edges.

Each random query is a connected pattern whose shape, edge directions,
and filters are drawn from a seeded RNG.  Filters vary in tightness,
which is what spreads the workload into heavy and fast queries.
"""

import random

from repro.graph.generators import uniform_random_graph  # noqa: F401  (re-export)


def random_pattern_query(seed, num_edges=4, num_types=8, value_range=10_000):
    """One random pattern query with *num_edges* edge patterns.

    The pattern is built by growing a random connected shape over
    variables ``v0 .. vk``: each new edge either extends the frontier
    with a fresh variable (80%) or closes a cycle between existing ones.
    Every variable gets a ``type`` equality filter with probability 0.4
    and a ``value`` range filter with probability 0.3.
    """
    rng = random.Random(seed)
    edges = []
    num_vars = 1
    while len(edges) < num_edges:
        extend = rng.random() < 0.8 or num_vars < 2
        if extend:
            src = rng.randrange(num_vars)
            dst = num_vars
            num_vars += 1
        else:
            src = rng.randrange(num_vars)
            dst = rng.randrange(num_vars)
            if src == dst or (src, dst) in edges or (dst, src) in edges:
                continue
        if rng.random() < 0.5:
            src, dst = dst, src
        edges.append((src, dst))

    constraints = []
    for var in range(num_vars):
        if rng.random() < 0.4:
            constraints.append(
                "v%d.type = %d" % (var, rng.randrange(num_types))
            )
        if rng.random() < 0.3:
            bound = rng.randrange(value_range)
            op = rng.choice(["<", ">"])
            constraints.append("v%d.value %s %d" % (var, op, bound))

    patterns = [
        "(v%d)-[]->(v%d)" % (src, dst) for src, dst in edges
    ]
    select = ", ".join("v%d" % var for var in range(num_vars))
    where = ", ".join(patterns + constraints)
    return "SELECT %s WHERE %s" % (select, where)


def random_query_suite(num_queries=10, num_edges=4, seed=0, **kwargs):
    """The experiment's 10 random 4-edge-pattern queries (deterministic)."""
    return [
        random_pattern_query(seed * 1000 + index, num_edges=num_edges,
                             **kwargs)
        for index in range(num_queries)
    ]


def seeded_workload(config, num_vertices=1_000, num_edges=5_000,
                    num_queries=10, query_edges=4, num_types=8):
    """A ``(graph, queries)`` pair derived entirely from ``config.seed``.

    The single reproducibility knob: the cluster config's master seed
    drives the random graph, the random query suite, and (via
    ``FaultPlan``) any chaos fault plan of the same config — so one
    integer replays a whole experiment, faults included.
    """
    seed = getattr(config, "seed", 0)
    graph = uniform_random_graph(num_vertices, num_edges, seed=seed,
                                 num_types=num_types)
    queries = random_query_suite(num_queries, num_edges=query_edges,
                                 seed=seed, num_types=num_types)
    return graph, queries


def split_heavy_fast(results_by_query, threshold=None):
    """Split query measurements into heavy and fast groups.

    *results_by_query* maps query id to a work measure (e.g. total ops on
    the smallest cluster).  The default threshold is the geometric middle
    of the observed range, mirroring how the paper separates the
    seconds-scale queries from the rest.
    """
    if not results_by_query:
        return [], []
    values = sorted(results_by_query.values())
    if threshold is None:
        low, high = max(1, values[0]), max(1, values[-1])
        threshold = (low * high) ** 0.5
    heavy = [
        query for query, value in results_by_query.items()
        if value >= threshold
    ]
    fast = [
        query for query, value in results_by_query.items()
        if value < threshold
    ]
    return heavy, fast
