"""BSBM-like e-commerce workload (paper §4.1, first experiment).

The paper evaluates "the 10 parts of BSBM query 5" on an RDF graph from
the Berlin SPARQL Benchmark converted to a property graph.  The original
data and toolchain are proprietary-scale (8M products / 250M vertices /
1B edges); per the substitution rule we generate a scaled-down synthetic
property graph with the same schema shape:

* ``product`` vertices with numeric properties ``num1`` / ``num2`` and a
  ``title`` string, linked ``-[:producer]->`` to producers and
  ``-[:feature]->`` to shared product features;
* ``offer`` vertices ``-[:offerProduct]->`` products and
  ``-[:vendor]->`` vendors;
* ``review`` vertices ``-[:reviewFor]->`` products and
  ``-[:reviewer]->`` persons, with ``rating`` properties.

BSBM query 5 is the *product similarity* query: given an origin product,
find other products sharing a feature whose numeric properties fall in a
band around the origin's.  The benchmark mix instantiates it with many
different origin products; the "10 parts" are 10 such instantiations.
Origins are chosen with a spread of feature fan-outs so that, exactly as
in the paper's Figure 5, some parts are heavy and parallel while others
are tiny and dominated by distributed overhead.
"""

import random

from repro.graph.builder import GraphBuilder

#: BSBM query 5's similarity bands (verbatim from the benchmark spec).
NUM1_BAND = 120
NUM2_BAND = 170


class BsbmGraph:
    """The generated graph plus the id ranges of each entity class."""

    def __init__(self, graph, product_ids, feature_ids, producer_ids,
                 vendor_ids, offer_ids, review_ids, person_ids):
        self.graph = graph
        self.product_ids = product_ids
        self.feature_ids = feature_ids
        self.producer_ids = producer_ids
        self.vendor_ids = vendor_ids
        self.offer_ids = offer_ids
        self.review_ids = review_ids
        self.person_ids = person_ids


def generate_bsbm(num_products=200, seed=0, num_features=None):
    """Generate a BSBM-shaped property graph.

    Entity counts scale off *num_products* with ratios inspired by the
    BSBM data generator: ~20 products per producer, 2-5 features per
    product drawn from a pool of ~num_products/20 features (with skewed
    popularity, so a few features are shared by many products — these
    make the heavy query-5 parts), 4 offers per product spread over
    ~num_products/20 vendors, and 2 reviews per product from
    ~num_products/2 reviewers.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()

    if num_features is None:
        num_features = max(4, num_products // 20)
    num_producers = max(2, num_products // 20)
    num_vendors = max(2, num_products // 20)
    num_persons = max(4, num_products // 2)
    offers_per_product = 4
    reviews_per_product = 2

    # A small dedicated pool of "niche" features shared only among a few
    # niche products.  Query-5 parts originating at niche products are
    # the paper's tiny, non-scaling parts (P8/P9 in Figure 5): almost no
    # similar products exist, so distributed overhead dominates.
    num_niche_products = max(1, num_products // 100)
    num_niche_features = max(2, num_niche_products // 4)

    feature_ids = [
        builder.add_vertex(label="feature", name="feature%d" % index)
        for index in range(num_features + num_niche_features)
    ]
    main_features = feature_ids[:num_features]
    niche_features = feature_ids[num_features:]
    producer_ids = [
        builder.add_vertex(
            label="producer",
            name="producer%d" % index,
            country="country%d" % rng.randrange(10),
        )
        for index in range(num_producers)
    ]
    vendor_ids = [
        builder.add_vertex(
            label="vendor",
            name="vendor%d" % index,
            country="country%d" % rng.randrange(10),
        )
        for index in range(num_vendors)
    ]
    person_ids = [
        builder.add_vertex(
            label="person",
            name="person%d" % index,
            country="country%d" % rng.randrange(10),
        )
        for index in range(num_persons)
    ]

    product_ids = []
    for index in range(num_products):
        product = builder.add_vertex(
            label="product",
            title="product%d" % index,
            num1=rng.randrange(2000),
            num2=rng.randrange(2000),
            num3=rng.randrange(2000),
        )
        product_ids.append(product)
        builder.add_edge(product, rng.choice(producer_ids), label="producer")
        # Skewed feature popularity: quadratic bias toward low indexes
        # gives a few very common features (heavy query-5 origins) and a
        # long tail of rare ones (fast origins).  The first few products
        # are niche: they only share the tiny niche feature pool.
        feature_count = 2 + rng.randrange(4)
        if index < num_niche_products:
            pool = niche_features
            choices = [rng.choice(pool) for _ in range(feature_count)]
        else:
            choices = [
                main_features[
                    int(num_features * rng.random() ** 2) % num_features
                ]
                for _ in range(feature_count)
            ]
        for feature in choices:
            builder.add_edge(product, feature, label="feature")

    offer_ids = []
    for product in product_ids:
        for _ in range(offers_per_product):
            offer = builder.add_vertex(
                label="offer",
                price=round(rng.uniform(5.0, 5000.0), 2),
                stock=rng.randrange(200),
            )
            offer_ids.append(offer)
            builder.add_edge(offer, product, label="offerProduct")
            builder.add_edge(offer, rng.choice(vendor_ids), label="vendor")

    review_ids = []
    for product in product_ids:
        for _ in range(reviews_per_product):
            review = builder.add_vertex(
                label="review",
                rating=1 + rng.randrange(10),
            )
            review_ids.append(review)
            builder.add_edge(review, product, label="reviewFor")
            builder.add_edge(review, rng.choice(person_ids), label="reviewer")

    return BsbmGraph(
        builder.build(),
        product_ids,
        feature_ids,
        producer_ids,
        vendor_ids,
        offer_ids,
        review_ids,
        person_ids,
    )


def query5(origin_product_id):
    """BSBM query 5 ("similar products") for one origin, in PGQL."""
    return (
        "SELECT DISTINCT p2, p2.title WHERE "
        "(p WITH id() = %d) -[:feature]-> (f) <-[:feature]- (p2), "
        "p2 != p, "
        "p2.num1 < p.num1 + %d, p2.num1 > p.num1 - %d, "
        "p2.num2 < p.num2 + %d, p2.num2 > p.num2 - %d"
        % (origin_product_id, NUM1_BAND, NUM1_BAND, NUM2_BAND, NUM2_BAND)
    )


def query5_parts(bsbm, num_parts=10, seed=0):
    """The 10 parts of BSBM query 5: 10 origin products, spread by load.

    Origins are picked across the product feature-degree distribution —
    from products whose features are shared by many others (heavy parts)
    to products with rare features (fast parts) — matching the per-part
    behaviour spread visible in the paper's Figure 5.
    """
    graph = bsbm.graph
    feature_label = graph.labels.lookup("feature")

    def similarity_fanout(product):
        fanout = 0
        targets, edge_ids = graph.out_edges(product)
        for target, eid in zip(targets, edge_ids):
            if graph.edge_label(int(eid)) == feature_label:
                fanout += graph.in_degree(int(target))
        return fanout

    ranked = sorted(bsbm.product_ids, key=similarity_fanout)
    rng = random.Random(seed)
    picks = []
    stride = max(1, len(ranked) // num_parts)
    for part in range(num_parts):
        if part == 0:
            picks.append(ranked[0])            # the tiniest part
        elif part == num_parts - 1:
            picks.append(ranked[-1])           # the heaviest part
        else:
            bucket = ranked[part * stride:(part + 1) * stride] or ranked[-1:]
            picks.append(rng.choice(bucket))
    return [query5(product) for product in picks]
