"""Deterministic streaming sketches for the statistics subsystem.

Two sketches back the per-property statistics:

* :class:`TopValuesSketch` — a Misra-Gries / Space-Saving frequency
  sketch.  With capacity *k* it tracks at most *k* distinct values and
  guarantees that any value occurring more than ``total / k`` times is
  present, with a per-entry overcount bound (``error``) that makes the
  estimates usable as selectivities: ``count - error`` is a hard lower
  bound on the true frequency.
* :class:`DistinctSketch` — a k-minimum-values (KMV) cardinality
  estimator over a *deterministic* hash (``blake2b``; Python's builtin
  ``hash`` is salted per process and would break cross-run diffing of
  serialized statistics).  Small streams (fewer than *k* distinct
  hashes) are counted exactly.

Both sketches are single-pass, mergeable-by-reinsertion, and serialize
to plain JSON-safe dicts so a graph's statistics can be stored next to
the graph and diffed across versions.
"""

import hashlib


def _hash64(value):
    """Stable 64-bit hash of a property value (type-tagged).

    The type tag keeps ``1`` and ``"1"`` distinct; ``repr`` gives a
    stable byte encoding for ints, floats, bools, and strings (the only
    property types the graph supports).
    """
    payload = ("%s:%r" % (type(value).__name__, value)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class TopValuesSketch:
    """Space-Saving top-k frequency sketch (deterministic)."""

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity=16):
        self.capacity = capacity
        self.total = 0
        self._counts = {}
        self._errors = {}

    def add(self, value, count=1):
        self.total += count
        counts = self._counts
        if value in counts:
            counts[value] += count
            return
        if len(counts) < self.capacity:
            counts[value] = count
            self._errors[value] = 0
            return
        # Evict the (deterministically chosen) minimum entry and adopt
        # its count as the newcomer's overcount bound.
        victim = min(counts, key=lambda key: (counts[key], _hash64(key)))
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[value] = floor + count
        self._errors[value] = floor

    def top(self, n=None):
        """``[(value, count, error)]`` sorted by estimated count desc.

        Ties break on the stable value hash so the listing (and any JSON
        diff of it) is independent of insertion order.
        """
        items = sorted(
            self._counts,
            key=lambda key: (-self._counts[key], _hash64(key)),
        )
        if n is not None:
            items = items[:n]
        return [
            (value, self._counts[value], self._errors[value])
            for value in items
        ]

    def count(self, value):
        """Estimated occurrences of *value* (None when untracked)."""
        count = self._counts.get(value)
        if count is None:
            return None
        return count

    def guaranteed_count(self, value):
        """Lower bound on the true occurrences of *value* (0 untracked)."""
        count = self._counts.get(value)
        if count is None:
            return 0
        return count - self._errors[value]

    @property
    def tracked_total(self):
        return sum(self._counts.values())

    @property
    def guaranteed_total(self):
        """Stream mass provably belonging to the tracked values.

        ``total - guaranteed_total`` bounds the mass that may belong to
        evicted (untracked) values; the raw ``tracked_total`` absorbs
        the whole stream once the capacity is exceeded and would bound
        nothing.
        """
        errors = self._errors
        return sum(
            count - errors[value] for value, count in self._counts.items()
        )

    def to_dict(self):
        return {
            "capacity": self.capacity,
            "total": self.total,
            "entries": [
                [value, count, error] for value, count, error in self.top()
            ],
        }

    @classmethod
    def from_dict(cls, data):
        sketch = cls(capacity=data["capacity"])
        sketch.total = data["total"]
        for value, count, error in data["entries"]:
            sketch._counts[value] = count
            sketch._errors[value] = error
        return sketch


class DistinctSketch:
    """KMV distinct-count estimator with exact small-stream counting."""

    #: Hash space size: hashes are uniform in ``[0, 2**64)``.
    _SPACE = float(2**64)

    __slots__ = ("capacity", "_hashes")

    def __init__(self, capacity=256):
        self.capacity = capacity
        self._hashes = set()

    def add(self, value):
        self.add_hash(_hash64(value))

    def add_hash(self, hashed):
        hashes = self._hashes
        if len(hashes) < self.capacity:
            hashes.add(hashed)
            return
        if hashed in hashes:
            return
        largest = max(hashes)
        if hashed < largest:
            hashes.discard(largest)
            hashes.add(hashed)

    def estimate(self):
        """Estimated number of distinct values seen."""
        hashes = self._hashes
        size = len(hashes)
        if size < self.capacity:
            return size  # exact: every distinct hash fits
        kth = max(hashes)
        if kth == 0:
            return size
        return int(round((size - 1) * self._SPACE / kth))

    def to_dict(self):
        return {
            "capacity": self.capacity,
            "hashes": sorted(self._hashes),
        }

    @classmethod
    def from_dict(cls, data):
        sketch = cls(capacity=data["capacity"])
        sketch._hashes = set(data["hashes"])
        return sketch
