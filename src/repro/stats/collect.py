"""Graph statistics: collection, estimation helpers, serialization.

:func:`collect_statistics` makes one deterministic pass over a
:class:`~repro.graph.graph.PropertyGraph` and produces a
:class:`GraphStatistics` object holding

* per-label vertex and edge counts,
* in- and out-degree distributions per vertex label (log2-bucketed
  histograms plus min/max/mean),
* edge-label fan-out: for every ``(source label, edge label,
  destination label)`` triple, how many edges connect them — from which
  the average neighbors per source vertex and the conditional
  destination-label distribution both derive,
* per-property distinct-count and top-value sketches (see
  ``repro.stats.sketches``) plus numeric min/max for range estimates.

The object is cheap to recompute (a few numpy passes), serializes to a
JSON-safe dict so it can be stored alongside the graph
(``save_json(graph, path, include_stats=True)``), and is the sole input
of the cost-based planner (``repro.plan.cost``) — the planner never
touches raw graph storage, so statistics can be collected once at build
time and shipped with a partitioned graph.
"""

import json

import numpy as np

from repro.graph.types import NO_LABEL, PropertyType
from repro.stats.sketches import DistinctSketch, TopValuesSketch

#: Default number of tracked top values per property column.
DEFAULT_TOP_K = 16

#: Default KMV size for distinct-count estimation.
DEFAULT_DISTINCT_K = 256


class DegreeStats:
    """Distribution summary of one degree population (one label/side)."""

    __slots__ = ("count", "min", "max", "mean", "buckets")

    def __init__(self, count=0, min_=0, max_=0, mean=0.0, buckets=()):
        self.count = count
        self.min = min_
        self.max = max_
        self.mean = mean
        #: ``buckets[0]`` counts degree 0; ``buckets[b]`` (b >= 1) counts
        #: degrees in ``[2**(b-1), 2**b - 1]`` — a log2 histogram that
        #: keeps skew visible without storing every degree.
        self.buckets = list(buckets)

    @classmethod
    def from_degrees(cls, degrees):
        if len(degrees) == 0:
            return cls()
        degrees = np.asarray(degrees)
        max_degree = int(degrees.max())
        num_buckets = max_degree.bit_length() + 1
        buckets = [0] * num_buckets
        indices = np.zeros(len(degrees), dtype=np.int64)
        nonzero = degrees > 0
        if nonzero.any():
            # bucket = bit_length(degree) for degree >= 1
            indices[nonzero] = (
                np.floor(np.log2(degrees[nonzero])).astype(np.int64) + 1
            )
        for bucket, count in zip(*np.unique(indices, return_counts=True)):
            buckets[int(bucket)] = int(count)
        return cls(
            count=int(len(degrees)),
            min_=int(degrees.min()),
            max_=max_degree,
            mean=float(degrees.mean()),
            buckets=buckets,
        )

    def to_dict(self):
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": self.buckets,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            count=data["count"],
            min_=data["min"],
            max_=data["max"],
            mean=data["mean"],
            buckets=data["buckets"],
        )

    def __repr__(self):
        return "DegreeStats(n=%d, min=%d, max=%d, mean=%.2f)" % (
            self.count, self.min, self.max, self.mean,
        )


class PropertyStats:
    """Distinct-count and top-value summary of one property column."""

    __slots__ = ("name", "ptype", "count", "distinct", "top_values",
                 "numeric_min", "numeric_max")

    def __init__(self, name, ptype, count, distinct, top_values,
                 numeric_min=None, numeric_max=None):
        self.name = name
        self.ptype = ptype
        self.count = count
        self.distinct = distinct          # DistinctSketch
        self.top_values = top_values      # TopValuesSketch
        self.numeric_min = numeric_min
        self.numeric_max = numeric_max

    @classmethod
    def from_column(cls, column, top_k=DEFAULT_TOP_K,
                    distinct_k=DEFAULT_DISTINCT_K):
        values = column.values()
        distinct = DistinctSketch(capacity=distinct_k)
        top = TopValuesSketch(capacity=top_k)
        # One pass over exact value counts keeps the Space-Saving sketch
        # insertion-order independent (columnar data is already in
        # memory; true streaming ingestion would call ``add`` per row).
        counts = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        for value in sorted(counts, key=lambda v: (-counts[v], repr(v))):
            distinct.add(value)
            top.add(value, counts[value])
        numeric_min = numeric_max = None
        if column.ptype in (PropertyType.LONG, PropertyType.DOUBLE) \
                and values:
            numeric_min = min(values)
            numeric_max = max(values)
        return cls(column.name, column.ptype, len(values), distinct, top,
                   numeric_min, numeric_max)

    def eq_selectivity(self, value):
        """Estimated fraction of rows equal to *value*."""
        if self.count == 0:
            return 0.0
        tracked = self.top_values.count(value)
        if tracked is not None:
            return min(1.0, tracked / self.count)
        # Untracked: spread the residual mass over the residual distinct
        # values (uniformity assumption outside the heavy hitters).  The
        # residual uses the sketch's guaranteed (error-free) mass — raw
        # tracked counts absorb evicted values' occurrences and would
        # zero the residual, estimating existing values as impossible.
        residual = self.count - self.top_values.guaranteed_total
        residual_distinct = max(
            1, self.distinct.estimate() - len(self.top_values.top())
        )
        if residual <= 0:
            return 0.0
        return min(1.0, residual / residual_distinct / self.count)

    def range_selectivity(self, op, value):
        """Estimated fraction of rows satisfying ``row <op> value``."""
        lo, hi = self.numeric_min, self.numeric_max
        if lo is None or hi is None or not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            return 0.5
        if hi <= lo:
            span_frac = 0.5
        else:
            span_frac = (min(max(value, lo), hi) - lo) / (hi - lo)
        if op in ("<", "<="):
            return max(0.0, min(1.0, span_frac))
        if op in (">", ">="):
            return max(0.0, min(1.0, 1.0 - span_frac))
        return 0.5

    def to_dict(self):
        return {
            "name": self.name,
            "type": self.ptype.value,
            "count": self.count,
            "distinct": self.distinct.to_dict(),
            "top_values": self.top_values.to_dict(),
            "numeric_min": self.numeric_min,
            "numeric_max": self.numeric_max,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["name"],
            PropertyType(data["type"]),
            data["count"],
            DistinctSketch.from_dict(data["distinct"]),
            TopValuesSketch.from_dict(data["top_values"]),
            data.get("numeric_min"),
            data.get("numeric_max"),
        )


class GraphStatistics:
    """All collected statistics of one graph snapshot.

    Label keys are label *names* (strings) or ``None`` for unlabeled
    entities, so the object survives serialization without depending on
    the graph's label-id assignment.
    """

    SCHEMA = "repro-graph-stats/1"

    def __init__(self, num_vertices, num_edges):
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        #: {label_name_or_None: vertex count}
        self.vertex_label_counts = {}
        #: {label_name_or_None: edge count}
        self.edge_label_counts = {}
        #: {label_name_or_None: DegreeStats} per side
        self.out_degrees = {}
        self.in_degrees = {}
        #: Whole-graph degree distributions (all labels pooled).
        self.out_degrees_all = DegreeStats()
        self.in_degrees_all = DegreeStats()
        #: {(src_label, edge_label, dst_label): edge count}
        self.edge_triples = {}
        #: {prop_name: PropertyStats}
        self.vertex_properties = {}
        self.edge_properties = {}

    # ------------------------------------------------------------------
    # Estimation helpers (the cost model's interface)
    # ------------------------------------------------------------------
    def vertex_label_count(self, label):
        """Vertices carrying *label* (None = unlabeled; unseen = 0)."""
        return self.vertex_label_counts.get(label, 0)

    def vertex_label_fraction(self, label):
        if self.num_vertices == 0:
            return 0.0
        if label is None:
            return 1.0
        return self.vertex_label_count(label) / self.num_vertices

    def edge_count(self, src_label=None, edge_label=None, dst_label=None):
        """Edges matching the given (None = any) label triple."""
        total = 0
        for (src, elab, dst), count in self.edge_triples.items():
            if src_label is not None and src != src_label:
                continue
            if edge_label is not None and elab != edge_label:
                continue
            if dst_label is not None and dst != dst_label:
                continue
            total += count
        return total

    def expected_neighbors(self, src_label, edge_label, direction):
        """Average matching neighbors per source vertex (the fan-out).

        *direction* is ``"out"`` (follow src -> dst edges) or ``"in"``
        (follow dst -> src edges, i.e. the source vertex is the edge's
        destination).  ``src_label=None`` averages over all vertices.
        """
        if direction == "out":
            edges = self.edge_count(src_label=src_label,
                                    edge_label=edge_label)
        else:
            edges = self.edge_count(dst_label=src_label,
                                    edge_label=edge_label)
        if src_label is None:
            population = self.num_vertices
        else:
            population = self.vertex_label_count(src_label)
        if population == 0:
            return 0.0
        return edges / population

    def neighbor_label_fraction(self, src_label, edge_label, direction,
                                target_label):
        """P(neighbor carries *target_label* | reached via the hop).

        Conditional on following an edge of *edge_label* from a vertex
        of *src_label* in *direction*; falls back to the unconditional
        vertex-label fraction when the hop population is empty.
        """
        if target_label is None:
            return 1.0
        if direction == "out":
            matching = self.edge_count(src_label=src_label,
                                       edge_label=edge_label,
                                       dst_label=target_label)
            population = self.edge_count(src_label=src_label,
                                         edge_label=edge_label)
        else:
            matching = self.edge_count(dst_label=src_label,
                                       edge_label=edge_label,
                                       src_label=target_label)
            population = self.edge_count(dst_label=src_label,
                                         edge_label=edge_label)
        if population == 0:
            return self.vertex_label_fraction(target_label)
        return matching / population

    def edge_probability(self, src_label, edge_label, dst_label):
        """Expected parallel edges between one (src, dst) vertex pair."""
        src_count = (
            self.num_vertices if src_label is None
            else self.vertex_label_count(src_label)
        )
        dst_count = (
            self.num_vertices if dst_label is None
            else self.vertex_label_count(dst_label)
        )
        if src_count == 0 or dst_count == 0:
            return 0.0
        edges = self.edge_count(src_label=src_label, edge_label=edge_label,
                                dst_label=dst_label)
        return edges / (src_count * dst_count)

    def vertex_prop_stats(self, name):
        return self.vertex_properties.get(name)

    def edge_prop_stats(self, name):
        return self.edge_properties.get(name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "schema": self.SCHEMA,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "vertex_label_counts": _label_map_to_list(
                self.vertex_label_counts
            ),
            "edge_label_counts": _label_map_to_list(self.edge_label_counts),
            "out_degrees": _degree_map_to_list(self.out_degrees),
            "in_degrees": _degree_map_to_list(self.in_degrees),
            "out_degrees_all": self.out_degrees_all.to_dict(),
            "in_degrees_all": self.in_degrees_all.to_dict(),
            "edge_triples": [
                [src, elab, dst, count]
                for (src, elab, dst), count in sorted(
                    self.edge_triples.items(),
                    key=lambda item: _triple_key(item[0]),
                )
            ],
            "vertex_properties": {
                name: stats.to_dict()
                for name, stats in sorted(self.vertex_properties.items())
            },
            "edge_properties": {
                name: stats.to_dict()
                for name, stats in sorted(self.edge_properties.items())
            },
        }

    @classmethod
    def from_dict(cls, data):
        stats = cls(data["num_vertices"], data["num_edges"])
        stats.vertex_label_counts = _label_map_from_list(
            data["vertex_label_counts"]
        )
        stats.edge_label_counts = _label_map_from_list(
            data["edge_label_counts"]
        )
        stats.out_degrees = _degree_map_from_list(data["out_degrees"])
        stats.in_degrees = _degree_map_from_list(data["in_degrees"])
        stats.out_degrees_all = DegreeStats.from_dict(
            data["out_degrees_all"]
        )
        stats.in_degrees_all = DegreeStats.from_dict(data["in_degrees_all"])
        stats.edge_triples = {
            (src, elab, dst): count
            for src, elab, dst, count in data["edge_triples"]
        }
        stats.vertex_properties = {
            name: PropertyStats.from_dict(record)
            for name, record in data["vertex_properties"].items()
        }
        stats.edge_properties = {
            name: PropertyStats.from_dict(record)
            for name, record in data["edge_properties"].items()
        }
        return stats

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Human-readable rendering (``repro stats``)
    # ------------------------------------------------------------------
    def table(self, top=5):
        """Multi-line text table of the collected statistics."""
        lines = []
        lines.append("graph      : %d vertices, %d edges"
                     % (self.num_vertices, self.num_edges))
        lines.append("")
        lines.append("%-18s %10s %10s %6s %6s %8s"
                     % ("vertex label", "count", "out-mean", "o-max",
                        "i-max", "in-mean"))
        for label in sorted(self.vertex_label_counts,
                            key=lambda name: (name is None, name)):
            out = self.out_degrees.get(label, DegreeStats())
            in_ = self.in_degrees.get(label, DegreeStats())
            lines.append("%-18s %10d %10.2f %6d %6d %8.2f" % (
                label if label is not None else "(unlabeled)",
                self.vertex_label_counts[label],
                out.mean, out.max, in_.max, in_.mean,
            ))
        lines.append("")
        lines.append("%-18s %10s" % ("edge label", "count"))
        for label in sorted(self.edge_label_counts,
                            key=lambda name: (name is None, name)):
            lines.append("%-18s %10d" % (
                label if label is not None else "(unlabeled)",
                self.edge_label_counts[label],
            ))
        lines.append("")
        lines.append("fan-out (src label -[edge label]-> dst label):")
        triples = sorted(
            self.edge_triples.items(),
            key=lambda item: (-item[1], _triple_key(item[0])),
        )
        shown = triples if top is None else triples[:top]
        for (src, elab, dst), count in shown:
            src_count = (
                self.vertex_label_count(src) if src is not None
                else self.num_vertices
            )
            avg = count / src_count if src_count else 0.0
            lines.append(
                "  %-14s -[%s]-> %-14s edges=%-8d avg/src=%.2f"
                % (src or "(unlabeled)", elab or "", dst or "(unlabeled)",
                   count, avg)
            )
        if top is not None and len(triples) > top:
            lines.append("  ... %d more" % (len(triples) - top))
        for kind, props in (("vertex", self.vertex_properties),
                            ("edge", self.edge_properties)):
            if not props:
                continue
            lines.append("")
            lines.append("%s properties:" % kind)
            for name in sorted(props):
                stats = props[name]
                summary = "  %-14s %-8s distinct~%-6d" % (
                    name, stats.ptype.value, stats.distinct.estimate()
                )
                if stats.numeric_min is not None:
                    summary += " range=[%s, %s]" % (
                        stats.numeric_min, stats.numeric_max
                    )
                lines.append(summary)
                for value, count, error in stats.top_values.top(top):
                    lines.append(
                        "      %-24r count~%-8d (err<=%d)"
                        % (value, count, error)
                    )
        return "\n".join(lines)

    def __repr__(self):
        return "GraphStatistics(vertices=%d, edges=%d, labels=%d/%d)" % (
            self.num_vertices,
            self.num_edges,
            len(self.vertex_label_counts),
            len(self.edge_label_counts),
        )


def collect_statistics(graph, top_k=DEFAULT_TOP_K,
                       distinct_k=DEFAULT_DISTINCT_K):
    """One deterministic pass over *graph* -> :class:`GraphStatistics`."""
    stats = GraphStatistics(graph.num_vertices, graph.num_edges)
    label_name = _label_namer(graph)

    vertex_labels = graph.vertex_labels_array()
    out_degrees, in_degrees = graph.degree_arrays()
    stats.out_degrees_all = DegreeStats.from_degrees(out_degrees)
    stats.in_degrees_all = DegreeStats.from_degrees(in_degrees)

    if vertex_labels is None:
        stats.vertex_label_counts[None] = graph.num_vertices
        stats.out_degrees[None] = stats.out_degrees_all
        stats.in_degrees[None] = stats.in_degrees_all
    else:
        for label_id, count in zip(
            *np.unique(vertex_labels, return_counts=True)
        ):
            name = label_name(int(label_id))
            stats.vertex_label_counts[name] = int(count)
            mask = vertex_labels == label_id
            stats.out_degrees[name] = DegreeStats.from_degrees(
                out_degrees[mask]
            )
            stats.in_degrees[name] = DegreeStats.from_degrees(
                in_degrees[mask]
            )

    edge_src, edge_dst = graph.edge_endpoint_arrays()
    edge_labels = graph.edge_labels_array()
    if graph.num_edges:
        if edge_labels is None:
            elab_ids = np.full(graph.num_edges, NO_LABEL, dtype=np.int64)
        else:
            elab_ids = edge_labels.astype(np.int64)
        if vertex_labels is None:
            src_ids = np.full(graph.num_edges, NO_LABEL, dtype=np.int64)
            dst_ids = src_ids
        else:
            src_ids = vertex_labels[edge_src].astype(np.int64)
            dst_ids = vertex_labels[edge_dst].astype(np.int64)
        triples = np.stack([src_ids, elab_ids, dst_ids], axis=1)
        unique, counts = np.unique(triples, axis=0, return_counts=True)
        for (src_id, elab_id, dst_id), count in zip(unique, counts):
            key = (
                label_name(int(src_id)),
                label_name(int(elab_id)),
                label_name(int(dst_id)),
            )
            stats.edge_triples[key] = int(count)
        for elab_id, count in zip(*np.unique(elab_ids, return_counts=True)):
            stats.edge_label_counts[label_name(int(elab_id))] = int(count)

    for name in sorted(graph.vertex_properties.names()):
        stats.vertex_properties[name] = PropertyStats.from_column(
            graph.vertex_properties.column(name),
            top_k=top_k, distinct_k=distinct_k,
        )
    for name in sorted(graph.edge_properties.names()):
        stats.edge_properties[name] = PropertyStats.from_column(
            graph.edge_properties.column(name),
            top_k=top_k, distinct_k=distinct_k,
        )
    return stats


# ----------------------------------------------------------------------
# Serialization helpers (None-keyed label maps are not JSON-safe as
# dicts, so they round-trip through sorted entry lists).
# ----------------------------------------------------------------------
def _label_namer(graph):
    labels = graph.labels

    def name(label_id):
        return None if label_id == NO_LABEL else labels.name(label_id)

    return name


def _label_map_to_list(mapping):
    return [
        [label, count]
        for label, count in sorted(
            mapping.items(), key=lambda item: (item[0] is None, item[0])
        )
    ]


def _label_map_from_list(entries):
    return {label: count for label, count in entries}


def _degree_map_to_list(mapping):
    return [
        [label, stats.to_dict()]
        for label, stats in sorted(
            mapping.items(), key=lambda item: (item[0] is None, item[0])
        )
    ]


def _degree_map_from_list(entries):
    return {
        label: DegreeStats.from_dict(record) for label, record in entries
    }


def _triple_key(triple):
    return tuple((part is None, part) for part in triple)
