"""Graph statistics subsystem.

Collects per-label counts, degree histograms, edge fan-out, and
per-property sketches at graph-build time (or on demand for loaded
graphs), serializes them alongside the graph, and feeds the cost-based
distributed planner (``repro.plan.cost``).
"""

from repro.stats.collect import (
    DEFAULT_DISTINCT_K,
    DEFAULT_TOP_K,
    DegreeStats,
    GraphStatistics,
    PropertyStats,
    collect_statistics,
)
from repro.stats.sketches import DistinctSketch, TopValuesSketch

__all__ = [
    "GraphStatistics",
    "DegreeStats",
    "PropertyStats",
    "collect_statistics",
    "DistinctSketch",
    "TopValuesSketch",
    "DEFAULT_TOP_K",
    "DEFAULT_DISTINCT_K",
]
