"""Open-loop traffic generation against a :class:`QueryService`.

The bench matrix measures one query at a time; a *service* is measured
under load.  This module drives a seeded open-loop arrival process
(arrivals do not wait for completions — the defining property of an
open-loop generator) against one shared deployment and reports what a
production graph-query service would: latency percentiles (p50/p95/p99
in global service ticks), achieved throughput, peak concurrency, and a
saturation curve — the same workload swept across offered loads, showing
latency exploding as the arrival rate crosses the service capacity.

Everything is a pure function of the seed: interarrival gaps come from
a ``random.Random(seed)`` stream, the query mix from the seeded random
pattern suite, and the service's stride scheduler is deterministic.
Re-running a sweep reproduces it bit for bit, which is what lets CI
gate serial-vs-concurrent parity on row identity.
"""

import random
from dataclasses import dataclass, field

from repro.engine_api import QueryStatus
from repro.service.service import QueryService, ServiceConfig
from repro.workloads.random_graphs import random_query_suite


@dataclass
class TrafficConfig:
    """One open-loop run: arrival process, mix, and admission policy."""

    #: Number of query arrivals to generate.
    arrivals: int = 12
    #: Mean interarrival gap in global service ticks (exponential).
    mean_interarrival: int = 64
    #: Seed for the arrival process and the default query mix.
    seed: int = 0
    #: Admission slots of the service under test.
    slots: int = 8
    #: Per-scope flow window (None: carve evenly across the slots).
    scope_window: int = None
    #: The query mix, cycled over arrivals.  None: a seeded random
    #: pattern suite with *query_edges* edges per query.
    queries: tuple = None
    #: Edges per generated pattern query (when *queries* is None).
    query_edges: int = 3
    #: Distinct generated queries to cycle through.
    distinct_queries: int = 4
    #: Per-query deadline in virtual ticks (None: none).
    deadline: int = None
    #: Priorities assigned round-robin to arrivals.
    priority_cycle: tuple = (1,)
    #: Record service telemetry (per-tenant registry + series).
    telemetry: bool = False


@dataclass
class TrafficReport:
    """Outcome of one traffic run."""

    arrivals: int = 0
    completed: int = 0
    aborted: int = 0
    cancelled: int = 0
    total_ticks: int = 0
    peak_active: int = 0
    mean_interarrival: int = 0
    #: Sorted submit-to-done latencies (global ticks) of DONE queries.
    latencies: list = field(default_factory=list)
    #: Per-query records from :meth:`QueryService.stats`.
    records: list = field(default_factory=list)
    #: The service driven by the run (telemetry, series, registry).
    service: object = None

    def percentile(self, p):
        """Nearest-rank percentile of the DONE latencies (None if none)."""
        return percentile(self.latencies, p)

    @property
    def throughput_per_kilotick(self):
        """Completed queries per 1000 global ticks."""
        if not self.total_ticks:
            return 0.0
        return 1000.0 * self.completed / self.total_ticks

    def summary(self):
        parts = [
            "arrivals=%d completed=%d aborted=%d cancelled=%d"
            % (self.arrivals, self.completed, self.aborted, self.cancelled),
            "ticks=%d peak_active=%d" % (self.total_ticks, self.peak_active),
        ]
        if self.latencies:
            parts.append(
                "latency p50=%d p95=%d p99=%d"
                % (
                    self.percentile(50),
                    self.percentile(95),
                    self.percentile(99),
                )
            )
            parts.append(
                "throughput=%.2f done/kilotick" % self.throughput_per_kilotick
            )
        return "  ".join(parts)


def percentile(sorted_values, p):
    """Nearest-rank percentile of an ascending list (None when empty)."""
    if not sorted_values:
        return None
    rank = max(1, -(-len(sorted_values) * p // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


def arrival_schedule(traffic):
    """The deterministic arrival ticks of *traffic* (ascending)."""
    rng = random.Random(traffic.seed)
    ticks = []
    now = 0
    for _ in range(traffic.arrivals):
        gap = max(1, round(rng.expovariate(
            1.0 / max(1, traffic.mean_interarrival)
        )))
        now += gap
        ticks.append(now)
    return ticks


def query_mix(traffic):
    """The query texts cycled over arrivals."""
    if traffic.queries:
        return list(traffic.queries)
    return random_query_suite(
        num_queries=traffic.distinct_queries,
        num_edges=traffic.query_edges,
        seed=traffic.seed,
    )


def run_traffic(engine, traffic=None, service_config=None):
    """Drive one open-loop run against a fresh service on *engine*.

    Arrivals are submitted at their scheduled global ticks; between
    arrivals the service issues scheduling grants, and when it goes
    idle before the next arrival the global clock fast-forwards to it
    (open loop: the arrival process never waits for the service).
    """
    traffic = traffic or TrafficConfig()
    if service_config is None:
        service_config = ServiceConfig(
            max_concurrent=traffic.slots,
            scope_window=traffic.scope_window,
            telemetry=traffic.telemetry,
        )
    service = QueryService(engine, service_config)
    schedule = arrival_schedule(traffic)
    mix = query_mix(traffic)
    priorities = traffic.priority_cycle or (1,)
    handles = []
    pending = list(enumerate(schedule))
    cursor = 0
    while cursor < len(pending) or not service.idle:
        while cursor < len(pending) and pending[cursor][1] <= service.now:
            index, _tick = pending[cursor]
            handles.append(service.submit(
                mix[index % len(mix)],
                priority=priorities[index % len(priorities)],
                deadline=traffic.deadline,
            ))
            cursor += 1
        if not service.step():
            if cursor >= len(pending):
                break
            # Idle gap: fast-forward the global clock to the next arrival.
            service.now = pending[cursor][1]
    return _report(traffic, service, handles)


def _report(traffic, service, handles):
    report = TrafficReport(
        arrivals=len(handles),
        total_ticks=service.now,
        peak_active=service.peak_active,
        mean_interarrival=traffic.mean_interarrival,
        records=service.stats(),
        service=service,
    )
    latencies = []
    for handle in handles:
        scope = service.scope(handle.query_id)
        if handle.status is QueryStatus.DONE:
            report.completed += 1
            latencies.append(scope.latency)
        elif handle.status is QueryStatus.CANCELLED:
            report.cancelled += 1
        else:
            report.aborted += 1
    report.latencies = sorted(latencies)
    return report


def saturation_sweep(engine, traffic=None, gaps=(256, 128, 64, 32, 16)):
    """The same workload swept across offered loads (descending gaps).

    Returns ``(gap, TrafficReport)`` pairs — the saturation curve: as
    the mean interarrival gap shrinks below the service's capacity,
    queueing dominates and the latency percentiles climb.
    """
    traffic = traffic or TrafficConfig()
    curve = []
    for gap in gaps:
        from dataclasses import replace

        point = replace(traffic, mean_interarrival=gap)
        curve.append((gap, run_traffic(engine, point)))
    return curve


def verify_serial_parity(engine, traffic=None):
    """Run the arrivals concurrently and serially; compare per query.

    The serial run uses one admission slot with the *same* per-scope
    flow window the concurrent service resolved, so each scope's
    virtual execution must be bit-identical: same rows in the same
    order, same deterministic metrics.  Returns ``(report, mismatches)``
    where an empty mismatch list is the parity gate passing.
    """
    traffic = traffic or TrafficConfig()
    concurrent = run_traffic(engine, traffic)
    resolved_window = (
        concurrent.service.scope_config.flow_control_window
    )
    from dataclasses import replace

    serial_traffic = replace(
        traffic, slots=1, scope_window=resolved_window
    )
    serial = run_traffic(engine, serial_traffic)
    mismatches = []
    con_scopes = concurrent.service
    ser_scopes = serial.service
    for record in concurrent.records:
        query_id = record["query_id"]
        a = con_scopes.scope(query_id)
        b = ser_scopes.scope(query_id)
        if a.status is not b.status:
            mismatches.append(
                "%s: status %s (concurrent) != %s (serial)"
                % (query_id, a.status.value, b.status.value)
            )
            continue
        if a.result is None or b.result is None:
            continue
        if a.result.rows != b.result.rows:
            mismatches.append(
                "%s: %d rows (concurrent) != %d rows (serial) or order "
                "differs"
                % (query_id, len(a.result.rows), len(b.result.rows))
            )
        for metric in ("ticks", "total_ops", "num_results",
                       "work_messages", "contexts_shipped",
                       "peak_buffered_contexts"):
            mine = getattr(a.result.metrics, metric)
            theirs = getattr(b.result.metrics, metric)
            if mine != theirs:
                mismatches.append(
                    "%s: %s %r (concurrent) != %r (serial)"
                    % (query_id, metric, mine, theirs)
                )
    return concurrent, serial, mismatches
