"""Concurrent multi-query service with scoped isolation (tentpole of PR 6).

One :class:`QueryService` admits, schedules, and runs many queries on a
single shared simulated deployment.  The design follows Banyan's scoped
dataflow: every admitted query becomes a :class:`QueryScope` — a
resource partition with

* a **scoped flow-control budget**: the machine-wide per-(stage, dest)
  window (``ClusterConfig.flow_control_window``) is carved evenly
  across the admission slots, so each tenant's receiver-side memory
  bound is ``window / slots`` of the machine-wide limit and the sum
  over co-tenants never exceeds it;
* **query-id-scoped inboxes and buffers**: each scope's machines own
  their per-stage inboxes, outgoing bulk buffers, and termination
  wavefront, keyed under the scope's ``query_id`` on the shared hosts;
* a **private virtual clock**: a scope advances one *virtual* tick per
  scheduling grant.  The service's *global* clock counts grants, so
  co-tenancy shows up as time dilation — a query sharing the cluster
  with K others takes ~K× longer in global (wall) ticks while its
  virtual execution stays bit-identical to a solo run.  This is what
  makes the serial-vs-concurrent parity gate possible: rows, tick
  counts, and every deterministic metric of a scope are a pure function
  of (graph, query, scoped config, seed), independent of co-tenants;
* **fair-share worker time-slicing**: scheduling grants are issued by
  deterministic stride scheduling — each scope consumes grants at a
  rate proportional to its priority, with ties broken by submission
  order;
* **deadlines and cancellation** via the existing structured
  :class:`~repro.errors.QueryAborted`: a deadline is enforced by the
  scope's own simulator in virtual ticks, and ``cancel()`` aborts one
  scope mid-run without perturbing co-tenants (their virtual execution
  never observes the abort).

Abort diagnostics are tenant-aware: when a scope dies (deadline, chaos
crash, cancellation), the raised ``QueryAborted.flow_state`` carries
the flow/memory snapshot of *every* co-tenant scope, each entry tagged
with its ``query_id`` — answering "who held the budget when my query
timed out", not just the global occupancy gauges.
"""

from collections import deque
from dataclasses import dataclass

from repro.context import ExecutionContext
from repro.engine_api import QueryHandle, QueryStatus
from repro.errors import ClusterConfigError, PlanError, QueryAborted, \
    RuntimeFault
from repro.pgql import parse_and_validate
from repro.plan.paths import has_quantified_paths

#: Stride numerator: divisible by every priority 1..8, so integer
#: strides stay exact for the practical priority range.
_STRIDE_SCALE = 840

#: Histogram bucket bounds for service latencies (global ticks).
_LATENCY_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass
class ServiceConfig:
    """Admission and isolation policy of one :class:`QueryService`."""

    #: Admission slots: how many scopes run concurrently; further
    #: submissions queue (FIFO) until a slot frees up.
    max_concurrent: int = 4
    #: Per-scope flow-control window carved out of the machine-wide
    #: ``flow_control_window``.  None: carve evenly across the slots,
    #: ``max(1, window // max_concurrent)``.  Pin it explicitly when
    #: comparing runs across different ``max_concurrent`` settings (the
    #: serial-vs-concurrent parity gate does).
    scope_window: int = None
    #: Record service-level telemetry: a label-aware registry with a
    #: ``query_id`` label per tenant plus a per-global-tick occupancy
    #: series sampled every ``sample_interval`` grants.
    telemetry: bool = False
    #: Global ticks between occupancy-series samples.
    sample_interval: int = 64

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ClusterConfigError("max_concurrent must be >= 1")
        if self.scope_window is not None and self.scope_window < 1:
            raise ClusterConfigError("scope_window must be >= 1")
        if self.sample_interval < 1:
            raise ClusterConfigError("sample_interval must be >= 1")


class QueryScope:
    """One admitted query: its runtime partition and lifecycle state."""

    def __init__(self, service, seq, plan, context, submitted_at):
        self.service = service
        self.seq = seq
        self.query_id = context.query_id
        self.plan = plan
        self.context = context
        self.priority = max(1, int(context.priority or 1))
        self.stride = _STRIDE_SCALE // min(self.priority, _STRIDE_SCALE)
        self.status = QueryStatus.QUEUED
        self.submitted_at = submitted_at
        self.started_at = None
        self.finished_at = None
        self.pass_value = 0
        self.simulator = None
        self.machines = None
        self.result = None
        self.aborted = None
        self._cancel_requested = False

    # -- lifecycle ------------------------------------------------------
    def start(self, engine, config, pass_floor, now):
        """Admit: instantiate the scope's machines on the shared hosts."""
        self.simulator, self.machines = engine.prepare_execution(
            self.plan, self.context, config=config
        )
        self.simulator.start()
        self.status = QueryStatus.RUNNING
        self.started_at = now
        self.pass_value = pass_floor

    def step(self):
        """Advance one virtual tick; True when the scope is terminal."""
        try:
            if self._cancel_requested:
                self.simulator.abort("cancelled by service caller")
            done = self.simulator.step()
        except QueryAborted as aborted:
            self.service._enrich_abort(self, aborted)
            self.aborted = aborted
            self.status = (
                QueryStatus.CANCELLED if self._cancel_requested
                else QueryStatus.ABORTED
            )
            return True
        if not done:
            return False
        metrics = self.simulator.finish()
        self.result = self.service.engine.finalize_execution(
            self.plan, self.machines, metrics, self.context
        )
        self.status = QueryStatus.DONE
        return True

    @property
    def virtual_ticks(self):
        return self.simulator.now if self.simulator is not None else 0

    def buffered_contexts(self):
        """Scope-wide buffered contexts across its machine partitions."""
        if self.machines is None:
            return 0
        return sum(
            machine.metrics.cur_buffered_contexts
            for machine in self.machines
        )

    @property
    def latency(self):
        """Submit-to-terminal latency in global ticks (None while live)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def admission_wait(self):
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class ServiceHandle(QueryHandle):
    """Handle for a query scheduled on a :class:`QueryService`."""

    def __init__(self, service, scope):
        self._service = service
        self._scope = scope
        self.query_id = scope.query_id

    @property
    def status(self):
        return self._scope.status

    def result(self):
        """Drive the service until this query is terminal; then yield."""
        scope = self._scope
        if not scope.status.terminal:
            self._service.run_until(scope.query_id)
        if scope.aborted is not None:
            raise scope.aborted
        return scope.result

    def cancel(self):
        return self._service.cancel(self.query_id)

    @property
    def metrics(self):
        if self._scope.result is not None:
            return self._scope.result.metrics
        if self._scope.aborted is not None:
            return self._scope.aborted.metrics
        return None


class QueryService:
    """Admission + fair-share scheduling of scopes on one deployment."""

    def __init__(self, engine, service_config=None):
        self.engine = engine
        self.config = service_config or ServiceConfig()
        base_window = engine.config.flow_control_window
        window = self.config.scope_window
        if window is None:
            window = max(1, base_window // self.config.max_concurrent)
        #: The scoped cluster config every admitted scope executes
        #: under: identical deployment shape, flow-control budget carved
        #: from the machine-wide window.
        self.scope_config = engine.config.replace(
            flow_control_window=window
        )
        #: Global service clock: one tick per scheduling grant.
        self.now = 0
        self.ever_submitted = False
        self.peak_active = 0
        self._seq = 0
        self._scopes = {}
        self._queue = deque()
        self._active = []
        self._pass_clock = 0
        self._registry = None
        self.series = []
        self._next_sample = 0
        if self.config.telemetry:
            from repro.obs.telemetry import MetricsRegistry

            registry = MetricsRegistry()
            self._registry = registry
            self._m_queries = registry.counter(
                "repro_service_queries_total",
                "queries by terminal status", labels=("status",),
            )
            self._m_active = registry.gauge(
                "repro_service_active_scopes",
                "scopes currently holding an admission slot",
            )
            self._m_queued = registry.gauge(
                "repro_service_queued_scopes", "scopes awaiting admission",
            )
            self._m_latency = registry.histogram(
                "repro_service_latency_ticks",
                "submit-to-terminal latency in global ticks",
                buckets=_LATENCY_BUCKETS,
            )
            self._m_wait = registry.histogram(
                "repro_service_admission_wait_ticks",
                "submit-to-admission wait in global ticks",
                buckets=_LATENCY_BUCKETS,
            )
            self._m_scope_ticks = registry.counter(
                "repro_service_scope_ticks_total",
                "scheduling grants consumed per tenant",
                labels=("query_id",),
            )
            self._m_scope_buffered = registry.gauge(
                "repro_service_scope_buffered_contexts",
                "buffered contexts held per tenant",
                labels=("query_id",),
            )

    # -- introspection --------------------------------------------------
    @property
    def registry(self):
        """The service-level MetricsRegistry (None unless telemetry on)."""
        return self._registry

    @property
    def active_scopes(self):
        return tuple(self._active)

    @property
    def queued_scopes(self):
        return tuple(self._queue)

    def scope(self, query_id):
        return self._scopes[query_id]

    @property
    def idle(self):
        """No scope is running or awaiting admission."""
        return not self._active and not self._queue

    # -- submission -----------------------------------------------------
    def submit(self, query, options=None, priority=1, deadline=None,
               query_id=None):
        """Admit *query*; returns a :class:`ServiceHandle` immediately.

        *priority* weights the fair-share scheduler (a priority-2 scope
        receives twice the scheduling grants of a priority-1 one);
        *deadline* is a per-query budget in virtual ticks, enforced by
        the scope's own simulator through the existing
        :class:`~repro.errors.QueryAborted` machinery.
        """
        parsed = parse_and_validate(query) if isinstance(query, str) \
            else query
        if has_quantified_paths(parsed):
            raise PlanError(
                "quantified-path queries execute as a union of "
                "expansions, not a single service scope; use "
                "engine.query()/engine.submit() which handle the union"
            )
        plan = self.engine.plan(parsed, options)
        if query_id is None:
            query_id = "q%d" % self._seq
        if query_id in self._scopes:
            raise RuntimeFault("duplicate query_id %r" % query_id)
        context = ExecutionContext.from_options(
            options, engine=self.engine
        ).replace(query_id=query_id, priority=priority)
        if deadline is not None and context.deadline is None:
            context = context.replace(deadline=deadline)
        scope = QueryScope(self, self._seq, plan, context,
                           submitted_at=self.now)
        self._seq += 1
        self.ever_submitted = True
        self._scopes[query_id] = scope
        self._queue.append(scope)
        self._admit()
        return ServiceHandle(self, scope)

    # -- scheduling -----------------------------------------------------
    def _admit(self):
        while self._queue and len(self._active) < self.config.max_concurrent:
            scope = self._queue.popleft()
            if scope.status.terminal:
                continue  # cancelled while queued
            scope.start(self.engine, self.scope_config, self._pass_clock,
                        self.now)
            self._active.append(scope)
            if self._registry is not None:
                self._m_wait.observe(scope.admission_wait)
        if len(self._active) > self.peak_active:
            self.peak_active = len(self._active)
        if self._registry is not None:
            self._m_active.set(len(self._active))
            self._m_queued.set(len(self._queue))

    def step(self):
        """Issue one scheduling grant (one global tick).

        Picks the runnable scope with the lowest stride pass value
        (ties: earliest submission), advances it one virtual tick, and
        retires it if that made it terminal.  Returns False when the
        service is idle — nothing active and nothing queued.
        """
        if not self._active:
            if not self._queue:
                return False
            self._admit()
        scope = min(self._active, key=lambda s: (s.pass_value, s.seq))
        self.now += 1
        self._pass_clock = scope.pass_value
        scope.pass_value += scope.stride
        finished = scope.step()
        if self._registry is not None:
            self._m_scope_ticks.labels(scope.query_id).inc()
            self._m_scope_buffered.labels(scope.query_id).set(
                scope.buffered_contexts()
            )
        if finished:
            self._retire(scope)
        if self._registry is not None and self.now >= self._next_sample:
            self._sample_series()
            self._next_sample = self.now + self.config.sample_interval
        return True

    def _retire(self, scope):
        scope.finished_at = self.now
        self._active.remove(scope)
        if self._registry is not None:
            self._m_queries.labels(scope.status.value).inc()
            self._m_latency.observe(scope.latency)
            self._m_scope_buffered.labels(scope.query_id).set(0)
        self._admit()

    def _sample_series(self):
        """Per-scope occupancy sample for the service time series."""
        self.series.append({
            "tick": self.now,
            "active": len(self._active),
            "queued": len(self._queue),
            "scopes": {
                scope.query_id: {
                    "virtual_ticks": scope.virtual_ticks,
                    "buffered_contexts": scope.buffered_contexts(),
                }
                for scope in self._active
            },
        })

    def drain(self):
        """Run until every submitted scope is terminal."""
        while self.step():
            pass

    def run_until(self, query_id):
        """Run until *query_id* is terminal (co-tenants keep their fair
        share of grants along the way)."""
        scope = self._scopes[query_id]
        while not scope.status.terminal:
            if not self.step():
                raise RuntimeFault(
                    "service idle but query %r not terminal" % query_id
                )

    # -- cancellation ---------------------------------------------------
    def cancel(self, query_id):
        """Cancel one tenant; co-tenant scopes are untouched.

        A queued scope is cancelled immediately; a running scope aborts
        on its next scheduling grant through the structured
        ``QueryAborted`` path (partial metrics, scoped flow state).
        Returns False when the scope is already terminal.
        """
        scope = self._scopes[query_id]
        if scope.status.terminal:
            return False
        if scope.status is QueryStatus.QUEUED:
            scope.aborted = QueryAborted(
                "cancelled by service caller while queued"
            )
            scope.status = QueryStatus.CANCELLED
            scope.finished_at = self.now
            if self._registry is not None:
                self._m_queries.labels(scope.status.value).inc()
            return True
        scope._cancel_requested = True
        return True

    # -- diagnostics ----------------------------------------------------
    def _enrich_abort(self, aborting_scope, aborted):
        """Attach every co-tenant's scoped flow state to an abort.

        The per-machine entries already carry the aborting scope's
        ``query_id``; this extends ``flow_state`` with the co-tenants'
        snapshots and names the budget holders in ``detail`` so a
        timeout can be attributed to the tenants that held window
        capacity at abort time.
        """
        flow_state = list(aborted.flow_state or ())
        holders = []
        for scope in self._active:
            if scope is aborting_scope or scope.simulator is None:
                continue
            entries = scope.simulator.flow_state()
            flow_state.extend(entries)
            inflight = sum(entry["inflight_total"] for entry in entries)
            buffered = sum(
                entry["buffered_contexts"] for entry in entries
            )
            if inflight or buffered:
                holders.append(
                    "%s inflight=%d buffered=%d"
                    % (scope.query_id, inflight, buffered)
                )
        aborted.flow_state = flow_state
        summary = (
            "co-tenants holding budget: " + ", ".join(holders)
            if holders
            else "no co-tenant held budget at abort time"
        )
        if self._active and len(self._active) > 1 or holders:
            aborted.detail = (
                "%s; %s" % (aborted.detail, summary)
                if aborted.detail else summary
            )

    def stats(self):
        """Per-tenant outcome table (terminal scopes only)."""
        rows = []
        for scope in sorted(self._scopes.values(), key=lambda s: s.seq):
            rows.append({
                "query_id": scope.query_id,
                "status": scope.status.value,
                "priority": scope.priority,
                "submitted_at": scope.submitted_at,
                "admission_wait": scope.admission_wait,
                "latency": scope.latency,
                "virtual_ticks": scope.virtual_ticks,
                "rows": (
                    len(scope.result.rows)
                    if scope.result is not None else None
                ),
            })
        return rows
