"""Concurrent multi-query service layer (see docs/service.md).

``QueryService`` schedules many queries on one shared simulated
deployment with per-query scopes: carved flow-control budgets, private
termination wavefronts, priorities, deadlines, and cancellation that
never disturbs co-tenants.  ``repro.service.traffic`` drives it with a
seeded open-loop arrival process and reports latency percentiles and
saturation curves (``repro traffic`` on the command line).
"""

from repro.service.service import (
    QueryScope,
    QueryService,
    ServiceConfig,
    ServiceHandle,
)
from repro.service.traffic import (
    TrafficConfig,
    TrafficReport,
    arrival_schedule,
    percentile,
    query_mix,
    run_traffic,
    saturation_sweep,
    verify_serial_parity,
)

__all__ = [
    "QueryService",
    "QueryScope",
    "ServiceConfig",
    "ServiceHandle",
    "TrafficConfig",
    "TrafficReport",
    "run_traffic",
    "saturation_sweep",
    "verify_serial_parity",
    "arrival_schedule",
    "query_mix",
    "percentile",
]
