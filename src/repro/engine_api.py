"""The common engine contract shared by every query engine.

All four engines — the paper's :class:`~repro.runtime.engine.
PgxdAsyncEngine` and the three comparison baselines (:class:`~repro.
baselines.SharedMemoryEngine`, :class:`~repro.baselines.BftEngine`,
:class:`~repro.baselines.JoinEngine`) — implement one surface:

* construction takes ``(graph, config=None, **engine_specific)``, where
  *graph* is a :class:`~repro.graph.graph.PropertyGraph` (or, for the
  distributed engines, a pre-partitioned :class:`~repro.graph.
  distributed.DistributedGraph`) and *config* a :class:`~repro.cluster.
  config.ClusterConfig`;
* ``query(query, options=None)`` accepts PGQL text or a parsed
  :class:`~repro.pgql.ast.Query` plus optional :class:`~repro.plan.
  options.PlannerOptions` and returns a :class:`~repro.runtime.engine.
  QueryResult` with populated ``metrics``;
* ``submit(query, options=None)`` is the non-blocking surface: it
  returns a :class:`QueryHandle` immediately, and the work happens no
  later than the first ``handle.result()`` call.  The base class ships
  a default :class:`SyncQueryHandle` that wraps the engine's own
  synchronous ``query()``, so every engine conforms for free;
  :class:`~repro.runtime.engine.PgxdAsyncEngine` overrides it to route
  through the concurrent multi-query service (``repro.service``).

An engine may reject *features* it does not implement (e.g. the join
baseline raises :class:`~repro.errors.PlanError` for aggregates), but
never the calling convention.  ``tests/test_engine_api.py`` holds the
conformance suite every engine must pass.
"""

import abc
import enum


class QueryStatus(enum.Enum):
    """Lifecycle of a submitted query (terminal: DONE/ABORTED/CANCELLED)."""

    #: Admitted but not yet scheduled (or, for synchronous engines, not
    #: yet forced by ``result()``).
    QUEUED = "queued"
    #: Actively executing on the cluster.
    RUNNING = "running"
    #: Finished; ``result()`` returns the QueryResult.
    DONE = "done"
    #: Terminated by deadline/crash; ``result()`` raises QueryAborted.
    ABORTED = "aborted"
    #: Terminated by ``cancel()``; ``result()`` raises QueryAborted.
    CANCELLED = "cancelled"

    @property
    def terminal(self):
        return self in (QueryStatus.DONE, QueryStatus.ABORTED,
                        QueryStatus.CANCELLED)


class QueryHandle:
    """A submitted query: poll its status, await or cancel its result.

    The contract every implementation honors:

    * ``status`` — a :class:`QueryStatus`;
    * ``result()`` — block (drive the execution) until terminal, then
      return the :class:`~repro.runtime.engine.QueryResult` or raise
      the run's :class:`~repro.errors.QueryAborted`;
    * ``cancel()`` — request termination; True when the request took
      effect (a terminal query can no longer be cancelled);
    * ``metrics`` — the result's metrics once DONE, the partial metrics
      of the abort once ABORTED/CANCELLED, None before;
    * ``query_id`` — stable identity within the submitting engine.
    """

    query_id = None

    @property
    def status(self):
        raise NotImplementedError

    @property
    def done(self):
        """True once the query reached a terminal status."""
        return self.status.terminal

    def result(self):
        raise NotImplementedError

    def cancel(self):
        raise NotImplementedError

    @property
    def metrics(self):
        raise NotImplementedError

    def __repr__(self):
        return "%s(query_id=%r, status=%s)" % (
            type(self).__name__, self.query_id, self.status.value,
        )


class SyncQueryHandle(QueryHandle):
    """Default handle wrapping a synchronous ``engine.query()`` call.

    Submission is lazy: the query runs on the first ``result()`` call,
    so ``submit()`` itself never blocks and ``cancel()`` before the
    first ``result()`` genuinely prevents execution.
    """

    def __init__(self, engine, query, options=None, query_id=None):
        self._engine = engine
        self._query = query
        self._options = options
        self._result = None
        self._aborted = None
        self._status = QueryStatus.QUEUED
        self.query_id = query_id

    @property
    def status(self):
        return self._status

    def result(self):
        from repro.errors import QueryAborted

        if self._status is QueryStatus.CANCELLED:
            raise self._aborted
        if self._status is QueryStatus.ABORTED:
            raise self._aborted
        if self._status is QueryStatus.DONE:
            return self._result
        self._status = QueryStatus.RUNNING
        try:
            self._result = self._engine.query(self._query, self._options)
        except QueryAborted as aborted:
            self._status = QueryStatus.ABORTED
            self._aborted = aborted
            raise
        self._status = QueryStatus.DONE
        return self._result

    def cancel(self):
        from repro.errors import QueryAborted

        if self._status is not QueryStatus.QUEUED:
            return False
        self._status = QueryStatus.CANCELLED
        self._aborted = QueryAborted(
            "cancelled by caller before execution"
        )
        return True

    @property
    def metrics(self):
        if self._result is not None:
            return self._result.metrics
        if self._aborted is not None:
            return self._aborted.metrics
        return None


class Engine(abc.ABC):
    """Abstract base class for pattern-matching query engines."""

    #: The graph the engine answers queries over (a PropertyGraph).
    graph = None
    #: The ClusterConfig the engine executes under.
    config = None

    @abc.abstractmethod
    def query(self, query, options=None):
        """Execute *query* (PGQL text or parsed Query) end to end.

        Returns a :class:`~repro.runtime.engine.QueryResult`; *options*
        is a :class:`~repro.plan.options.PlannerOptions` or None.
        """

    def submit(self, query, options=None, priority=1, deadline=None):
        """Submit *query* without blocking; returns a :class:`QueryHandle`.

        The default implementation wraps the engine's synchronous
        :meth:`query` in a lazy :class:`SyncQueryHandle` (*priority* and
        *deadline* are accepted for signature compatibility; priority is
        meaningless without a concurrent scheduler, and a deadline is
        honored only by engines whose ``query`` enforces one).
        """
        return SyncQueryHandle(
            self, query,
            options=self._deadline_options(options, deadline),
            query_id=self._next_query_id(),
        )

    def _deadline_options(self, options, deadline):
        """Fold a submit-time deadline into the planner options."""
        if deadline is None:
            return options
        from repro.plan import PlannerOptions

        options = options or PlannerOptions()
        if options.timeout_ticks is None:
            from dataclasses import replace

            options = replace(options, timeout_ticks=deadline)
        return options

    def _next_query_id(self):
        seq = getattr(self, "_submit_seq", 0)
        self._submit_seq = seq + 1
        return "q%d" % seq

    def __repr__(self):
        machines = getattr(self.config, "num_machines", "?")
        return "%s(vertices=%s, machines=%s)" % (
            type(self).__name__,
            getattr(self.graph, "num_vertices", "?"),
            machines,
        )


def available_engines():
    """Name -> class map of every built-in engine (lazy imports)."""
    from repro.baselines import BftEngine, JoinEngine, SharedMemoryEngine
    from repro.runtime.engine import PgxdAsyncEngine

    return {
        "async": PgxdAsyncEngine,
        "shared-memory": SharedMemoryEngine,
        "bft": BftEngine,
        "join": JoinEngine,
    }
