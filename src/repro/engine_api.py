"""The common engine contract shared by every query engine.

All four engines — the paper's :class:`~repro.runtime.engine.
PgxdAsyncEngine` and the three comparison baselines (:class:`~repro.
baselines.SharedMemoryEngine`, :class:`~repro.baselines.BftEngine`,
:class:`~repro.baselines.JoinEngine`) — implement one surface:

* construction takes ``(graph, config=None, **engine_specific)``, where
  *graph* is a :class:`~repro.graph.graph.PropertyGraph` (or, for the
  distributed engines, a pre-partitioned :class:`~repro.graph.
  distributed.DistributedGraph`) and *config* a :class:`~repro.cluster.
  config.ClusterConfig`;
* ``query(query, options=None)`` accepts PGQL text or a parsed
  :class:`~repro.pgql.ast.Query` plus optional :class:`~repro.plan.
  options.PlannerOptions` and returns a :class:`~repro.runtime.engine.
  QueryResult` with populated ``metrics``.

An engine may reject *features* it does not implement (e.g. the join
baseline raises :class:`~repro.errors.PlanError` for aggregates), but
never the calling convention.  ``tests/test_engine_api.py`` holds the
conformance suite every engine must pass.
"""

import abc


class Engine(abc.ABC):
    """Abstract base class for pattern-matching query engines."""

    #: The graph the engine answers queries over (a PropertyGraph).
    graph = None
    #: The ClusterConfig the engine executes under.
    config = None

    @abc.abstractmethod
    def query(self, query, options=None):
        """Execute *query* (PGQL text or parsed Query) end to end.

        Returns a :class:`~repro.runtime.engine.QueryResult`; *options*
        is a :class:`~repro.plan.options.PlannerOptions` or None.
        """

    def __repr__(self):
        machines = getattr(self.config, "num_machines", "?")
        return "%s(vertices=%s, machines=%s)" % (
            type(self).__name__,
            getattr(self.graph, "num_vertices", "?"),
            machines,
        )


def available_engines():
    """Name -> class map of every built-in engine (lazy imports)."""
    from repro.baselines import BftEngine, JoinEngine, SharedMemoryEngine
    from repro.runtime.engine import PgxdAsyncEngine

    return {
        "async": PgxdAsyncEngine,
        "shared-memory": SharedMemoryEngine,
        "bft": BftEngine,
        "join": JoinEngine,
    }
