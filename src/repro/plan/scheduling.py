"""Query scheduling: selectivity-based vertex matching order.

The paper's §5 names this as future work, using the example::

    SELECT person, band WHERE
      (person)-[:likes]->(song)-[:from]->(band),
      person.gender = "female", song.style = "rock",
      band.name = "Uknown1"

where starting from ``band`` (probably one vertex) is far cheaper than
starting from ``person``.  This module implements that idea with the
statistics the property tables already maintain: equality conjuncts are
estimated via per-column value frequencies, labels via label frequency,
and ``id() = const`` pins selectivity to one vertex.  The most selective
vertex becomes the root; the rest are appended greedily, always
preferring vertices connected to the already-ordered set (to avoid
cartesian restarts).
"""

from repro.pgql.ast import Binary, IdCall, Literal, PropRef
from repro.pgql.expressions import referenced_vars, split_conjuncts


def estimate_selectivities(query, graph):
    """Estimated match fraction per vertex variable (lower = rarer)."""
    conjuncts = []
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.filter is not None:
                conjuncts.extend(split_conjuncts(vertex.filter))
    for constraint in query.constraints:
        conjuncts.extend(split_conjuncts(constraint))

    labels = {}
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.label is not None:
                labels[vertex.var] = vertex.label

    scores = {}
    for var in query.vertex_vars():
        score = 1.0
        label = labels.get(var)
        if label is not None:
            label_id = graph.labels.lookup(label)
            if label_id is None:
                score = 0.0
            else:
                score *= graph.vertex_label_fraction(label_id)
        for conjunct in conjuncts:
            if referenced_vars(conjunct) != {var}:
                continue
            score *= _conjunct_selectivity(conjunct, var, graph)
        scores[var] = score
    return scores


def _conjunct_selectivity(conjunct, var, graph):
    """Selectivity of a single-variable conjunct (1.0 when unknown)."""
    if not isinstance(conjunct, Binary):
        return 1.0
    sides = (conjunct.lhs, conjunct.rhs)
    for ref_side, const_side in (sides, sides[::-1]):
        if not isinstance(const_side, Literal):
            continue
        if conjunct.op == "=":
            if isinstance(ref_side, IdCall) and ref_side.var == var:
                return 1.0 / max(1, graph.num_vertices)
            if isinstance(ref_side, PropRef) and ref_side.var == var:
                if graph.has_vertex_prop(ref_side.prop):
                    column = graph.vertex_properties.column(ref_side.prop)
                    return column.selectivity(const_side.value)
        elif conjunct.op in ("<", "<=", ">", ">="):
            # Crude but effective: a range filter halves the candidates.
            if isinstance(ref_side, (PropRef, IdCall)) and \
                    getattr(ref_side, "var", None) == var:
                return 0.5
    return 1.0


def selectivity_order(query, graph):
    """A vertex matching order that starts from the most selective vertex.

    Greedy: root = argmin score; then repeatedly append the lowest-score
    vertex adjacent (via any pattern edge) to the ordered prefix, falling
    back to the global minimum if the pattern is disconnected.
    """
    scores = estimate_selectivities(query, graph)
    adjacency = _pattern_adjacency(query)
    remaining = list(query.vertex_vars())
    order = []
    while remaining:
        if order:
            connected = [
                var
                for var in remaining
                if any(peer in order for peer in adjacency.get(var, ()))
            ]
            pool = connected or remaining
        else:
            pool = remaining
        best = min(pool, key=lambda var: (scores[var], remaining.index(var)))
        order.append(best)
        remaining.remove(best)
    return order


def _pattern_adjacency(query):
    adjacency = {}
    for path in query.paths:
        for index in range(len(path.edges)):
            left = path.vertices[index].var
            right = path.vertices[index + 1].var
            adjacency.setdefault(left, set()).add(right)
            adjacency.setdefault(right, set()).add(left)
    return adjacency
