"""Planner options shared by the planning pipeline and the engine."""

import enum
from dataclasses import dataclass


class MatchSemantics(enum.Enum):
    """Pattern-matching semantics (paper §5, "Graph Isomorphism").

    * HOMOMORPHISM — the paper's implemented default: distinct pattern
      variables may bind the same graph vertex.
    * ISOMORPHISM — injective on vertices and edges.
    * INDUCED — isomorphism plus: no graph edge may connect matched
      vertices unless the pattern contains it.
    """

    HOMOMORPHISM = "homomorphism"
    ISOMORPHISM = "isomorphism"
    INDUCED = "induced"


class SchedulingPolicy(enum.Enum):
    """How the planner orders vertex matching (paper §5, future work)."""

    #: Match vertices in order of appearance in the query text.
    APPEARANCE = "appearance"
    #: Start from the estimated most selective vertex and grow greedily.
    SELECTIVITY = "selectivity"
    #: Enumerate candidate orders and pick the cheapest under the
    #: statistics-backed cost model (``plan.cost``).
    COST = "cost"


@dataclass
class PlannerOptions:
    semantics: MatchSemantics = MatchSemantics.HOMOMORPHISM
    scheduling: SchedulingPolicy = SchedulingPolicy.APPEARANCE
    #: Tri-state switch for the specialized common-neighbor hop engine
    #: (paper §5): ``True``/``False`` force it on/off; ``None`` (the
    #: default) leaves it off except under ``SchedulingPolicy.COST``,
    #: where the cost model decides per query.
    use_common_neighbors: bool = None
    #: Explicit vertex matching order; overrides *scheduling* when set.
    vertex_order: list = None
    #: Record a structured event trace for this query (see ``repro.obs``);
    #: the trace is returned as ``QueryResult.trace``.
    trace: bool = False
    #: Record live telemetry for this query (metrics registry + per-tick
    #: time series, see ``repro.obs.telemetry``); returned as
    #: ``QueryResult.telemetry``.
    telemetry: bool = False
    #: Per-query deadline in simulated ticks: the run aborts with a
    #: structured ``QueryAborted`` (partial metrics + trace) once the
    #: clock passes it.  Overrides ``ClusterConfig.query_deadline_ticks``;
    #: for union-executed queries each expansion gets the full budget.
    timeout_ticks: int = None
    #: Collect per-stage actual cardinalities (a ``StageProfiler`` from
    #: ``repro.obs.feedback``), joined against the cost model's
    #: estimates as ``QueryResult.execution_profile()``.  Off by
    #: default: the runtime then holds None and the hot paths pay one
    #: pointer comparison per site (zero-cost-off, RPR002).
    profile: bool = False
    #: A ``repro.obs.feedback.FeedbackStore`` of recorded execution
    #: profiles.  Consumed only under ``SchedulingPolicy.COST``, where
    #: recorded actuals correct the model's selectivities on
    #: re-planning; every other policy ignores it.
    feedback: object = None
