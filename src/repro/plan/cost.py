"""Cost-based distributed planning over collected graph statistics.

The paper's §5 leaves query scheduling to future work; this module
implements it as a classical cost-based optimizer specialized to the
distributed async engine's cost structure.  A :class:`CostModel` walks
the logical plan a candidate vertex order would produce and propagates a
cardinality estimate through every operator, charging

* **work** — simulated micro-ops: vertex-function evaluations, edge
  scans during neighbor expansion, and probe lookups, and
* **messages** — contexts shipped between machines: one per neighbor
  expansion (contexts always hop to the destination's owner), one per
  inspection the distributed lowering inserts when the traversal is not
  at the vertex a check needs, and a discounted payload charge for the
  candidate lists the common-neighbor operator forwards.

Estimates come exclusively from :class:`~repro.stats.GraphStatistics`
(label counts, edge-triple fan-outs, property sketches) — the model
never touches raw graph storage, so planning works the same against a
deserialized statistics snapshot.

:func:`choose_plan` enumerates candidate vertex orders (exhaustively
over connected-prefix permutations for small patterns, heuristically
beyond :data:`ORDER_ENUM_LIMIT` variables), prices each one with and
without the §5 common-neighbor operator, and returns a
:class:`PlanChoice` carrying the winner plus the best rejected
alternatives — which ``ExecutionPlan.describe`` (EXPLAIN) renders.
"""

from repro.pgql.ast import Binary, IdCall, Literal, PropRef
from repro.pgql.expressions import referenced_vars, split_conjuncts
from repro.plan.logical import (
    CartesianRootMatch,
    CommonNeighborMatch,
    EdgeCheck,
    NeighborMatch,
    RootVertexMatch,
    _delay_common_neighbors,
    _normalized_edges,
    build_logical_plan,
)
from repro.plan.scheduling import _pattern_adjacency, selectivity_order

#: Relative price of shipping one context versus one local micro-op.
#: Remote messages dominate the engine's latency (paper §3.2 dedicates
#: the flow-control machinery to them), so they weigh heavier than work.
MESSAGE_WEIGHT = 2.0

#: Payload discount for the candidate-id lists CN_COLLECT forwards:
#: shipping n packed vertex ids in one message costs far less than n
#: full contexts.  This is precisely why the common-neighbor operator
#: wins on high-fan-out intersections.
CN_PAYLOAD_FRACTION = 0.25

#: Patterns with at most this many vertex variables get exhaustive
#: connected-prefix enumeration; larger ones fall back to heuristics.
ORDER_ENUM_LIMIT = 6

#: Rejected candidates kept on the PlanChoice for EXPLAIN output.
MAX_ALTERNATIVES = 3

#: Selectivity assumed for inequality/range conjuncts the statistics
#: cannot price (mirrors the scheduling module's crude-but-effective 0.5).
RANGE_FALLBACK = 0.5


class CostEstimate:
    """Priced outcome of one candidate plan."""

    __slots__ = ("work", "messages", "rows", "stage_rows")

    def __init__(self, work=0.0, messages=0.0, rows=0.0, stage_rows=()):
        self.work = work
        self.messages = messages
        #: Estimated final result cardinality.
        self.rows = rows
        #: ``[(operator repr, estimated rows after it), ...]``.
        self.stage_rows = list(stage_rows)

    @property
    def cost(self):
        return self.work + MESSAGE_WEIGHT * self.messages

    def to_dict(self):
        return {
            "work": self.work,
            "messages": self.messages,
            "rows": self.rows,
            "cost": self.cost,
        }

    def __repr__(self):
        return "CostEstimate(work=%.1f, messages=%.1f, rows=%.2f)" % (
            self.work, self.messages, self.rows,
        )


class PlanCandidate:
    """One enumerated (vertex order, CN on/off) combination."""

    __slots__ = ("order", "use_common_neighbors", "estimate")

    def __init__(self, order, use_common_neighbors, estimate):
        self.order = tuple(order)
        self.use_common_neighbors = use_common_neighbors
        self.estimate = estimate

    def sort_key(self):
        # Deterministic: cost, then fewer messages, then CN off (the
        # simpler plan), then lexicographic order.
        return (
            self.estimate.cost,
            self.estimate.messages,
            self.use_common_neighbors,
            self.order,
        )

    def label(self):
        return "%s  [common-neighbors %s]" % (
            " -> ".join(self.order),
            "on" if self.use_common_neighbors else "off",
        )

    def __repr__(self):
        return "PlanCandidate(%s, cost=%.1f)" % (
            self.label(), self.estimate.cost,
        )


class PlanChoice:
    """The planner's decision record, rendered by EXPLAIN.

    ``chosen`` / ``alternatives`` are :class:`PlanCandidate` objects for
    the cost policy; the selectivity policy records order and per-var
    scores only (``chosen is None``).
    """

    def __init__(self, policy, order, use_common_neighbors, scores,
                 chosen=None, alternatives=(), candidates_considered=0,
                 forced_common_neighbors=None, feedback_ops=0):
        self.policy = policy
        self.order = tuple(order)
        self.use_common_neighbors = use_common_neighbors
        #: Per-vertex-variable selectivity scores (lower = rarer).
        self.scores = dict(scores)
        self.chosen = chosen
        self.alternatives = list(alternatives)
        self.candidates_considered = candidates_considered
        self.forced_common_neighbors = forced_common_neighbors
        #: Number of recorded-actual selectivity corrections the model
        #: applied (feedback re-planning); 0 for stats-only pricing.
        self.feedback_ops = feedback_ops

    @property
    def auto_common_neighbors(self):
        """True when the model (not a flag) turned the CN operator on."""
        return (
            self.forced_common_neighbors is None
            and self.use_common_neighbors
        )

    def describe(self):
        lines = []
        header = "planner: policy=%s" % self.policy
        if self.candidates_considered:
            header += ", candidates=%d" % self.candidates_considered
        if self.feedback_ops:
            header += ", feedback corrections=%d" % self.feedback_ops
        lines.append(header)
        cn_state = "on" if self.use_common_neighbors else "off"
        if self.forced_common_neighbors is not None:
            cn_state += " (forced)"
        elif self.use_common_neighbors:
            cn_state += " (auto)"
        lines.append(
            "  order: %s  [common-neighbors %s]"
            % (" -> ".join(self.order), cn_state)
        )
        if self.chosen is not None:
            est = self.chosen.estimate
            lines.append(
                "  est. cost=%.1f  (work=%.1f, messages=%.1f, rows~%.2f)"
                % (est.cost, est.work, est.messages, est.rows)
            )
        for alt in self.alternatives:
            ratio = ""
            if self.chosen is not None and self.chosen.estimate.cost > 0:
                ratio = "  (%.2fx chosen)" % (
                    alt.estimate.cost / self.chosen.estimate.cost
                )
            lines.append(
                "  rejected: %s  cost=%.1f%s"
                % (alt.label(), alt.estimate.cost, ratio)
            )
        if self.scores:
            rendered = "  ".join(
                "%s=%.4g" % (var, self.scores[var])
                for var in sorted(
                    self.scores, key=lambda v: (self.scores[v], v)
                )
            )
            lines.append("  scores: %s" % rendered)
        return "\n".join(lines)

    def __repr__(self):
        return "PlanChoice(policy=%s, order=%s, cn=%s)" % (
            self.policy, " -> ".join(self.order), self.use_common_neighbors,
        )


class CostModel:
    """Cardinality and cost estimation against one graph's statistics.

    *corrections* maps operator reprs to multiplicative selectivity
    correction factors derived from a recorded execution profile
    (``repro.obs.feedback.FeedbackStore.corrections``); each priced
    operator whose repr appears gets its output cardinality scaled, so
    re-pricing a previously executed plan reproduces its observed
    cardinalities while unobserved operators keep the stats-only
    estimate.
    """

    def __init__(self, graph, stats=None, corrections=None):
        self._stats = stats if stats is not None else graph.statistics()
        self._num_vertices = graph.num_vertices
        self._corrections = dict(corrections) if corrections else {}

    @property
    def stats(self):
        return self._stats

    # ------------------------------------------------------------------
    # Per-variable scores (EXPLAIN's selectivity column)
    # ------------------------------------------------------------------
    def variable_scores(self, query):
        """Estimated match fraction per vertex variable (lower = rarer).

        The statistics-backed counterpart of
        ``scheduling.estimate_selectivities``: labels via collected label
        fractions, equality conjuncts via the property sketches.
        """
        labels = _vertex_labels(query)
        conjuncts = _all_conjuncts(query)
        scores = {}
        for var in query.vertex_vars():
            score = self._stats.vertex_label_fraction(labels.get(var))
            for conjunct in conjuncts:
                if referenced_vars(conjunct) != {var}:
                    continue
                score *= self._vertex_conjunct_selectivity(conjunct, var)
            scores[var] = score
        return scores

    # ------------------------------------------------------------------
    # Plan pricing
    # ------------------------------------------------------------------
    def estimate(self, query, order, use_common_neighbors=False):
        """Price the plan *order* (a vertex permutation) would produce.

        Builds the actual logical plan — the same one ``plan_query``
        would compile — and simulates cardinality/work/message flow
        through its operators.
        """
        logical = build_logical_plan(
            query,
            vertex_order=list(order),
            use_common_neighbors=use_common_neighbors,
        )
        labels = _vertex_labels(query)
        stats = self._stats
        card = 1.0
        work = 0.0
        messages = 0.0
        current = None
        stage_rows = []

        for op in logical.ops:
            if isinstance(op, RootVertexMatch):
                work += 1.0 if op.single_vertex_id is not None \
                    else float(self._num_vertices)
                card = self._num_vertices * _combine_selectivities(
                    [stats.vertex_label_fraction(op.label)]
                    + self._filter_selectivities(op)
                )
                current = op.var

            elif isinstance(op, CartesianRootMatch):
                # Cartesian restart: every live context fans out to all
                # vertices of the graph (ALL_VERTICES hop).
                fan = float(self._num_vertices)
                work += card * fan
                messages += card * fan
                card *= fan * _combine_selectivities(
                    [stats.vertex_label_fraction(op.label)]
                    + self._filter_selectivities(op)
                )
                current = op.var

            elif isinstance(op, NeighborMatch):
                if current != op.src_var:
                    # Lowering inserts an inspection hop to src first.
                    messages += card
                    work += card
                direction = "out" if op.direction.value == "out" else "in"
                src_label = labels.get(op.src_var)
                fan = stats.expected_neighbors(
                    src_label, op.edge_label, direction
                )
                expanded = card * fan
                work += card + expanded      # adjacency scan
                messages += expanded         # context per matched edge
                cond = stats.neighbor_label_fraction(
                    src_label, op.edge_label, direction, op.dst_label
                )
                card = expanded * _combine_selectivities(
                    [cond] + self._filter_selectivities(op)
                )
                current = op.dst_var

            elif isinstance(op, EdgeCheck):
                # One VERTEX hop to whichever endpoint can verify the
                # edge locally (plus an inspection if at neither).
                if current == op.dst_var:
                    target = op.src_var
                else:
                    if current != op.src_var:
                        messages += card
                        work += card
                    target = op.dst_var
                messages += card
                work += card                 # binary-search probe
                card *= stats.edge_probability(
                    labels.get(op.src_var), op.edge_label,
                    labels.get(op.dst_var),
                )
                card *= _combine_selectivities(
                    self._filter_selectivities(op)
                )
                current = target

            elif isinstance(op, CommonNeighborMatch):
                if current != op.left_var:
                    messages += card
                    work += card
                left_label = labels.get(op.left_var)
                fan = stats.expected_neighbors(
                    left_label, op.left_edge_label, "out"
                )
                # Collect: scan left's out-adjacency, then forward the
                # candidate ids in ONE message with a packed payload.
                work += card + card * fan
                messages += card * (1.0 + fan * CN_PAYLOAD_FRACTION)
                # Probe: binary-search each candidate at right's machine.
                work += card * fan
                cond = stats.neighbor_label_fraction(
                    left_label, op.left_edge_label, "out", op.dst_label
                )
                pair = stats.edge_probability(
                    labels.get(op.right_var), op.right_edge_label,
                    op.dst_label,
                )
                card *= fan * pair * _combine_selectivities(
                    [cond] + self._filter_selectivities(op)
                )
                current = op.dst_var

            if self._corrections:
                factor = self._corrections.get(repr(op))
                if factor is not None:
                    card *= factor
            stage_rows.append((repr(op), card))

        return CostEstimate(
            work=work, messages=messages, rows=card, stage_rows=stage_rows
        )

    # ------------------------------------------------------------------
    # Conjunct selectivities
    # ------------------------------------------------------------------
    def _filter_selectivities(self, op):
        """Per-conjunct selectivities of the filters attached to *op*.

        Returned as a list so callers can combine them (together with
        the op's label fraction) via :func:`_combine_selectivities`.
        """
        selectivities = []
        edge_vars = set(_op_edge_vars(op))
        for conjunct in op.filters:
            vars_used = referenced_vars(conjunct)
            if len(vars_used) == 1:
                (var,) = vars_used
                if var in edge_vars:
                    selectivities.append(
                        self._edge_conjunct_selectivity(conjunct, var)
                    )
                else:
                    selectivities.append(
                        self._vertex_conjunct_selectivity(conjunct, var)
                    )
            else:
                selectivities.append(
                    self._cross_var_selectivity(conjunct)
                )
        return selectivities

    def _vertex_conjunct_selectivity(self, conjunct, var):
        return self._single_var_selectivity(
            conjunct, var, self._stats.vertex_prop_stats
        )

    def _edge_conjunct_selectivity(self, conjunct, var):
        return self._single_var_selectivity(
            conjunct, var, self._stats.edge_prop_stats
        )

    def _single_var_selectivity(self, conjunct, var, prop_stats):
        if not isinstance(conjunct, Binary):
            return 1.0
        sides = (conjunct.lhs, conjunct.rhs)
        for ref_side, const_side in (sides, sides[::-1]):
            if not isinstance(const_side, Literal):
                continue
            if conjunct.op == "=":
                if isinstance(ref_side, IdCall) and ref_side.var == var:
                    return 1.0 / max(1, self._num_vertices)
                if isinstance(ref_side, PropRef) and ref_side.var == var:
                    stats = prop_stats(ref_side.prop)
                    if stats is not None:
                        return stats.eq_selectivity(const_side.value)
            elif conjunct.op in ("<", "<=", ">", ">="):
                if isinstance(ref_side, PropRef) and ref_side.var == var:
                    stats = prop_stats(ref_side.prop)
                    if stats is not None:
                        return stats.range_selectivity(
                            conjunct.op, const_side.value
                        )
                if isinstance(ref_side, IdCall) and ref_side.var == var:
                    return RANGE_FALLBACK
        return 1.0

    def _cross_var_selectivity(self, conjunct):
        """Join-style conjuncts comparing two variables' values."""
        if not isinstance(conjunct, Binary):
            return 1.0
        if conjunct.op == "=":
            if isinstance(conjunct.lhs, PropRef) \
                    and isinstance(conjunct.rhs, PropRef):
                distinct = max(
                    self._prop_distinct(conjunct.lhs),
                    self._prop_distinct(conjunct.rhs),
                )
                return 1.0 / max(1, distinct)
            if isinstance(conjunct.lhs, IdCall) \
                    and isinstance(conjunct.rhs, IdCall):
                return 1.0 / max(1, self._num_vertices)
            return RANGE_FALLBACK
        if conjunct.op in ("<", "<=", ">", ">="):
            return RANGE_FALLBACK
        return 1.0

    def _prop_distinct(self, prop_ref):
        stats = self._stats.vertex_prop_stats(prop_ref.prop)
        if stats is None:
            stats = self._stats.edge_prop_stats(prop_ref.prop)
        if stats is None:
            return 1
        return stats.distinct.estimate()


# ----------------------------------------------------------------------
# Order enumeration and the top-level chooser
# ----------------------------------------------------------------------
def candidate_orders(query, graph, limit=ORDER_ENUM_LIMIT, scores=None):
    """Candidate vertex orders for *query*, deterministically listed.

    Patterns with at most *limit* vertex variables get every
    connected-prefix permutation — each next vertex must be adjacent to
    the prefix whenever any adjacent vertex remains, which is exactly
    the set of orders that avoid needless cartesian restarts.  Larger
    patterns fall back to three heuristics: appearance order, the
    property-table selectivity order, and a greedy order over the
    statistics-backed *scores*.
    """
    variables = query.vertex_vars()
    if len(variables) <= 1:
        return [tuple(variables)]
    adjacency = _pattern_adjacency(query)
    if len(variables) <= limit:
        orders = []

        def extend(prefix, remaining):
            if not remaining:
                orders.append(tuple(prefix))
                return
            connected = [
                var
                for var in remaining
                if any(peer in prefix for peer in adjacency.get(var, ()))
            ]
            pool = connected if (prefix and connected) else remaining
            for var in pool:
                extend(
                    prefix + [var], [v for v in remaining if v != var]
                )

        extend([], list(variables))
        return orders

    orders = [tuple(variables), tuple(selectivity_order(query, graph))]
    if scores:
        orders.append(tuple(_greedy_order(variables, adjacency, scores)))
    seen = set()
    unique = []
    for order in orders:
        if order not in seen:
            seen.add(order)
            unique.append(order)
    return unique


def choose_plan(query, graph, stats=None, force_common_neighbors=None,
                limit=ORDER_ENUM_LIMIT, feedback=None):
    """Enumerate, price, and pick the min-cost plan for *query*.

    *force_common_neighbors* mirrors the planner option's tri-state:
    ``None`` lets the model decide per candidate (the CN operator is
    auto-enabled when the priced plan using it wins), ``True``/``False``
    pins the decision and only the vertex order is optimized.

    *feedback* is an optional ``repro.obs.feedback.FeedbackStore``; when
    it holds a recorded profile for this (query, graph) fingerprint, the
    derived per-operator selectivity corrections flow into the model so
    every candidate sharing an observed operator is priced against
    measured — not just estimated — cardinalities.
    """
    corrections = feedback.corrections(query, graph) \
        if feedback is not None else None
    model = CostModel(graph, stats, corrections=corrections)
    scores = model.variable_scores(query)
    orders = candidate_orders(query, graph, limit=limit, scores=scores)

    if force_common_neighbors is None:
        cn_options = (False, True) if _has_cn_opportunity(query) \
            else (False,)
    else:
        cn_options = (bool(force_common_neighbors),)

    candidates = []
    for order in orders:
        for cn in cn_options:
            candidates.append(
                PlanCandidate(order, cn, model.estimate(query, order, cn))
            )
    if True in cn_options:
        # Connected-prefix enumeration never emits the orders the CN
        # operator needs — both sources before the common neighbor,
        # even though the second source is disconnected from the prefix
        # (a cartesian restart the operator deliberately accepts).
        # Derive them by delaying CN candidates in each enumerated
        # order, exactly as the logical planner would.
        edges = _normalized_edges(query)
        seen_orders = {tuple(order) for order in orders}
        for order in list(orders):
            delayed = tuple(_delay_common_neighbors(list(order), edges))
            if delayed in seen_orders:
                continue
            seen_orders.add(delayed)
            candidates.append(
                PlanCandidate(
                    delayed, True, model.estimate(query, delayed, True)
                )
            )
    candidates.sort(key=PlanCandidate.sort_key)
    chosen = candidates[0]
    # Rejected candidates, dropping CN-toggle duplicates the order could
    # not realize (same order, identical cost -> identical plan); a
    # toggle that actually changed the plan prices differently and stays.
    alternatives = []
    seen = {(chosen.order, chosen.estimate.cost)}
    for candidate in candidates[1:]:
        key = (candidate.order, candidate.estimate.cost)
        if key in seen:
            continue
        seen.add(key)
        alternatives.append(candidate)
        if len(alternatives) == MAX_ALTERNATIVES:
            break

    return PlanChoice(
        policy="cost",
        order=chosen.order,
        use_common_neighbors=chosen.use_common_neighbors,
        scores=scores,
        chosen=chosen,
        alternatives=alternatives,
        candidates_considered=len(candidates),
        forced_common_neighbors=force_common_neighbors,
        feedback_ops=len(corrections) if corrections else 0,
    )


def _has_cn_opportunity(query):
    """True when some vertex is the destination of >= 2 pattern edges
    from distinct sources — the shape CommonNeighborMatch covers."""
    from repro.graph.types import Direction

    sources = {}
    for path in query.paths:
        for index, edge in enumerate(path.edges):
            left = path.vertices[index].var
            right = path.vertices[index + 1].var
            if edge.direction is Direction.OUT:
                src, dst = left, right
            else:
                src, dst = right, left
            if src != dst:
                sources.setdefault(dst, set()).add(src)
    return any(len(srcs) >= 2 for srcs in sources.values())


def _greedy_order(variables, adjacency, scores):
    remaining = list(variables)
    order = []
    while remaining:
        if order:
            connected = [
                var
                for var in remaining
                if any(peer in order for peer in adjacency.get(var, ()))
            ]
            pool = connected or remaining
        else:
            pool = remaining
        best = min(
            pool, key=lambda var: (scores[var], remaining.index(var))
        )
        order.append(best)
        remaining.remove(best)
    return order


def _combine_selectivities(selectivities):
    """Combine predicate selectivities with exponential backoff.

    The plain independence product severely underestimates when the
    predicates correlate — typical here, because property sketches span
    the whole (multi-label) vertex population, so a label filter and a
    property filter largely select the same rows.  The standard
    compromise: apply the most selective predicate fully, dampen each
    subsequent one by a square root (s0 * s1^1/2 * s2^1/4 * ...).
    """
    result = 1.0
    exponent = 1.0
    for selectivity in sorted(selectivities):
        result *= selectivity ** exponent
        exponent /= 2.0
    return result


# ----------------------------------------------------------------------
# Query-shape helpers
# ----------------------------------------------------------------------
def _vertex_labels(query):
    labels = {}
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.label is not None:
                labels[vertex.var] = vertex.label
    return labels


def _all_conjuncts(query):
    conjuncts = []
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.filter is not None:
                conjuncts.extend(split_conjuncts(vertex.filter))
    for constraint in query.constraints:
        conjuncts.extend(split_conjuncts(constraint))
    return conjuncts


def _new_vertex_var(op):
    if isinstance(op, (RootVertexMatch, CartesianRootMatch)):
        return op.var
    if isinstance(op, (NeighborMatch, CommonNeighborMatch)):
        return op.dst_var
    return None


def _op_edge_vars(op):
    if isinstance(op, (NeighborMatch, EdgeCheck)):
        return (op.edge_var,)
    if isinstance(op, CommonNeighborMatch):
        return (op.left_edge_var, op.right_edge_var)
    return ()
