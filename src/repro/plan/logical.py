"""Step i — PGQL query to a logical query plan.

The logical plan is an ordered list of match operators, the same shape
the standard PGQL compiler emits for shared-memory PGX (paper Figure 2,
left box): a root vertex match followed by neighbor matches and edge
checks.  Filters are split into conjuncts and attached to the earliest
operator at which all of their variables are bound.

This plan still assumes shared-memory semantics — operators may
reference any earlier variable's properties directly.  Steps ii and iii
(``plan.distributed`` / ``plan.execution``) remove that assumption.
"""

from repro.errors import PlanError
from repro.graph.types import Direction
from repro.pgql.ast import Binary, IdCall, Literal
from repro.pgql.expressions import referenced_vars, split_conjuncts


class LogicalOp:
    """Base class for logical match operators."""

    def __init__(self):
        #: Conjuncts whose variables are all bound once this op matched.
        self.filters = []

    def bound_vars(self):
        """Variables this operator newly binds."""
        return ()


class RootVertexMatch(LogicalOp):
    """Match the traversal origin; may be restricted to a single vertex id."""

    def __init__(self, var, label=None):
        super().__init__()
        self.var = var
        self.label = label
        #: When the filters pin ``var.id() = const``, the constant; the
        #: runtime then uses the single-vertex bootstrap task (paper §3.3).
        self.single_vertex_id = None

    def bound_vars(self):
        return (self.var,)

    def __repr__(self):
        return "RootVertexMatch(%s)" % self.var


class CartesianRootMatch(LogicalOp):
    """Match the first vertex of a disconnected pattern component.

    Implemented at runtime with the "vertices" hop engine hopping to every
    vertex in the graph.
    """

    def __init__(self, var, label=None):
        super().__init__()
        self.var = var
        self.label = label

    def bound_vars(self):
        return (self.var,)

    def __repr__(self):
        return "CartesianRootMatch(%s)" % self.var


class NeighborMatch(LogicalOp):
    """Match a new vertex adjacent to a bound one.

    ``direction`` is relative to *src_var*: OUT follows ``src -> dst``
    edges, IN follows ``dst -> src`` edges (i.e. in-neighbors of src).
    """

    def __init__(self, src_var, dst_var, direction, edge_var, edge_label,
                 dst_label=None, edge_anonymous=True):
        super().__init__()
        self.src_var = src_var
        self.dst_var = dst_var
        self.direction = direction
        self.edge_var = edge_var
        self.edge_label = edge_label
        self.dst_label = dst_label
        self.edge_anonymous = edge_anonymous

    def bound_vars(self):
        return (self.dst_var, self.edge_var)

    def __repr__(self):
        arrow = "->" if self.direction is Direction.OUT else "<-"
        return "NeighborMatch(%s %s %s)" % (self.src_var, arrow, self.dst_var)


class CommonNeighborMatch(LogicalOp):
    """Match a new vertex that is a neighbor of two bound vertices.

    Covers patterns like ``(a)-[]->(c)<-[]-(b)`` with *c* unbound; emitted
    only when the planner's common-neighbor optimization is enabled,
    otherwise the pattern lowers to a NeighborMatch plus an EdgeCheck.
    Both edges point *into* the common neighbor (left -> dst <- right).
    """

    def __init__(self, left_var, right_var, dst_var,
                 left_edge_var, left_edge_label,
                 right_edge_var, right_edge_label,
                 dst_label=None):
        super().__init__()
        self.left_var = left_var
        self.right_var = right_var
        self.dst_var = dst_var
        self.left_edge_var = left_edge_var
        self.left_edge_label = left_edge_label
        self.right_edge_var = right_edge_var
        self.right_edge_label = right_edge_label
        self.dst_label = dst_label

    def bound_vars(self):
        return (self.dst_var, self.left_edge_var, self.right_edge_var)

    def __repr__(self):
        return "CommonNeighborMatch(%s -> %s <- %s)" % (
            self.left_var, self.dst_var, self.right_var,
        )


class EdgeCheck(LogicalOp):
    """Verify a pattern edge between two already-bound vertices.

    Stored in normalized OUT orientation: ``src_var -> dst_var``.
    """

    def __init__(self, src_var, dst_var, edge_var, edge_label,
                 edge_anonymous=True):
        super().__init__()
        self.src_var = src_var
        self.dst_var = dst_var
        self.edge_var = edge_var
        self.edge_label = edge_label
        self.edge_anonymous = edge_anonymous

    def bound_vars(self):
        return (self.edge_var,)

    def __repr__(self):
        return "EdgeCheck(%s -> %s)" % (self.src_var, self.dst_var)


class LogicalPlan:
    """Ordered operator list plus query-level metadata."""

    def __init__(self, ops, query):
        self.ops = ops
        self.query = query

    def __repr__(self):
        return "LogicalPlan(%s)" % ", ".join(repr(op) for op in self.ops)


class _PatternEdge:
    """A pattern edge normalized to OUT orientation (src -> dst)."""

    __slots__ = ("src", "dst", "edge_var", "label", "anonymous", "used")

    def __init__(self, src, dst, edge_var, label, anonymous):
        self.src = src
        self.dst = dst
        self.edge_var = edge_var
        self.label = label
        self.anonymous = anonymous
        self.used = False


def build_logical_plan(query, vertex_order=None, use_common_neighbors=False):
    """Lower a validated :class:`~repro.pgql.ast.Query` to a LogicalPlan.

    *vertex_order* overrides the order in which vertex variables are
    matched (see ``plan.scheduling``); it must be a permutation of the
    query's vertex variables.  *use_common_neighbors* enables the
    specialized common-neighbor operator of the paper's §5.
    """
    vertex_info = {}
    for path in query.paths:
        for vertex in path.vertices:
            known = vertex_info.get(vertex.var)
            if known is None:
                vertex_info[vertex.var] = vertex
            elif vertex.label and known.label and vertex.label != known.label:
                raise PlanError(
                    "vertex %r constrained to two labels: %r and %r"
                    % (vertex.var, known.label, vertex.label)
                )
            elif vertex.label and not known.label:
                vertex_info[vertex.var] = vertex

    edges = _normalized_edges(query)
    order = _resolve_order(query, vertex_order)
    if use_common_neighbors and vertex_order is None:
        order = _delay_common_neighbors(order, edges)

    conjuncts = _collect_conjuncts(query)

    ops = []
    bound = set()
    for position, var in enumerate(order):
        info = vertex_info[var]
        if position == 0:
            ops.append(RootVertexMatch(var, label=info.label))
        else:
            op = _match_op(var, info, bound, edges, use_common_neighbors)
            ops.append(op)
        bound.add(var)
        bound.update(ops[-1].bound_vars())
        checks = _edge_checks_now_closed(edges, bound)
        for check in checks:
            bound.update(check.bound_vars())
        ops.extend(checks)

    unused = [edge for edge in edges if not edge.used]
    if unused:
        raise PlanError(
            "internal: pattern edges not covered by the plan: %s"
            % ", ".join(edge.edge_var for edge in unused)
        )

    _assign_filters(ops, conjuncts)
    _detect_single_vertex_roots(ops)
    return LogicalPlan(ops, query)


def _normalized_edges(query):
    edges = []
    for path in query.paths:
        for index, edge in enumerate(path.edges):
            left = path.vertices[index].var
            right = path.vertices[index + 1].var
            if edge.direction is Direction.OUT:
                src, dst = left, right
            else:
                src, dst = right, left
            edges.append(
                _PatternEdge(src, dst, edge.var, edge.label, edge.anonymous)
            )
    return edges


def _resolve_order(query, vertex_order):
    default = query.vertex_vars()
    if vertex_order is None:
        return default
    if sorted(vertex_order) != sorted(default):
        raise PlanError(
            "vertex_order %r is not a permutation of %r"
            % (vertex_order, default)
        )
    return list(vertex_order)


def _delay_common_neighbors(order, edges):
    """Reorder so common-neighbor candidates come after both sources.

    A vertex with two or more in-edges from *distinct* other vertices can
    be matched with the specialized common-neighbor operator, but only if
    at least two of its sources are already bound.  Greedily emit vertices
    in the given order, delaying such candidates until two sources are
    placed (falling back to the original position if that never happens).
    """
    sources = {}
    for edge in edges:
        if edge.src != edge.dst:
            sources.setdefault(edge.dst, set()).add(edge.src)
    candidates = {var for var, srcs in sources.items() if len(srcs) >= 2}

    result = []
    pending = list(order)
    while pending:
        chosen = None
        for var in pending:
            if var in candidates:
                placed = sum(1 for src in sources[var] if src in result)
                if placed < 2:
                    continue
            chosen = var
            break
        if chosen is None:
            chosen = pending[0]  # cyclic dependency: keep original order
        result.append(chosen)
        pending.remove(chosen)
    return result


def _collect_conjuncts(query):
    conjuncts = []
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.filter is not None:
                conjuncts.extend(split_conjuncts(vertex.filter))
    for constraint in query.constraints:
        conjuncts.extend(split_conjuncts(constraint))
    return conjuncts


def _match_op(var, info, bound, edges, use_common_neighbors):
    connecting = [
        edge
        for edge in edges
        if not edge.used
        and (
            (edge.src in bound and edge.dst == var)
            or (edge.dst in bound and edge.src == var)
        )
    ]
    if not connecting:
        return CartesianRootMatch(var, label=info.label)

    if use_common_neighbors and len(connecting) >= 2:
        into = [edge for edge in connecting if edge.dst == var]
        if len(into) >= 2:
            left, right = into[0], into[1]
            left.used = True
            right.used = True
            return CommonNeighborMatch(
                left.src,
                right.src,
                var,
                left.edge_var,
                left.label,
                right.edge_var,
                right.label,
                dst_label=info.label,
            )

    edge = connecting[0]
    edge.used = True
    if edge.src in bound and edge.dst == var:
        direction = Direction.OUT
        src_var = edge.src
    else:
        direction = Direction.IN
        src_var = edge.dst
    return NeighborMatch(
        src_var,
        var,
        direction,
        edge.edge_var,
        edge.label,
        dst_label=info.label,
        edge_anonymous=edge.anonymous,
    )


def _edge_checks_now_closed(edges, bound):
    checks = []
    for edge in edges:
        if not edge.used and edge.src in bound and edge.dst in bound:
            edge.used = True
            checks.append(
                EdgeCheck(edge.src, edge.dst, edge.edge_var, edge.label,
                          edge_anonymous=edge.anonymous)
            )
    return checks


def _assign_filters(ops, conjuncts):
    """Attach each conjunct to the earliest op binding all its variables."""
    bound_after = []
    bound = set()
    for op in ops:
        bound.update(op.bound_vars())
        bound_after.append(set(bound))
    for conjunct in conjuncts:
        vars_needed = referenced_vars(conjunct)
        target = None
        for index, available in enumerate(bound_after):
            if vars_needed <= available:
                target = index
                break
        if target is None:
            raise PlanError(
                "conjunct references unbound variables: %r" % (conjunct,)
            )
        ops[target].filters.append(conjunct)


def _detect_single_vertex_roots(ops):
    """Detect ``root.id() = const`` filters for single-vertex bootstrap."""
    for op in ops:
        if not isinstance(op, RootVertexMatch):
            continue
        for conjunct in op.filters:
            vertex_id = _id_equality_constant(conjunct, op.var)
            if vertex_id is not None:
                op.single_vertex_id = vertex_id
                break


def _id_equality_constant(expr, var):
    if not isinstance(expr, Binary) or expr.op != "=":
        return None
    sides = (expr.lhs, expr.rhs)
    for id_side, const_side in (sides, sides[::-1]):
        if (
            isinstance(id_side, IdCall)
            and id_side.var == var
            and isinstance(const_side, Literal)
            and isinstance(const_side.value, int)
            and not isinstance(const_side.value, bool)
        ):
            return const_side.value
    return None
