"""Variable-length path expansion (bounded "recursive paths", §5).

A quantified edge ``(a)-/:likes{1,3}/->(b)`` matches a chain of 1 to 3
``likes`` edges.  Since the bounds are finite, the query rewrites into
a **union of fixed-length queries**: one per hop count (and, with
several quantified edges, per combination).  Each expansion replaces
the quantified edge with a chain of fresh anonymous vertices and edges;
the engine executes every expansion and concatenates the projected rows
(result multiplicity counts paths, consistent with homomorphism
semantics — use ``SELECT DISTINCT`` for reachability-style answers).
"""

import itertools

from repro.pgql.ast import EdgePattern, PathPattern, Query, VertexPattern


def has_quantified_paths(query):
    return any(
        edge.quantified for path in query.paths for edge in path.edges
    )


def expand_quantified_paths(query):
    """Return the list of fixed-length expansions of *query*.

    A query without quantified edges expands to ``[query]`` itself.
    """
    if not has_quantified_paths(query):
        return [query]

    quantified = [
        edge
        for path in query.paths
        for edge in path.edges
        if edge.quantified
    ]
    ranges = [
        range(edge.min_hops, edge.max_hops + 1) for edge in quantified
    ]
    expansions = []
    for combo in itertools.product(*ranges):
        lengths = dict(zip(map(id, quantified), combo))
        expansions.append(_expand_once(query, lengths))
    return expansions


def _expand_once(query, lengths):
    """One fixed-length rewrite; *lengths* maps id(edge) -> hop count."""
    counter = itertools.count()

    def fresh(prefix):
        return "$%s_q%d" % (prefix, next(counter))

    new_paths = []
    for path in query.paths:
        vertices = [path.vertices[0]]
        edges = []
        for index, edge in enumerate(path.edges):
            right = path.vertices[index + 1]
            hops = lengths.get(id(edge), 1)
            if not edge.quantified or hops == 1:
                edges.append(
                    EdgePattern(
                        edge.var if not edge.quantified else fresh("e"),
                        label=edge.label,
                        direction=edge.direction,
                        anonymous=edge.anonymous,
                    )
                )
                vertices.append(right)
                continue
            # Chain of `hops` edges through fresh anonymous vertices.
            for _hop in range(hops - 1):
                edges.append(
                    EdgePattern(
                        fresh("e"),
                        label=edge.label,
                        direction=edge.direction,
                        anonymous=True,
                    )
                )
                vertices.append(
                    VertexPattern(fresh("v"), anonymous=True)
                )
            edges.append(
                EdgePattern(
                    fresh("e"),
                    label=edge.label,
                    direction=edge.direction,
                    anonymous=True,
                )
            )
            vertices.append(right)
        new_paths.append(PathPattern(vertices, edges))

    return Query(
        query.select_items,
        new_paths,
        query.constraints,
        group_by=list(query.group_by),
        having=query.having,
        order_by=list(query.order_by),
        limit=query.limit,
        distinct=query.distinct,
    )
