"""Planning pipeline: PGQL text -> logical -> distributed -> execution plan.

``plan_query`` glues the paper's steps i-iii together; the runtime's
engine performs step iv (binding the compiled plan to machines and
launching the computation).
"""

from repro.pgql import parse_and_validate
from repro.pgql.ast import Query
from repro.plan.distributed import (
    DistributedPlan,
    Hop,
    HopKind,
    Visit,
    VisitKind,
    build_distributed_plan,
)
from repro.plan.execution import (
    IMPOSSIBLE_LABEL,
    CompiledHop,
    CompiledStage,
    ContextLayout,
    ContextRowEnv,
    ExecutionPlan,
    OutputSpec,
    build_execution_plan,
)
from repro.plan.logical import (
    CartesianRootMatch,
    CommonNeighborMatch,
    EdgeCheck,
    LogicalPlan,
    NeighborMatch,
    RootVertexMatch,
    build_logical_plan,
)
from repro.plan.cost import (
    CostEstimate,
    CostModel,
    PlanCandidate,
    PlanChoice,
    candidate_orders,
    choose_plan,
)
from repro.plan.options import MatchSemantics, PlannerOptions, SchedulingPolicy
from repro.plan.paths import expand_quantified_paths, has_quantified_paths
from repro.plan.scheduling import (
    estimate_selectivities,
    selectivity_order,
)


def plan_query(query, graph, options=None):
    """Compile a PGQL query (text or parsed Query) against *graph*.

    Runs the paper's steps i-iii and returns the compiled
    :class:`ExecutionPlan` shared by every simulated machine.
    """
    options = options or PlannerOptions()
    if isinstance(query, str):
        query = parse_and_validate(query)
    elif not isinstance(query, Query):
        raise TypeError("expected PGQL text or a parsed Query")

    vertex_order = options.vertex_order
    use_common_neighbors = options.use_common_neighbors
    choice = None
    if vertex_order is None:
        if options.scheduling is SchedulingPolicy.COST:
            choice = choose_plan(
                query, graph,
                force_common_neighbors=use_common_neighbors,
                feedback=getattr(options, "feedback", None),
            )
            vertex_order = list(choice.order)
            use_common_neighbors = choice.use_common_neighbors
        elif options.scheduling is SchedulingPolicy.SELECTIVITY:
            vertex_order = selectivity_order(query, graph)
            choice = PlanChoice(
                policy="selectivity",
                order=vertex_order,
                use_common_neighbors=bool(use_common_neighbors),
                scores=estimate_selectivities(query, graph),
                forced_common_neighbors=use_common_neighbors,
            )

    logical = build_logical_plan(
        query,
        vertex_order=vertex_order,
        use_common_neighbors=bool(use_common_neighbors),
    )
    distributed = build_distributed_plan(logical)
    plan = build_execution_plan(distributed, graph, options)
    plan.choice = choice
    return plan


__all__ = [
    "plan_query",
    "PlannerOptions",
    "MatchSemantics",
    "SchedulingPolicy",
    "LogicalPlan",
    "build_logical_plan",
    "RootVertexMatch",
    "CartesianRootMatch",
    "NeighborMatch",
    "CommonNeighborMatch",
    "EdgeCheck",
    "DistributedPlan",
    "build_distributed_plan",
    "Visit",
    "VisitKind",
    "Hop",
    "HopKind",
    "ExecutionPlan",
    "build_execution_plan",
    "CompiledStage",
    "CompiledHop",
    "ContextLayout",
    "ContextRowEnv",
    "OutputSpec",
    "IMPOSSIBLE_LABEL",
    "estimate_selectivities",
    "expand_quantified_paths",
    "has_quantified_paths",
    "selectivity_order",
    "CostModel",
    "CostEstimate",
    "PlanCandidate",
    "PlanChoice",
    "candidate_orders",
    "choose_plan",
]
