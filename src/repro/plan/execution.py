"""Step iii — distributed plan to a compiled execution plan.

This stage "chooses the memory layout of the context object for each
stage and binds variables used by hop engines and filters to offsets in
the context or directly-accessible graph properties" and "performs
dependency analysis so that earlier stages keep enough context for later
stages to be able to complete without remote communication" (paper §3.1).

Concretely:

* A **context** is a plain Python tuple that grows as stages advance.
  :class:`ContextLayout` maps symbols — ``('v', var)`` vertex ids,
  ``('e', var)`` edge ids, ``('vp', var, prop)`` captured vertex
  properties, ``('vl', var)`` / ``('el', var)`` captured labels,
  ``('ep', var, prop)`` captured edge properties — to tuple offsets.
* **Dependency analysis** walks every expression together with its
  evaluation point (which variables are *directly* accessible there) and
  schedules a capture for each value that some later point needs.
* Filters are **compiled to closures** ``fn(ctx, vertex, eid)`` over the
  graph's property columns, so the hot path performs no name resolution.
"""

from repro.errors import PlanError, UnknownPropertyError
from repro.graph.types import Direction
from repro.pgql.ast import (
    Aggregate,
    Binary,
    HasPropCall,
    IdCall,
    LabelCall,
    Literal,
    PropRef,
    Unary,
    VarRef,
)
from repro.pgql.expressions import EvalEnv, binary_op_func
from repro.plan.distributed import Hop, HopKind, Visit, VisitKind
from repro.plan.options import MatchSemantics, PlannerOptions

#: Label requirement that can never be satisfied (the queried label does
#: not occur in the graph).  Distinct from NO_LABEL (-1).
IMPOSSIBLE_LABEL = -2


class ContextLayout:
    """Symbol-to-offset mapping for the growing context tuple."""

    def __init__(self):
        self._slots = {}
        self.width = 0

    def alloc(self, symbol):
        if symbol in self._slots:
            raise PlanError("internal: symbol allocated twice: %r" % (symbol,))
        index = self.width
        self._slots[symbol] = index
        self.width += 1
        return index

    def slot(self, symbol):
        index = self._slots.get(symbol)
        if index is None:
            raise PlanError("internal: symbol not captured: %r" % (symbol,))
        return index

    def has(self, symbol):
        return symbol in self._slots

    def symbols(self):
        return dict(self._slots)


class CompiledHop:
    """Runtime-ready hop descriptor (one per stage)."""

    __slots__ = (
        "kind",
        "direction",
        "edge_label_id",
        "edge_filter",
        "edge_captures",
        "appends_target_id",
        "target_slot",
        "edge_req_orientation",
        "iso_edge_slots",
        "work_cost",
    )

    def __init__(self, kind):
        self.kind = kind
        self.direction = None
        self.edge_label_id = None
        self.edge_filter = None
        self.edge_captures = []
        self.appends_target_id = False
        self.target_slot = None
        self.edge_req_orientation = None
        self.iso_edge_slots = []
        #: Simulated micro-ops one hop step costs (grows with the number
        #: of edge filter conjuncts and captures it evaluates).
        self.work_cost = 1


class CompiledStage:
    """Runtime-ready stage descriptor."""

    __slots__ = (
        "index",
        "kind",
        "var",
        "label_id",
        "filter",
        "captures",
        "iso_vertex_slots",
        "forbidden_slots",
        "hop",
        "in_width",
        "out_width",
        "vertex_slot",
        "single_vertex_id",
        "work_cost",
        "op_index",
    )

    def __init__(self, index, kind, var):
        self.index = index
        self.kind = kind
        self.var = var
        #: Logical-operator index this stage lowers (None for inserted
        #: stages); joins actual pass counts against the cost model's
        #: per-operator row estimates (repro.obs.feedback).
        self.op_index = None
        self.label_id = None
        self.filter = None
        self.captures = []
        self.iso_vertex_slots = []
        self.forbidden_slots = []
        self.hop = None
        self.in_width = 0
        self.out_width = 0
        self.vertex_slot = None
        self.single_vertex_id = None
        #: Simulated micro-ops the vertex function costs (grows with the
        #: number of filter conjuncts and captures it evaluates).
        self.work_cost = 1

    def __repr__(self):
        return "CompiledStage(%d, %s, %s, hop=%s)" % (
            self.index,
            self.kind.value,
            self.var,
            self.hop.kind.value if self.hop else None,
        )


class OutputSpec:
    """Everything result post-processing needs (see runtime.results)."""

    def __init__(self, query, layout):
        self.select_items = query.select_items
        self.group_by = query.group_by
        self.having = query.having
        self.order_by = query.order_by
        self.limit = query.limit
        self.distinct = query.distinct
        self.layout = layout
        self.column_names = [
            item.alias if item.alias else _default_name(item.expr)
            for item in query.select_items
        ]

    @property
    def has_aggregates(self):
        from repro.pgql.expressions import contains_aggregate

        return bool(self.group_by) or any(
            contains_aggregate(item.expr) for item in self.select_items
        )


class ExecutionPlan:
    """The fully compiled plan the runtime executes."""

    def __init__(self, stages, layout, graph, query, options, output):
        self.stages = stages
        self.layout = layout
        self.graph = graph
        self.query = query
        self.options = options
        self.output = output
        #: The planner's :class:`~repro.plan.cost.PlanChoice` when a
        #: scheduling policy made an order/operator decision (None for
        #: appearance order or an explicit vertex_order).
        self.choice = None
        self._bulk_kernels = {}

    @property
    def num_stages(self):
        return len(self.stages)

    @property
    def root(self):
        return self.stages[0]

    def bulk_kernels(self, profiled=False):
        """The plan's compiled bulk kernels (built once per variant).

        Plan finalization is where per-stage specialization belongs —
        every check a kernel compiles in (label ids, iso slots, filters,
        captures) is fixed here.  The import is deferred so the plan
        layer stays import-independent of the runtime package until a
        machine actually asks for the fast path.  *profiled* selects the
        stage-cardinality-instrumented variant (repro.obs.feedback);
        the default variant contains no profiling instructions at all,
        so collection off costs literally nothing on this path.
        """
        kernels = self._bulk_kernels.get(profiled)
        if kernels is None:
            from repro.runtime.kernels import compile_plan_kernels

            kernels = compile_plan_kernels(self, profiled=profiled)
            self._bulk_kernels[profiled] = kernels
        return kernels

    def describe(self):
        """Human-readable stage listing (mirrors paper Figure 2).

        When a scheduling policy produced a :class:`PlanChoice`, its
        summary — chosen order, estimated cost, the best rejected
        alternatives, per-variable selectivity scores — precedes the
        stage listing (the EXPLAIN surface).
        """
        lines = []
        if self.choice is not None:
            lines.append(self.choice.describe())
        for stage in self.stages:
            parts = ["Stage %d: (%s) %s" % (stage.index, stage.var,
                                            stage.kind.value)]
            if stage.filter is not None:
                parts.append("filter")
            if stage.captures:
                parts.append("captures=%d" % len(stage.captures))
            parts.append("hop=%s" % stage.hop.kind.value)
            lines.append("  ".join(parts))
        return "\n".join(lines)


def build_execution_plan(dplan, graph, options=None):
    """Compile *dplan* against *graph* into an :class:`ExecutionPlan`."""
    options = options or PlannerOptions()
    query = dplan.query
    visits = list(dplan.visits)
    if options.semantics is MatchSemantics.INDUCED:
        visits = _with_induced_checks(visits, query)

    vertex_vars = set(query.vertex_vars())
    edge_vars = set(query.edge_vars())
    needed = _needed_symbols(visits, query, vertex_vars, edge_vars, options)

    layout = ContextLayout()
    stages = []
    matched_vertex_slots = []  # slots of vertices matched so far (for iso)
    matched_edge_slots = []    # slots of edges matched so far (for iso)
    iso = options.semantics is not MatchSemantics.HOMOMORPHISM

    compiler = _Compiler(graph, layout, vertex_vars, edge_vars)

    for index, visit in enumerate(visits):
        stage = CompiledStage(index, visit.kind, visit.var)
        stage.op_index = getattr(visit, "op_index", None)

        if index == 0:
            stage.single_vertex_id = visit.single_vertex_id
            layout.alloc(("v", visit.var))

        # Width of the context as it arrives at this stage's vertex
        # function (i.e. after the incoming hop's appends).
        stage.in_width = layout.width
        stage.vertex_slot = layout.slot(("v", visit.var))

        if visit.kind is VisitKind.MATCH:
            if iso and matched_vertex_slots:
                stage.iso_vertex_slots = list(matched_vertex_slots)
            matched_vertex_slots.append(stage.vertex_slot)
            if visit.label is not None:
                label_id = graph.labels.lookup(visit.label)
                stage.label_id = (
                    IMPOSSIBLE_LABEL if label_id is None else label_id
                )
            # Schedule this vertex's captures (sorted for determinism).
            for prop in sorted(
                sym[2] for sym in needed
                if sym[0] == "vp" and sym[1] == visit.var
            ):
                layout.alloc(("vp", visit.var, prop))
                stage.captures.append(compiler.vertex_prop_capture(prop))
            if ("vl", visit.var) in needed:
                layout.alloc(("vl", visit.var))
                stage.captures.append(compiler.vertex_label_capture())

        if visit.filters:
            stage.filter = compiler.predicate(
                visit.filters, direct_vertex=visit.var
            )

        if getattr(visit, "forbidden_vars", None):
            stage.forbidden_slots = [
                layout.slot(("v", var)) for var in visit.forbidden_vars
            ]

        stage.work_cost = (
            1 + len(visit.filters) + len(stage.captures)
            + len(stage.forbidden_slots)
        )
        stage.hop = _compile_hop(
            visit, visits, index, compiler, layout, needed, graph,
            matched_edge_slots, iso,
        )
        stage.hop.work_cost = (
            1 + len(visit.hop.edge_filters) + len(stage.hop.edge_captures)
        )
        stage.out_width = layout.width
        stages.append(stage)

    output = OutputSpec(query, layout)
    return ExecutionPlan(stages, layout, graph, query, options, output)


def _compile_hop(visit, visits, index, compiler, layout, needed, graph,
                 matched_edge_slots, iso):
    hop = visit.hop
    compiled = CompiledHop(hop.kind)
    if hop.kind is HopKind.OUTPUT:
        return compiled

    edge_var = hop.edge_var
    if hop.edge_req is not None:
        edge_var = hop.edge_req.edge_var
        compiled.edge_req_orientation = hop.edge_req.orientation
        compiled.edge_label_id = _label_id(graph, hop.edge_req.edge_label)
    else:
        compiled.edge_label_id = _label_id(graph, hop.edge_label)
    compiled.direction = hop.direction

    if hop.edge_filters:
        compiled.edge_filter = compiler.predicate(
            hop.edge_filters, direct_vertex=visit.var, direct_edge=edge_var
        )

    if edge_var is not None:
        if iso:
            compiled.iso_edge_slots = list(matched_edge_slots)
        # Edge captures, in deterministic order: id, label, props.
        # (Isomorphism adds every ('e', var) to `needed` up front.)
        if ("e", edge_var) in needed:
            slot = layout.alloc(("e", edge_var))
            compiled.edge_captures.append(lambda eid: eid)
            matched_edge_slots.append(slot)
        if ("el", edge_var) in needed:
            layout.alloc(("el", edge_var))
            compiled.edge_captures.append(compiler.edge_label_capture())
        for prop in sorted(
            sym[2] for sym in needed
            if sym[0] == "ep" and sym[1] == edge_var
        ):
            layout.alloc(("ep", edge_var, prop))
            compiled.edge_captures.append(compiler.edge_prop_capture(prop))

    if hop.kind is HopKind.VERTEX:
        compiled.target_slot = layout.slot(("v", hop.target_var))
    elif hop.kind is HopKind.CN_COLLECT:
        compiled.target_slot = layout.slot(("v", hop.other_var))

    next_visit = visits[index + 1]
    if next_visit.kind is VisitKind.MATCH:
        compiled.appends_target_id = True
        layout.alloc(("v", next_visit.var))
    return compiled


def _label_id(graph, label_name):
    if label_name is None:
        return None
    label_id = graph.labels.lookup(label_name)
    return IMPOSSIBLE_LABEL if label_id is None else label_id


def _needed_symbols(visits, query, vertex_vars, edge_vars, options):
    """Dependency analysis: which values must be captured into contexts."""
    needed = set()
    points = []
    for visit in visits:
        for conjunct in visit.filters:
            points.append((conjunct, visit.var, None))
        hop = visit.hop
        if hop is None:
            continue
        hop_edge = hop.edge_var
        if hop.edge_req is not None:
            hop_edge = hop.edge_req.edge_var
        for conjunct in hop.edge_filters:
            points.append((conjunct, visit.var, hop_edge))
    for expr in _output_expressions(query):
        points.append((expr, None, None))

    for expr, direct_vertex, direct_edge in points:
        for node in expr.walk():
            _classify(node, direct_vertex, direct_edge, vertex_vars,
                      edge_vars, needed)

    # Vertex ids are always carried (routing, output, distinctness).
    for var in vertex_vars:
        needed.add(("v", var))
    if options.semantics is not MatchSemantics.HOMOMORPHISM:
        for var in edge_vars:
            needed.add(("e", var))
    return needed


def _classify(node, direct_vertex, direct_edge, vertex_vars, edge_vars,
              needed):
    if isinstance(node, PropRef):
        if node.var == direct_vertex or node.var == direct_edge:
            return
        if node.var in vertex_vars:
            needed.add(("vp", node.var, node.prop))
        elif node.var in edge_vars:
            needed.add(("ep", node.var, node.prop))
    elif isinstance(node, (VarRef, IdCall)):
        var = node.name if isinstance(node, VarRef) else node.var
        if var == direct_vertex or var == direct_edge:
            return
        if var in vertex_vars:
            needed.add(("v", var))
        elif var in edge_vars:
            needed.add(("e", var))
    elif isinstance(node, LabelCall):
        if node.var == direct_vertex or node.var == direct_edge:
            return
        if node.var in vertex_vars:
            needed.add(("vl", node.var))
        elif node.var in edge_vars:
            needed.add(("el", node.var))


def _output_expressions(query):
    for item in query.select_items:
        yield item.expr
    yield from query.group_by
    if query.having is not None:
        yield query.having
    for item in query.order_by:
        yield item.expr


def _with_induced_checks(visits, query):
    """Append verification inspections enforcing induced semantics.

    For every ordered pair of distinct pattern vertices with no pattern
    edge between them, the matched graph vertices must not be connected
    either.  Each source vertex with at least one pair to verify gets one
    extra inspection visit whose ``forbidden_vars`` the runtime checks
    against its local out-adjacency.
    """
    pattern_pairs = set()
    for path in query.paths:
        for index, edge in enumerate(path.edges):
            left = path.vertices[index].var
            right = path.vertices[index + 1].var
            if edge.direction is Direction.OUT:
                pattern_pairs.add((left, right))
            else:
                pattern_pairs.add((right, left))

    vars_ = query.vertex_vars()
    forbidden = {}
    for src in vars_:
        absent = [
            dst
            for dst in vars_
            if dst != src and (src, dst) not in pattern_pairs
        ]
        if absent:
            forbidden[src] = absent
    if not forbidden:
        return visits

    visits = list(visits)
    last = visits[-1]
    assert last.hop.kind is HopKind.OUTPUT
    for src, absent in forbidden.items():
        visits[-1].hop = Hop(HopKind.VERTEX, target_var=src)
        check = Visit(VisitKind.INSPECT, src)
        check.forbidden_vars = absent
        check.hop = Hop(HopKind.OUTPUT)
        visits.append(check)
    return visits


def _default_name(expr):
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, PropRef):
        return "%s.%s" % (expr.var, expr.prop)
    if isinstance(expr, IdCall):
        return "%s.id()" % expr.var
    if isinstance(expr, LabelCall):
        return "%s.label()" % expr.var
    if isinstance(expr, Aggregate):
        inner = "*" if expr.arg is None else _default_name(expr.arg)
        return "%s(%s)" % (expr.func.value, inner)
    return repr(expr)


# ----------------------------------------------------------------------
# Expression compilation
# ----------------------------------------------------------------------
class _Compiler:
    """Compiles expressions to ``fn(ctx, vertex, eid)`` closures."""

    def __init__(self, graph, layout, vertex_vars, edge_vars):
        self._graph = graph
        self._layout = layout
        self._vertex_vars = vertex_vars
        self._edge_vars = edge_vars

    # -- captures ------------------------------------------------------
    def vertex_prop_capture(self, prop):
        column = self._vertex_column(prop)
        return column.get

    def vertex_label_capture(self):
        return self._graph.vertex_label_name

    def edge_prop_capture(self, prop):
        column = self._edge_column(prop)
        return column.get

    def edge_label_capture(self):
        return self._graph.edge_label_name

    # -- predicates ----------------------------------------------------
    def predicate(self, conjuncts, direct_vertex=None, direct_edge=None):
        """Compile a conjunction into one guarded boolean closure."""
        compiled = [
            self.compile(conjunct, direct_vertex, direct_edge)
            for conjunct in conjuncts
        ]
        if len(compiled) == 1:
            single = compiled[0]

            def predicate(ctx, vertex, eid):
                try:
                    return bool(single(ctx, vertex, eid))
                except (TypeError, ZeroDivisionError):
                    return False

            return predicate

        def predicate(ctx, vertex, eid):
            try:
                return all(fn(ctx, vertex, eid) for fn in compiled)
            except (TypeError, ZeroDivisionError):
                return False

        return predicate

    # -- expression nodes ----------------------------------------------
    def compile(self, expr, direct_vertex=None, direct_edge=None):
        graph = self._graph
        if isinstance(expr, Literal):
            value = expr.value
            return lambda ctx, vertex, eid: value
        if isinstance(expr, (VarRef, IdCall)):
            var = expr.name if isinstance(expr, VarRef) else expr.var
            if var == direct_vertex:
                return lambda ctx, vertex, eid: vertex
            if var == direct_edge:
                return lambda ctx, vertex, eid: eid
            symbol = ("v", var) if var in self._vertex_vars else ("e", var)
            slot = self._layout.slot(symbol)
            return lambda ctx, vertex, eid: ctx[slot]
        if isinstance(expr, PropRef):
            if expr.var == direct_vertex:
                getter = self._vertex_column(expr.prop).get
                return lambda ctx, vertex, eid: getter(vertex)
            if expr.var == direct_edge:
                getter = self._edge_column(expr.prop).get
                return lambda ctx, vertex, eid: getter(eid)
            tag = "vp" if expr.var in self._vertex_vars else "ep"
            slot = self._layout.slot((tag, expr.var, expr.prop))
            return lambda ctx, vertex, eid: ctx[slot]
        if isinstance(expr, LabelCall):
            if expr.var == direct_vertex:
                return lambda ctx, vertex, eid: graph.vertex_label_name(vertex)
            if expr.var == direct_edge:
                return lambda ctx, vertex, eid: graph.edge_label_name(eid)
            tag = "vl" if expr.var in self._vertex_vars else "el"
            slot = self._layout.slot((tag, expr.var))
            return lambda ctx, vertex, eid: ctx[slot]
        if isinstance(expr, HasPropCall):
            if expr.var in self._vertex_vars:
                value = graph.has_vertex_prop(expr.prop)
            else:
                value = graph.has_edge_prop(expr.prop)
            return lambda ctx, vertex, eid: value
        if isinstance(expr, Unary):
            inner = self.compile(expr.operand, direct_vertex, direct_edge)
            if expr.op == "NOT":
                return lambda ctx, vertex, eid: not inner(ctx, vertex, eid)
            return lambda ctx, vertex, eid: -inner(ctx, vertex, eid)
        if isinstance(expr, Binary):
            lhs = self.compile(expr.lhs, direct_vertex, direct_edge)
            rhs = self.compile(expr.rhs, direct_vertex, direct_edge)
            if expr.op == "AND":
                return lambda ctx, vertex, eid: (
                    bool(lhs(ctx, vertex, eid)) and bool(rhs(ctx, vertex, eid))
                )
            if expr.op == "OR":
                return lambda ctx, vertex, eid: (
                    bool(lhs(ctx, vertex, eid)) or bool(rhs(ctx, vertex, eid))
                )
            op = binary_op_func(expr.op)
            return lambda ctx, vertex, eid: op(
                lhs(ctx, vertex, eid), rhs(ctx, vertex, eid)
            )
        if isinstance(expr, Aggregate):
            raise PlanError("aggregates cannot appear in compiled filters")
        raise PlanError("cannot compile expression: %r" % (expr,))

    # -- helpers ---------------------------------------------------------
    def _vertex_column(self, prop):
        try:
            return self._graph.vertex_properties.column(prop)
        except UnknownPropertyError:
            raise PlanError(
                "query references vertex property %r which no vertex in "
                "the graph defines" % prop
            )

    def _edge_column(self, prop):
        try:
            return self._graph.edge_properties.column(prop)
        except UnknownPropertyError:
            raise PlanError(
                "query references edge property %r which no edge in the "
                "graph defines" % prop
            )


class ContextRowEnv(EvalEnv):
    """Evaluate expressions against a completed output context tuple.

    Used by result post-processing (projection, grouping, ordering).
    """

    def __init__(self, layout, vertex_vars, edge_vars):
        self._layout = layout
        self._vertex_vars = vertex_vars
        self._edge_vars = edge_vars
        self._ctx = None

    def bind(self, ctx):
        self._ctx = ctx
        return self

    def entity_id(self, var):
        tag = "v" if var in self._vertex_vars else "e"
        return self._ctx[self._layout.slot((tag, var))]

    def prop(self, var, prop):
        tag = "vp" if var in self._vertex_vars else "ep"
        return self._ctx[self._layout.slot((tag, var, prop))]

    def label(self, var):
        tag = "vl" if var in self._vertex_vars else "el"
        return self._ctx[self._layout.slot((tag, var))]

    def has_prop(self, var, prop):
        tag = "vp" if var in self._vertex_vars else "ep"
        return self._layout.has((tag, var, prop))

    def row_projector(self, exprs):
        """Compile *exprs* into one ``project(ctx) -> tuple`` function.

        Handles the slot-lookup expression forms (variables, ids,
        captured properties and labels) plus literals — i.e. everything
        whose per-row evaluation is a plain tuple index.  Returns None
        when any expression needs the interpreted evaluator, in which
        case the caller keeps the per-row ``evaluate`` path.
        """
        parts = []
        ns = {}
        try:
            for n, expr in enumerate(exprs):
                if isinstance(expr, Literal):
                    ns["C%d" % n] = expr.value
                    parts.append("C%d" % n)
                    continue
                if isinstance(expr, (VarRef, IdCall)):
                    var = expr.name if isinstance(expr, VarRef) else expr.var
                    tag = "v" if var in self._vertex_vars else "e"
                    parts.append("ctx[%d]" % self._layout.slot((tag, var)))
                    continue
                if isinstance(expr, PropRef):
                    tag = "vp" if expr.var in self._vertex_vars else "ep"
                    parts.append("ctx[%d]" % self._layout.slot(
                        (tag, expr.var, expr.prop)
                    ))
                    continue
                if isinstance(expr, LabelCall):
                    tag = "vl" if expr.var in self._vertex_vars else "el"
                    parts.append("ctx[%d]" % self._layout.slot((tag, expr.var)))
                    continue
                return None
        except (KeyError, PlanError):
            return None  # missing slot: let the evaluator raise per-row
        source = "def project(ctx):\n    return (%s)\n" % (
            ", ".join(parts) + ("," if parts else "")
        )
        exec(compile(source, "<repro-projector>", "exec"), ns)
        return ns["project"]
