"""Step ii — logical plan to a distributed query plan.

The distributed plan is a linear list of *visits* (paper: stages), each
pinned to one pattern variable's vertex, with a *hop* describing the
transition to the next visit.  The transformation inserts **inspection
steps** whenever the next logical operator needs to traverse from a
vertex other than the current one — the situation that, on real
hardware, would otherwise require remote property/adjacency access
(paper §3.1 and Figure 2, middle box).

Filters attached to logical operators are divided here between *hop
filters* (conjuncts that reference the hop's edge variable and can be
evaluated at the hop's source machine, where the edge lives) and *visit
filters* (everything else, evaluated at the stage's vertex).
"""

import enum

from repro.errors import PlanError
from repro.graph.types import Direction
from repro.pgql.expressions import referenced_vars
from repro.plan.logical import (
    CartesianRootMatch,
    CommonNeighborMatch,
    EdgeCheck,
    NeighborMatch,
    RootVertexMatch,
)


class VisitKind(enum.Enum):
    #: Matches a new vertex: runs label check, vertex filters, captures.
    MATCH = "match"
    #: Revisits an already-bound vertex (inspection / edge-check landing).
    INSPECT = "inspect"
    #: Receives a common-neighbor candidate payload and probes it.
    CN_PROBE = "cn_probe"


class HopKind(enum.Enum):
    NEIGHBOR = "neighbor"           # out/in neighbors of the current vertex
    VERTEX = "vertex"               # a single bound vertex (inspection/check)
    ALL_VERTICES = "all_vertices"   # every vertex (cartesian restart)
    CN_COLLECT = "cn_collect"       # gather candidates, ship to the peer
    CN_PROBE = "cn_probe"           # intersect candidates with local edges
    OUTPUT = "output"               # deliver the output context


class EdgeReq:
    """Edge-existence requirement of a VERTEX hop (an edge check).

    ``current_to_target`` scans the current vertex's out-adjacency for the
    target; ``target_to_current`` scans the current vertex's in-adjacency.
    Either way the adjacency consulted is local to the current vertex.
    """

    __slots__ = ("orientation", "edge_var", "edge_label", "edge_anonymous")

    def __init__(self, orientation, edge_var, edge_label, edge_anonymous):
        assert orientation in ("current_to_target", "target_to_current")
        self.orientation = orientation
        self.edge_var = edge_var
        self.edge_label = edge_label
        self.edge_anonymous = edge_anonymous


class Hop:
    """Transition from one visit to the next."""

    def __init__(self, kind, target_var=None, direction=None, edge_var=None,
                 edge_label=None, edge_anonymous=True, edge_req=None,
                 other_var=None):
        self.kind = kind
        self.target_var = target_var
        self.direction = direction
        self.edge_var = edge_var
        self.edge_label = edge_label
        self.edge_anonymous = edge_anonymous
        self.edge_req = edge_req
        #: CN_COLLECT: the bound variable whose machine receives the payload.
        self.other_var = other_var
        #: Conjuncts evaluated while hopping (may read the hop's edge and
        #: anything already in the context, but not the target vertex).
        self.edge_filters = []

    def __repr__(self):
        return "Hop(%s -> %s)" % (self.kind.value, self.target_var)


class Visit:
    """One stage of the distributed plan."""

    def __init__(self, kind, var, label=None):
        self.kind = kind
        self.var = var
        self.label = label
        #: Conjuncts evaluated at this visit's vertex.
        self.filters = []
        self.hop = None  # filled in when the next visit is known
        #: Bootstrap restriction for the root visit (vertex id or None).
        self.single_vertex_id = None
        #: Index of the logical operator this visit lowers (None for
        #: visits the compiler inserts later, e.g. induced checks).  The
        #: *last* visit of an operator is the one whose pass count equals
        #: the rows surviving it — the join key plan-vs-actual profiling
        #: (repro.obs.feedback) uses against CostEstimate.stage_rows.
        self.op_index = None

    def __repr__(self):
        return "Visit(%s, %s)" % (self.kind.value, self.var)


class DistributedPlan:
    def __init__(self, visits, query, logical):
        self.visits = visits
        self.query = query
        self.logical = logical

    def __repr__(self):
        return "DistributedPlan(%s)" % " | ".join(
            "%s%s" % (visit.var, ":" + visit.hop.kind.value if visit.hop else "")
            for visit in self.visits
        )


def build_distributed_plan(logical_plan):
    """Lower *logical_plan* to a :class:`DistributedPlan`."""
    builder = _Builder()
    for op_index, op in enumerate(logical_plan.ops):
        builder.add_op(op, op_index)
    visits = builder.finish()
    return DistributedPlan(visits, logical_plan.query, logical_plan)


class _Builder:
    def __init__(self):
        self._visits = []
        self._op_index = None

    @property
    def _current_var(self):
        return self._visits[-1].var if self._visits else None

    def _append(self, visit):
        visit.op_index = self._op_index
        self._visits.append(visit)

    def _set_hop(self, hop):
        """Assign the transition out of the current visit."""
        self._visits[-1].hop = hop

    def _ensure_at(self, var):
        """Insert an inspection step if the traversal is not at *var*."""
        if self._current_var == var:
            return
        self._set_hop(Hop(HopKind.VERTEX, target_var=var))
        self._append(Visit(VisitKind.INSPECT, var))

    def add_op(self, op, op_index=None):
        self._op_index = op_index
        if isinstance(op, RootVertexMatch):
            if self._visits:
                raise PlanError("root match must be the first operator")
            visit = Visit(VisitKind.MATCH, op.var, label=op.label)
            visit.filters = list(op.filters)
            visit.single_vertex_id = op.single_vertex_id
            self._append(visit)
        elif isinstance(op, CartesianRootMatch):
            self._set_hop(Hop(HopKind.ALL_VERTICES, target_var=op.var))
            visit = Visit(VisitKind.MATCH, op.var, label=op.label)
            visit.filters = list(op.filters)
            self._append(visit)
        elif isinstance(op, NeighborMatch):
            self._ensure_at(op.src_var)
            hop = Hop(
                HopKind.NEIGHBOR,
                target_var=op.dst_var,
                direction=op.direction,
                edge_var=op.edge_var,
                edge_label=op.edge_label,
                edge_anonymous=op.edge_anonymous,
            )
            visit = Visit(VisitKind.MATCH, op.dst_var, label=op.dst_label)
            self._split_filters(op, hop, visit)
            self._set_hop(hop)
            self._append(visit)
        elif isinstance(op, EdgeCheck):
            self._add_edge_check(op)
        elif isinstance(op, CommonNeighborMatch):
            self._add_common_neighbor(op)
        else:
            raise PlanError("unknown logical operator: %r" % (op,))

    def _add_edge_check(self, op):
        current = self._current_var
        if current == op.dst_var:
            # Check from the destination side via its in-adjacency.
            orientation = "target_to_current"
            target = op.src_var
        else:
            self._ensure_at(op.src_var)
            orientation = "current_to_target"
            target = op.dst_var
        req = EdgeReq(orientation, op.edge_var, op.edge_label,
                      op.edge_anonymous)
        hop = Hop(HopKind.VERTEX, target_var=target, edge_req=req)
        visit = Visit(VisitKind.INSPECT, target)
        self._split_filters(op, hop, visit, new_var=None)
        self._set_hop(hop)
        self._append(visit)

    def _add_common_neighbor(self, op):
        self._ensure_at(op.left_var)
        collect = Hop(
            HopKind.CN_COLLECT,
            target_var=op.right_var,
            direction=Direction.OUT,
            edge_var=op.left_edge_var,
            edge_label=op.left_edge_label,
            other_var=op.right_var,
        )
        probe_visit = Visit(VisitKind.CN_PROBE, op.right_var)
        probe_hop = Hop(
            HopKind.CN_PROBE,
            target_var=op.dst_var,
            direction=Direction.OUT,
            edge_var=op.right_edge_var,
            edge_label=op.right_edge_label,
        )
        match_visit = Visit(VisitKind.MATCH, op.dst_var, label=op.dst_label)

        # Single-edge conjuncts can run at the corresponding hop; everything
        # else runs at the common neighbor's vertex function.
        for conjunct in op.filters:
            vars_used = referenced_vars(conjunct)
            if op.dst_var in vars_used:
                match_visit.filters.append(conjunct)
            elif op.left_edge_var in vars_used and \
                    op.right_edge_var not in vars_used:
                collect.edge_filters.append(conjunct)
            elif op.right_edge_var in vars_used and \
                    op.left_edge_var not in vars_used:
                probe_hop.edge_filters.append(conjunct)
            else:
                match_visit.filters.append(conjunct)

        self._set_hop(collect)
        self._append(probe_visit)
        self._set_hop(probe_hop)
        self._append(match_visit)

    def _split_filters(self, op, hop, visit, new_var="__use_op__"):
        """Divide op filters between the hop and the landing visit."""
        if new_var == "__use_op__":
            new_var = getattr(op, "dst_var", None)
        edge_var = getattr(op, "edge_var", None)
        for conjunct in op.filters:
            vars_used = referenced_vars(conjunct)
            # A conjunct can run at the hop iff it references the hop's
            # edge and never the newly matched vertex: the edge and the
            # hop's source vertex are local there, and every earlier
            # variable's values come from context captures.  For edge
            # checks there is no new vertex, so any edge conjunct works.
            is_hop_filter = (
                edge_var is not None
                and edge_var in vars_used
                and (new_var is None or new_var not in vars_used)
            )
            if is_hop_filter:
                hop.edge_filters.append(conjunct)
            else:
                visit.filters.append(conjunct)

    def finish(self):
        if not self._visits:
            raise PlanError("empty plan")
        self._set_hop(Hop(HopKind.OUTPUT))
        return list(self._visits)
