"""Simulated PGX.D-style cluster: machines, workers, network, clock."""

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import MachineMetrics, QueryMetrics
from repro.cluster.network import Envelope, Network
from repro.cluster.simulator import MachineAPI, MachineInterface, Simulator
from repro.cluster.tasks import CallbackTask, Task, TaskQueue, TaskState

__all__ = [
    "ClusterConfig",
    "MachineMetrics",
    "QueryMetrics",
    "Network",
    "Envelope",
    "Simulator",
    "MachineAPI",
    "MachineInterface",
    "Task",
    "CallbackTask",
    "TaskQueue",
    "TaskState",
]
