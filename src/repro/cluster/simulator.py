"""The discrete-time cluster simulator.

The simulator owns a set of *machine* objects (anything implementing the
small :class:`MachineInterface` protocol), the :class:`Network`, and the
global clock.  On each tick it first delivers due network messages, then
gives every worker of every machine an operation budget.  The run ends
when every machine reports completion and no messages are in flight.

Machines talk to the outside world exclusively through the
:class:`MachineAPI` handle they are given, which tags network traffic
with the current tick — machines never see the simulator itself.
"""

import time

from repro.cluster.metrics import QueryMetrics
from repro.cluster.network import Network
from repro.errors import RuntimeFault


class MachineInterface:
    """Protocol the simulator drives.  Machines subclass or duck-type it."""

    def on_message(self, src, payload):
        """Handle a delivered network payload."""
        raise NotImplementedError

    def worker_step(self, worker_index, budget):
        """Run one worker for up to *budget* micro-ops; return ops used."""
        raise NotImplementedError

    def is_finished(self):
        """True when this machine considers the computation complete."""
        raise NotImplementedError

    @property
    def metrics(self):
        raise NotImplementedError


class MachineAPI:
    """Capability handle machines use to reach the network and the clock."""

    def __init__(self, simulator, machine_id):
        self._simulator = simulator
        self.machine_id = machine_id

    @property
    def now(self):
        return self._simulator.now

    @property
    def num_machines(self):
        return self._simulator.num_machines

    def send(self, dst, payload, size=0):
        if dst == self.machine_id:
            raise RuntimeFault("machine %d sent a message to itself" % dst)
        simulator = self._simulator
        deliver_at = simulator.network.send(
            simulator.now, self.machine_id, dst, payload, size
        )
        if simulator.tracer is not None:
            from repro.obs.events import MessageSend

            simulator.tracer.emit(MessageSend(
                simulator.now, self.machine_id, dst,
                type(payload).__name__, getattr(payload, "stage", None),
                size, deliver_at,
            ))


class Simulator:
    """Drives machines tick by tick until global completion."""

    def __init__(self, config, tracer=None):
        self._config = config
        self.network = Network(
            latency=config.network_latency,
            bandwidth=config.network_bandwidth,
            sender_rate=config.sender_messages_per_tick,
        )
        self.now = 0
        self._machines = []
        #: Optional repro.obs.Tracer; None keeps every hot path untraced.
        self.tracer = tracer

    @property
    def num_machines(self):
        return self._config.num_machines

    @property
    def config(self):
        return self._config

    def api_for(self, machine_id):
        """The capability handle for machine *machine_id*."""
        return MachineAPI(self, machine_id)

    def attach(self, machines):
        """Register the machine objects (must match config.num_machines)."""
        if len(machines) != self._config.num_machines:
            raise RuntimeFault(
                "expected %d machines, got %d"
                % (self._config.num_machines, len(machines))
            )
        self._machines = list(machines)

    def run(self):
        """Run to completion; returns a :class:`QueryMetrics`."""
        config = self._config
        machines = self._machines
        if not machines:
            raise RuntimeFault("no machines attached")
        started = time.perf_counter()
        workers = config.workers_per_machine
        budget = config.ops_per_tick
        tracer = self.tracer
        if tracer is not None:
            from repro.obs.events import MessageDeliver, TickSample

            last_ops = [machine.metrics.ops for machine in machines]
        while True:
            for envelope in self.network.deliver_due(self.now):
                if tracer is not None:
                    tracer.emit(MessageDeliver(
                        self.now, envelope.src, envelope.dst,
                        type(envelope.payload).__name__,
                        getattr(envelope.payload, "stage", None),
                    ))
                machines[envelope.dst].on_message(envelope.src, envelope.payload)

            all_idle = True
            for machine in machines:
                for worker_index in range(workers):
                    used = machine.worker_step(worker_index, budget)
                    if used:
                        all_idle = False

            if tracer is not None:
                samples = []
                for index, machine in enumerate(machines):
                    metrics = machine.metrics
                    flow = getattr(machine, "flow", None)
                    samples.append((
                        metrics.ops - last_ops[index],
                        metrics.cur_buffered_contexts,
                        metrics.cur_live_frames,
                        flow.inflight_total() if flow is not None else 0,
                    ))
                    last_ops[index] = metrics.ops
                tracer.emit(TickSample(self.now, tuple(samples)))

            if all(machine.is_finished() for machine in machines):
                if len(self.network) == 0:
                    break
            if all_idle and len(self.network):
                # Nothing to do until the next delivery: fast-forward.
                self.now = self.network.next_delivery_tick()
                continue
            if all_idle and len(self.network) == 0:
                if all(machine.is_finished() for machine in machines):
                    break
                raise RuntimeFault(
                    "simulation deadlock at tick %d: all machines idle, "
                    "no messages in flight, not finished" % self.now
                )
            self.now += 1
            if self.now > config.max_ticks:
                raise RuntimeFault("simulation exceeded max_ticks")

        wall = time.perf_counter() - started
        if tracer is not None:
            tracer.meta["ticks"] = self.now
        return QueryMetrics.collect(
            self.now,
            [machine.metrics for machine in machines],
            wall_time_seconds=wall,
        )
