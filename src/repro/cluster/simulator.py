"""The discrete-time cluster simulator.

The simulator owns a set of *machine* objects (anything implementing the
small :class:`MachineInterface` protocol), the :class:`Network`, and the
global clock.  On each tick it first delivers due network messages, then
gives every worker of every machine an operation budget.  The run ends
when every machine reports completion and no messages are in flight.

Machines talk to the outside world exclusively through the
:class:`MachineAPI` handle they are given, which tags network traffic
with the current tick — machines never see the simulator itself.

Two optional subsystems hook in here:

* **chaos** (``repro.chaos``): when the config carries a ``ChaosConfig``
  the network is replaced by a fault-injecting :class:`~repro.chaos.
  ChaosNetwork` and a :class:`~repro.chaos.ChaosController` applies
  scripted machine stalls and crashes each tick;
* **timers**: machines exposing ``uses_tick_hook`` get an ``on_tick``
  call every tick (the reliability layer's retransmission timers), and
  their ``next_timer_tick`` participates in idle fast-forwarding;
* **telemetry** (``repro.obs.telemetry``): when installed, its
  :class:`~repro.obs.sampler.TimeSeriesSampler` rides the same
  ``on_tick``/``next_timer_tick`` contract — called after every
  processed tick's workers ran, flushed once more when the run ends —
  and the simulator observes the message-latency histogram at each
  delivery.

A hard machine crash or an exceeded query deadline raises a structured
:class:`~repro.errors.QueryAborted` carrying partial metrics and the
trace — the simulator never hangs on an unrecoverable fault.
"""

import time

from repro.cluster.metrics import QueryMetrics
from repro.cluster.network import Network
from repro.errors import QueryAborted, RuntimeFault


class MachineInterface:
    """Protocol the simulator drives.  Machines subclass or duck-type it."""

    def on_message(self, src, payload):
        """Handle a delivered network payload."""
        raise NotImplementedError

    def worker_step(self, worker_index, budget):
        """Run one worker for up to *budget* micro-ops; return ops used."""
        raise NotImplementedError

    def is_finished(self):
        """True when this machine considers the computation complete."""
        raise NotImplementedError

    @property
    def metrics(self):
        raise NotImplementedError


class MachineAPI:
    """Capability handle machines use to reach the network and the clock."""

    def __init__(self, simulator, machine_id):
        self._simulator = simulator
        self.machine_id = machine_id

    @property
    def now(self):
        return self._simulator.now

    @property
    def num_machines(self):
        return self._simulator.num_machines

    def send(self, dst, payload, size=0):
        if dst == self.machine_id:
            raise RuntimeFault("machine %d sent a message to itself" % dst)
        simulator = self._simulator
        deliver_at = simulator.network.send(
            simulator.now, self.machine_id, dst, payload, size
        )
        if simulator.tracer is not None:
            from repro.obs.events import MessageSend

            simulator.tracer.emit(MessageSend(
                simulator.now, self.machine_id, dst,
                getattr(payload, "trace_name", type(payload).__name__),
                getattr(payload, "stage", None),
                size, deliver_at,
            ))


class Simulator:
    """Drives machines tick by tick until global completion."""

    def __init__(self, config, tracer=None, telemetry=None):
        self._config = config
        chaos_config = config.chaos
        if chaos_config is not None:
            from repro.chaos import ChaosController, ChaosNetwork, FaultPlan

            plan = FaultPlan(chaos_config, default_seed=config.seed)
            self.network = ChaosNetwork(
                latency=config.network_latency,
                bandwidth=config.network_bandwidth,
                sender_rate=config.sender_messages_per_tick,
                plan=plan,
                tracer=tracer,
            )
            self.chaos = ChaosController(
                plan, config.num_machines, tracer=tracer
            )
        else:
            self.network = Network(
                latency=config.network_latency,
                bandwidth=config.network_bandwidth,
                sender_rate=config.sender_messages_per_tick,
            )
            self.chaos = None
        self.now = 0
        self._machines = []
        #: Optional repro.obs.Tracer; None keeps every hot path untraced.
        self.tracer = tracer
        #: Optional repro.obs.Telemetry; None keeps every hot path bare.
        self.telemetry = telemetry
        #: Abort the run at this tick; the engine may override per query.
        self.deadline = config.query_deadline_ticks
        #: Identity of the query this simulator executes, when it runs
        #: as one scope of a multi-query service (repro.service); None
        #: for a plain single-query run.  Stamped into flow-state
        #: snapshots so abort diagnostics can name the tenant.
        self.query_id = None
        self._started = False
        self._timer_machines = []
        self._sampler = None
        self._last_ops = None

    @property
    def num_machines(self):
        return self._config.num_machines

    @property
    def config(self):
        return self._config

    def api_for(self, machine_id):
        """The capability handle for machine *machine_id*."""
        return MachineAPI(self, machine_id)

    def attach(self, machines):
        """Register the machine objects (must match config.num_machines)."""
        if len(machines) != self._config.num_machines:
            raise RuntimeFault(
                "expected %d machines, got %d"
                % (self._config.num_machines, len(machines))
            )
        self._machines = list(machines)

    # ------------------------------------------------------------------
    # Abort path (crash / deadline): structured, never a hang
    # ------------------------------------------------------------------
    def _partial_metrics(self):
        metrics = QueryMetrics.collect(
            self.now, [machine.metrics for machine in self._machines]
        )
        self._attach_fault_counters(metrics)
        return metrics

    def _attach_fault_counters(self, metrics):
        network = self.network
        metrics.messages_dropped = network.messages_dropped
        metrics.messages_duplicated = network.messages_duplicated
        metrics.messages_delayed = network.messages_delayed

    def _flow_state(self):
        """Per-machine flow-control/memory snapshot for abort reports.

        Captured on *every* abort path — deadline timeouts included, not
        just crashes — so a query stuck on an exhausted window can be
        debugged from the exception alone.
        """
        state = []
        for machine_id, machine in enumerate(self._machines):
            flow = getattr(machine, "flow", None)
            metrics = getattr(machine, "metrics", None)
            entry = {
                "machine": machine_id,
                "query_id": self.query_id,
                "occupancy": flow.occupancy() if flow is not None else {},
                "inflight_total": (
                    flow.inflight_total() if flow is not None else 0
                ),
                "buffered_contexts": getattr(
                    metrics, "cur_buffered_contexts", 0
                ),
                "live_frames": getattr(metrics, "cur_live_frames", 0),
            }
            state.append(entry)
        return state

    @staticmethod
    def _describe_flow_state(state):
        """Compact one-line rendering of the stuck machines, or None."""
        parts = []
        for entry in state:
            if not (entry["occupancy"] or entry["buffered_contexts"]
                    or entry["live_frames"]):
                continue
            windows = ",".join(
                "s%d->m%d:%d" % (stage, dest, count)
                for (stage, dest), count in sorted(
                    entry["occupancy"].items()
                )
            )
            parts.append(
                "m%d buf=%d frames=%d inflight=%d%s"
                % (
                    entry["machine"],
                    entry["buffered_contexts"],
                    entry["live_frames"],
                    entry["inflight_total"],
                    " [%s]" % windows if windows else "",
                )
            )
        if not parts:
            return None
        return "flow: " + " | ".join(parts)

    def flow_state(self):
        """Public form of the per-machine flow snapshot (service layer)."""
        return self._flow_state()

    def abort(self, reason):
        """Abort the run now with a structured :class:`QueryAborted`.

        Public entry point for external controllers — the multi-query
        service uses it to cancel one tenant's scope mid-run.
        """
        self._abort(reason)

    def _abort(self, reason):
        if self.tracer is not None:
            from repro.obs.events import QueryAbortedEvent

            self.tracer.emit(QueryAbortedEvent(self.now, reason))
            self.tracer.meta["ticks"] = self.now
            self.tracer.meta["aborted"] = reason
        if self.telemetry is not None:
            self.telemetry.sampler.flush(self.now)
            self.telemetry.meta["ticks"] = self.now
            self.telemetry.meta["aborted"] = reason
        details = []
        tracker = getattr(self._machines[0], "termination", None)
        if tracker is not None:
            details.append(tracker.progress_summary())
        unacked = sum(
            machine.api.unacked_frames()
            for machine in self._machines
            if hasattr(getattr(machine, "api", None), "unacked_frames")
        )
        if unacked:
            details.append("%d unacked frames" % unacked)
        flow_state = self._flow_state()
        flow_line = self._describe_flow_state(flow_state)
        if flow_line:
            details.append(flow_line)
        raise QueryAborted(
            reason,
            tick=self.now,
            metrics=self._partial_metrics(),
            trace=self.tracer,
            detail="; ".join(details) or None,
            flow_state=flow_state,
        )

    def start(self):
        """Prepare for tick-by-tick stepping (idempotent).

        Splitting the run into ``start`` / ``step`` / ``finish`` lets
        the multi-query service (``repro.service``) interleave several
        simulators on one shared deployment, advancing each scope one
        *virtual* tick at a time; :meth:`run` composes the same three
        pieces for the classic single-query path, so both drive the
        identical per-tick semantics.
        """
        if self._started:
            return
        if not self._machines:
            raise RuntimeFault("no machines attached")
        machines = self._machines
        self._timer_machines = [
            (index, machine)
            for index, machine in enumerate(machines)
            if getattr(machine, "uses_tick_hook", False)
        ]
        telemetry = self.telemetry
        self._sampler = telemetry.sampler if telemetry is not None else None
        if self._sampler is not None:
            num_stages = getattr(
                getattr(machines[0], "plan", None), "num_stages", 0
            )
            self._sampler.bind(machines, self._config, num_stages)
        if self.tracer is not None:
            self._last_ops = [machine.metrics.ops for machine in machines]
        self._started = True

    def step(self):
        """Advance the cluster by one processed tick.

        Returns True when the run is globally complete (every machine
        finished and no messages in flight); idle stretches fast-forward
        the clock to the next due event inside a single call.  Raises
        :class:`~repro.errors.QueryAborted` on a crash or a passed
        deadline, exactly like :meth:`run`.
        """
        config = self._config
        machines = self._machines
        workers = config.workers_per_machine
        budget = config.ops_per_tick
        tracer = self.tracer
        telemetry = self.telemetry
        sampler = self._sampler
        chaos = self.chaos
        deadline = self.deadline
        if tracer is not None:
            from repro.obs.events import MessageDeliver, TickSample

            last_ops = self._last_ops
        if deadline is not None and self.now >= deadline:
            self._abort("deadline of %d ticks exceeded" % deadline)
        if chaos is not None:
            crashed = chaos.begin_tick(self.now)
            if crashed is not None:
                self._abort("machine %d crashed" % crashed)
        for index, machine in self._timer_machines:
            if chaos is None or not chaos.is_stalled(index, self.now):
                machine.on_tick(self.now)

        for envelope in self.network.deliver_due(self.now):
            if tracer is not None:
                tracer.emit(MessageDeliver(
                    self.now, envelope.src, envelope.dst,
                    getattr(envelope.payload, "trace_name",
                            type(envelope.payload).__name__),
                    getattr(envelope.payload, "stage", None),
                ))
            if telemetry is not None:
                telemetry.message_latency.observe(
                    self.now - envelope.sent_at
                )
            machines[envelope.dst].on_message(envelope.src, envelope.payload)

        all_idle = True
        for index, machine in enumerate(machines):
            if chaos is not None and chaos.is_stalled(index, self.now):
                continue  # compute frozen; the NIC above still ran
            for worker_index in range(workers):
                used = machine.worker_step(worker_index, budget)
                if used:
                    all_idle = False

        if tracer is not None:
            samples = []
            for index, machine in enumerate(machines):
                metrics = machine.metrics
                flow = getattr(machine, "flow", None)
                samples.append((
                    metrics.ops - last_ops[index],
                    metrics.cur_buffered_contexts,
                    metrics.cur_live_frames,
                    flow.inflight_total() if flow is not None else 0,
                ))
                last_ops[index] = metrics.ops
            tracer.emit(TickSample(self.now, tuple(samples)))
        if sampler is not None:
            # End-of-tick sample: the same uses_tick_hook contract
            # as the timers above, after all workers ran.
            sampler.on_tick(self.now)

        if all(machine.is_finished() for machine in machines):
            if len(self.network) == 0:
                return True
        if all_idle:
            # Nothing to do right now: fast-forward to the next
            # event — a delivery, a retransmission timer, a scripted
            # chaos transition, or the deadline itself.
            candidates = []
            next_delivery = self.network.next_delivery_tick()
            if next_delivery is not None:
                candidates.append(next_delivery)
            for _index, machine in self._timer_machines:
                timer = machine.next_timer_tick()
                if timer is not None:
                    candidates.append(timer)
            if chaos is not None:
                event = chaos.next_event_tick(self.now)
                if event is not None:
                    candidates.append(event)
            if deadline is not None:
                candidates.append(deadline)
            if candidates:
                self.now = max(self.now + 1, min(candidates))
                return False
            if all(machine.is_finished() for machine in machines):
                return True
            raise RuntimeFault(
                "simulation deadlock at tick %d: all machines idle, "
                "no messages in flight, not finished" % self.now
            )
        self.now += 1
        if self.now > config.max_ticks:
            raise RuntimeFault("simulation exceeded max_ticks")
        return False

    def finish(self, wall_time_seconds=0.0):
        """Seal a completed run; returns its :class:`QueryMetrics`."""
        if self.tracer is not None:
            self.tracer.meta["ticks"] = self.now
        if self._sampler is not None:
            self._sampler.flush(self.now)
        if self.telemetry is not None:
            self.telemetry.meta["ticks"] = self.now
            self.telemetry.meta["wall_time_seconds"] = wall_time_seconds
        metrics = QueryMetrics.collect(
            self.now,
            [machine.metrics for machine in self._machines],
            wall_time_seconds=wall_time_seconds,
        )
        self._attach_fault_counters(metrics)
        return metrics

    def run(self):
        """Run to completion; returns a :class:`QueryMetrics`.

        Raises :class:`~repro.errors.QueryAborted` when a chaos-scripted
        machine crash fires or the query deadline passes.
        """
        started = time.perf_counter()
        self.start()
        while not self.step():
            pass
        return self.finish(time.perf_counter() - started)
