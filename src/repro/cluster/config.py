"""Configuration of the simulated cluster and its cost model.

The simulator is a discrete-time model: on every tick each worker may
perform up to ``ops_per_tick`` micro-operations (matching one vertex,
advancing one neighbor cursor, consuming one message context, ...), and
a message sent on tick *t* becomes visible to its destination on tick
``t + network_latency (+ payload size / network_bandwidth)``.

Absolute tick counts are meaningless; *ratios* between configurations
(more machines, higher latency, smaller flow-control budgets) are the
quantities the benchmarks report, mirroring how the paper reports
relative query times.
"""

from dataclasses import dataclass

from repro.errors import ClusterConfigError


@dataclass
class ClusterConfig:
    """Shape and cost model of the simulated cluster."""

    #: Number of simulated machines (the paper uses 1-32).
    num_machines: int = 4
    #: Worker threads per machine (the paper: slightly fewer than hardware
    #: contexts; default kept small so simulations stay fast).
    workers_per_machine: int = 4
    #: Micro-operations one worker may execute per tick.
    ops_per_tick: int = 32
    #: Ticks between handing a message to the network and delivery.
    network_latency: int = 8
    #: Contexts per tick of additional serialization delay (0 disables).
    #: A bulk message with C contexts adds ``C // network_bandwidth`` ticks.
    network_bandwidth: int = 64
    #: Fixed per-message cost, in sender micro-ops.
    message_send_cost: int = 4
    #: Messages one machine's NIC can inject per tick (0 = unlimited).
    #: Makes all-to-all exchanges scale with the cluster size.
    sender_messages_per_tick: int = 8

    # ------------------------------------------------------------------
    # Reproducibility
    # ------------------------------------------------------------------
    #: Master seed for everything stochastic that hangs off this
    #: cluster: chaos fault plans default to it, and the seeded workload
    #: helpers (``repro.workloads.random_graphs.seeded_workload``)
    #: derive graphs and query suites from it — one knob replays a run.
    seed: int = 0

    # ------------------------------------------------------------------
    # Chaos & reliability (repro.chaos / runtime.reliability)
    # ------------------------------------------------------------------
    #: Fault model applied to this cluster's network and machines — a
    #: :class:`repro.chaos.ChaosConfig`, or None for the default
    #: perfectly-reliable interconnect.
    chaos: object = None
    #: Run every machine's traffic through the reliable-channel layer
    #: (sequence numbers, dedup/reorder buffering, ack + retransmit).
    #: Required whenever ``chaos`` can drop, duplicate, or reorder
    #: messages — the termination protocol is unsound without it.
    reliability: bool = False
    #: Retransmission timeout in ticks (0 = auto: one round trip + slack).
    retransmit_timeout: int = 0
    #: Abort any query still running after this many ticks with a
    #: structured ``QueryAborted`` carrying partial metrics (None = no
    #: deadline).  Per-query override: ``PlannerOptions.timeout_ticks``.
    query_deadline_ticks: int = None

    # ------------------------------------------------------------------
    # Flow control (paper §3.3)
    # ------------------------------------------------------------------
    #: Contexts per bulk message (the message manager packs this many
    #: intermediate results into one network message).
    bulk_message_size: int = 32
    #: Per-(stage, destination) window: max unacknowledged bulk messages a
    #: sender may have in flight. This is the paper's ``b[n][m]``.
    flow_control_window: int = 4
    #: Enable the paper's dynamic memory management: redistribute the
    #: windows of completed stages and allow machines to borrow unused
    #: window capacity from peers.
    dynamic_flow_control: bool = True
    #: Blocking mode for the ABL4 ablation: workers synchronously wait for
    #: the acknowledgment of every remote message instead of switching to
    #: other work (this is what asynchrony saves us from).
    blocking_remote: bool = False
    #: Execute the non-blocking fast path through compiled per-stage
    #: bulk kernels (``repro.runtime.kernels``): specialized per-stage
    #: closures built at plan-finalize time that process whole CSR
    #: adjacency runs per dispatch and pre-reserve flow-control window
    #: capacity in batches.  Charges the identical op counts, so every
    #: deterministic metric is bit-identical either way; False runs the
    #: micro-stepped cursor path.  Ignored (off) under blocking_remote.
    bulk_kernels: bool = True
    #: Intra-machine work sharing (paper §1/§3.3: computations "submitted
    #: internally to facilitate work-sharing").  Disable to reproduce the
    #: paper's own unbalanced configuration ("we have not yet implemented
    #: the intra-machine workload balancing capabilities").
    work_sharing: bool = True

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------
    #: Record a structured event trace for every query run on this
    #: cluster (``QueryResult.trace``).  Off by default: the runtime then
    #: carries no tracer and instrumentation sites reduce to a single
    #: ``is not None`` check.  Per-query tracing is also available via
    #: ``PlannerOptions(trace=True)``.
    trace: bool = False
    #: Cap on recorded trace events per query (excess events are counted
    #: in ``trace.dropped`` instead of stored).
    trace_max_events: int = 1_000_000
    #: Record live telemetry for every query on this cluster: a metrics
    #: registry (counters/gauges/histograms) plus a per-tick time series
    #: of each machine's flow-control and memory state, returned as
    #: ``QueryResult.telemetry``.  Off by default — the runtime then
    #: holds ``None`` and each instrumentation site is one pointer
    #: comparison.  Per-query: ``PlannerOptions(telemetry=True)``.
    telemetry: bool = False
    #: Sample the time series every N processed simulator ticks.
    telemetry_interval: int = 1

    #: Hard cap on ticks before the simulator declares a hang (guards
    #: against runtime bugs during development; never hit by the tests).
    max_ticks: int = 50_000_000

    def __post_init__(self):
        self.validate()

    def validate(self):
        if self.num_machines < 1:
            raise ClusterConfigError("num_machines must be >= 1")
        if self.workers_per_machine < 1:
            raise ClusterConfigError("workers_per_machine must be >= 1")
        if self.ops_per_tick < 1:
            raise ClusterConfigError("ops_per_tick must be >= 1")
        if self.network_latency < 0:
            raise ClusterConfigError("network_latency must be >= 0")
        if self.network_bandwidth < 0:
            raise ClusterConfigError("network_bandwidth must be >= 0")
        if self.bulk_message_size < 1:
            raise ClusterConfigError("bulk_message_size must be >= 1")
        if self.flow_control_window < 1:
            raise ClusterConfigError("flow_control_window must be >= 1")
        if self.retransmit_timeout < 0:
            raise ClusterConfigError("retransmit_timeout must be >= 0")
        if self.telemetry_interval < 1:
            raise ClusterConfigError("telemetry_interval must be >= 1")
        if self.query_deadline_ticks is not None \
                and self.query_deadline_ticks < 1:
            raise ClusterConfigError("query_deadline_ticks must be >= 1")
        if self.chaos is not None and self.chaos.has_message_faults \
                and not self.reliability:
            raise ClusterConfigError(
                "chaos with message faults (drop/duplicate/reorder) "
                "requires reliability=True: the termination protocol "
                "assumes ordered reliable delivery"
            )
        return self

    def replace(self, **changes):
        """Return a copy with *changes* applied (validated)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)
