"""PGX.D-style task plumbing.

PGX.D executes computations as coarse-grained *tasks* placed in per-
machine task queues by the task manager; PGX.D/Async uses exactly two of
them (paper §3.3): a **bootstrap** task that seeds stage 0, and an
**await-completion** task that keeps handling asynchronous messages until
every machine finishes the query.  This module keeps that structure
visible: the runtime machines enqueue these two tasks and the simulator's
workers drain them, while all fine-grained work happens inside the
await-completion task's ``DOWORK`` loop.
"""

import enum


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class Task:
    """A coarse unit of machine work.

    ``poll(worker, budget)`` performs up to *budget* micro-ops and returns
    the number consumed; the task flips itself to DONE when finished.
    """

    name = "task"

    def __init__(self):
        self.state = TaskState.PENDING

    def poll(self, worker, budget):
        raise NotImplementedError


class CallbackTask(Task):
    """Adapts a ``poll(worker, budget) -> (ops, done)`` callable."""

    def __init__(self, name, poll_func):
        super().__init__()
        self.name = name
        self._poll_func = poll_func

    def poll(self, worker, budget):
        self.state = TaskState.RUNNING
        ops, done = self._poll_func(worker, budget)
        if done:
            self.state = TaskState.DONE
        return ops


class TaskQueue:
    """Per-machine FIFO of coarse tasks; workers poll the head task.

    All workers of a machine cooperate on the head task (PGX.D tasks are
    data-parallel); the queue advances when the head completes.
    """

    def __init__(self):
        self._tasks = []

    def push(self, task):
        self._tasks.append(task)

    def head(self):
        while self._tasks and self._tasks[0].state is TaskState.DONE:
            self._tasks.pop(0)
        return self._tasks[0] if self._tasks else None

    def __len__(self):
        return sum(1 for task in self._tasks if task.state is not TaskState.DONE)
