"""Execution metrics collected by the simulator.

``MachineMetrics`` counts events on one simulated machine;
``QueryMetrics`` aggregates them with the global clock into the record a
benchmark reports.  Peak trackers implement the memory-bound claims of
the paper: ``peak_buffered_contexts`` is the quantity flow control is
supposed to keep below the configured budget.
"""

from dataclasses import dataclass, field, fields


@dataclass
class MachineMetrics:
    """Per-machine counters (all monotone except the ``cur_*`` gauges)."""

    ops: int = 0
    idle_ticks: int = 0
    work_messages_sent: int = 0
    contexts_sent: int = 0
    control_messages_sent: int = 0
    results_emitted: int = 0
    flow_control_blocks: int = 0
    quota_requests: int = 0
    quota_granted: int = 0
    ghost_prunes: int = 0

    # Reliability layer (runtime.reliability; zero when disabled).
    retransmits: int = 0
    dup_frames_dropped: int = 0
    reordered_frames: int = 0

    # Bulk-kernel fast path (runtime.kernels; zero when disabled).
    # Purely diagnostic: kernel_ops is a subset of ops, and neither
    # participates in any deterministic gate — the whole point of the
    # fast path is that the gated metrics don't move.
    kernel_batches: int = 0
    kernel_ops: int = 0

    # Gauges and their high-water marks.
    cur_buffered_contexts: int = 0
    peak_buffered_contexts: int = 0
    cur_live_frames: int = 0
    peak_live_frames: int = 0

    def buffered_delta(self, delta):
        """Adjust the buffered-context gauge (inbox + parked + outgoing)."""
        self.cur_buffered_contexts += delta
        if self.cur_buffered_contexts > self.peak_buffered_contexts:
            self.peak_buffered_contexts = self.cur_buffered_contexts

    def frames_delta(self, delta):
        self.cur_live_frames += delta
        if self.cur_live_frames > self.peak_live_frames:
            self.peak_live_frames = self.cur_live_frames

    #: Gauge peaks combined by ``max`` in :meth:`merge`; the ``cur_*``
    #: gauges of a finished run are transient and not merged.
    _MERGE_BY_MAX = frozenset({"peak_buffered_contexts", "peak_live_frames"})
    _MERGE_SKIP = frozenset({"cur_buffered_contexts", "cur_live_frames"})

    def merge(self, other):
        """Accumulate *other* into this record (sequential composition)."""
        for spec in fields(self):
            if spec.name in self._MERGE_SKIP:
                continue
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if spec.name in self._MERGE_BY_MAX:
                setattr(self, spec.name, max(mine, theirs))
            else:
                setattr(self, spec.name, mine + theirs)
        return self


@dataclass
class QueryMetrics:
    """Aggregated outcome of one simulated query execution."""

    ticks: int = 0
    num_machines: int = 0
    total_ops: int = 0
    total_idle_ticks: int = 0
    work_messages: int = 0
    contexts_shipped: int = 0
    control_messages: int = 0
    num_results: int = 0
    peak_buffered_contexts: int = 0
    peak_live_frames: int = 0
    flow_control_blocks: int = 0
    quota_requests: int = 0
    quota_granted: int = 0
    ghost_prunes: int = 0
    # Reliability layer (summed across machines; zero when disabled).
    retransmits: int = 0
    dup_frames_dropped: int = 0
    reordered_frames: int = 0
    # Bulk-kernel fast path (summed across machines; zero when disabled).
    kernel_batches: int = 0
    kernel_ops: int = 0
    # Chaos fault injections, copied from the network by the simulator.
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    wall_time_seconds: float = 0.0
    per_machine: list = field(default_factory=list)

    @classmethod
    def collect(cls, ticks, machine_metrics, wall_time_seconds=0.0):
        """Fold per-machine counters into one record."""
        metrics = cls(ticks=ticks, num_machines=len(machine_metrics),
                      wall_time_seconds=wall_time_seconds)
        for machine in machine_metrics:
            metrics.total_ops += machine.ops
            metrics.total_idle_ticks += machine.idle_ticks
            metrics.work_messages += machine.work_messages_sent
            metrics.contexts_shipped += machine.contexts_sent
            metrics.control_messages += machine.control_messages_sent
            metrics.num_results += machine.results_emitted
            metrics.flow_control_blocks += machine.flow_control_blocks
            metrics.quota_requests += machine.quota_requests
            metrics.quota_granted += machine.quota_granted
            metrics.ghost_prunes += machine.ghost_prunes
            metrics.retransmits += machine.retransmits
            metrics.dup_frames_dropped += machine.dup_frames_dropped
            metrics.reordered_frames += machine.reordered_frames
            metrics.kernel_batches += machine.kernel_batches
            metrics.kernel_ops += machine.kernel_ops
            metrics.peak_buffered_contexts = max(
                metrics.peak_buffered_contexts, machine.peak_buffered_contexts
            )
            metrics.peak_live_frames = max(
                metrics.peak_live_frames, machine.peak_live_frames
            )
        metrics.per_machine = list(machine_metrics)
        return metrics

    #: Fields combined by ``max`` in :meth:`merge`; every other numeric
    #: field is summed, so a newly added counter is merged correctly by
    #: default instead of silently dropping out of union aggregation.
    _MERGE_BY_MAX = frozenset(
        {"num_machines", "peak_buffered_contexts", "peak_live_frames"}
    )

    def merge(self, other):
        """Accumulate *other* into this record (sequential composition).

        Used when one logical query runs as several physical executions
        back to back — e.g. the expansions of a variable-length-path
        union.  Counters and times add up; high-water marks and the
        machine count take the maximum.  ``per_machine`` lists are merged
        positionally when both runs used the same cluster shape and
        dropped otherwise (a max of peaks across differently-shaped runs
        would be meaningless).
        """
        for spec in fields(self):
            if spec.name == "per_machine":
                continue
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if spec.name in self._MERGE_BY_MAX:
                setattr(self, spec.name, max(mine, theirs))
            else:
                setattr(self, spec.name, mine + theirs)
        if len(self.per_machine) == len(other.per_machine):
            for mine, theirs in zip(self.per_machine, other.per_machine):
                mine.merge(theirs)
        else:
            self.per_machine = []
        return self

    def reliability_summary(self):
        """One-line chaos/reliability summary (all zero on clean runs)."""
        return (
            "faults: dropped=%d duplicated=%d delayed=%d | recovery: "
            "retransmits=%d dup_frames_dropped=%d reordered=%d"
            % (
                self.messages_dropped,
                self.messages_duplicated,
                self.messages_delayed,
                self.retransmits,
                self.dup_frames_dropped,
                self.reordered_frames,
            )
        )

    def summary(self):
        """One-line human summary, used by examples and benchmarks."""
        return (
            "ticks=%d results=%d msgs=%d ctxs=%d peak_buf=%d peak_frames=%d"
            % (
                self.ticks,
                self.num_results,
                self.work_messages,
                self.contexts_shipped,
                self.peak_buffered_contexts,
                self.peak_live_frames,
            )
        )
