"""Simulated interconnect.

Messages handed to the network on tick *t* are delivered on tick
``t + latency + payload_size // bandwidth``.  Delivery is FIFO per
directed (source, destination) channel — the termination protocol relies
on a machine's ``COMPLETED`` notification never overtaking its earlier
work messages on the same channel, which matches the ordered reliable
transport (InfiniBand RC) the paper's messaging library runs on.

The chaos subsystem (``repro.chaos``) subclasses :class:`Network` to
inject message drops, duplications, and reordering delays; the
injection/transfer helpers below are factored out so the subclass can
reuse the cost model while overriding the delivery discipline.
"""

import heapq
import itertools


class Envelope:
    """A message in flight."""

    __slots__ = ("src", "dst", "payload", "deliver_at", "size", "sent_at")

    def __init__(self, src, dst, payload, deliver_at, size, sent_at=0):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.deliver_at = deliver_at
        self.size = size
        #: Tick the sender handed the payload over (latency telemetry).
        self.sent_at = sent_at


class Network:
    """Latency/bandwidth network model with per-channel FIFO delivery.

    *sender_rate* models NIC serialization at the source: one machine
    can inject at most that many messages per tick, so all-to-all
    exchanges (e.g. the termination protocol's COMPLETED broadcasts)
    get slower as the cluster grows — matching the paper's observation
    that tiny-query overhead increases with the machine count.

    All clocks are integral.  NIC occupancy is tracked in *slots* of
    ``1/sender_rate`` tick each, using pure integer arithmetic, so a
    delivery tick is always a whole number — fractional per-message
    costs never leak into the simulator clock.
    """

    def __init__(self, latency=0, bandwidth=0, sender_rate=8):
        self._latency = latency
        self._bandwidth = bandwidth
        self._sender_rate = sender_rate
        self._heap = []
        self._sequence = itertools.count()
        # Last scheduled delivery tick per (src, dst), for FIFO enforcement.
        self._channel_clock = {}
        # Next free NIC slot per source, in units of 1/sender_rate ticks.
        self._source_slot = {}
        self.messages_delivered = 0
        # Fault counters; only ever incremented by the chaos subclass.
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0

    def __len__(self):
        """Messages currently in flight."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Cost model helpers (shared with repro.chaos.ChaosNetwork)
    # ------------------------------------------------------------------
    def _injection_tick(self, now, src):
        """Integral tick the source NIC injects the next message.

        The NIC serializes ``sender_rate`` messages per tick: message
        *k* of a burst occupies slot *k* and injects on tick
        ``slot // sender_rate`` — integer arithmetic throughout.
        """
        rate = self._sender_rate
        if not rate:
            return now
        slot = max(now * rate, self._source_slot.get(src, 0))
        self._source_slot[src] = slot + 1
        return slot // rate

    def _transfer_ticks(self, size):
        return size // self._bandwidth if self._bandwidth else 0

    def _fifo_clamp(self, channel, deliver_at):
        """Enforce per-channel FIFO: never deliver before a prior message."""
        previous = self._channel_clock.get(channel, -1)
        if deliver_at <= previous:
            deliver_at = previous  # keep FIFO order; ties break by sequence
        self._channel_clock[channel] = deliver_at
        return deliver_at

    def _push(self, src, dst, payload, deliver_at, size, sent_at=0):
        heapq.heappush(
            self._heap,
            (deliver_at, next(self._sequence),
             Envelope(src, dst, payload, deliver_at, size, sent_at)),
        )

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def send(self, now, src, dst, payload, size=0):
        """Queue *payload* from *src* to *dst*; returns the delivery tick."""
        deliver_at = (
            self._injection_tick(now, src)
            + self._latency
            + self._transfer_ticks(size)
        )
        deliver_at = self._fifo_clamp((src, dst), deliver_at)
        self._push(src, dst, payload, deliver_at, size, sent_at=now)
        return deliver_at

    def deliver_due(self, now):
        """Pop and return all envelopes due at or before tick *now*.

        Envelopes come out in (delivery tick, send order) — deterministic.
        """
        due = []
        while self._heap and self._heap[0][0] <= now:
            _, _, envelope = heapq.heappop(self._heap)
            due.append(envelope)
        self.messages_delivered += len(due)
        return due

    def next_delivery_tick(self):
        """Tick of the earliest in-flight envelope, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
