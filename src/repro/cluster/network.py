"""Simulated interconnect.

Messages handed to the network on tick *t* are delivered on tick
``t + latency + payload_size // bandwidth``.  Delivery is FIFO per
directed (source, destination) channel — the termination protocol relies
on a machine's ``COMPLETED`` notification never overtaking its earlier
work messages on the same channel, which matches the ordered reliable
transport (InfiniBand RC) the paper's messaging library runs on.
"""

import heapq
import itertools


class Envelope:
    """A message in flight."""

    __slots__ = ("src", "dst", "payload", "deliver_at", "size")

    def __init__(self, src, dst, payload, deliver_at, size):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.deliver_at = deliver_at
        self.size = size


class Network:
    """Latency/bandwidth network model with per-channel FIFO delivery.

    *sender_rate* models NIC serialization at the source: one machine
    can inject at most that many messages per tick, so all-to-all
    exchanges (e.g. the termination protocol's COMPLETED broadcasts)
    get slower as the cluster grows — matching the paper's observation
    that tiny-query overhead increases with the machine count.
    """

    def __init__(self, latency=0, bandwidth=0, sender_rate=8):
        self._latency = latency
        self._bandwidth = bandwidth
        self._sender_cost = 1.0 / sender_rate if sender_rate else 0.0
        self._heap = []
        self._sequence = itertools.count()
        # Last scheduled delivery tick per (src, dst), for FIFO enforcement.
        self._channel_clock = {}
        # Earliest tick each source NIC is free to inject the next message.
        self._source_clock = {}
        self.messages_delivered = 0

    def __len__(self):
        """Messages currently in flight."""
        return len(self._heap)

    def send(self, now, src, dst, payload, size=0):
        """Queue *payload* from *src* to *dst*; returns the delivery tick."""
        transfer = size // self._bandwidth if self._bandwidth else 0
        inject_at = max(now, self._source_clock.get(src, 0))
        self._source_clock[src] = inject_at + self._sender_cost
        deliver_at = inject_at + self._latency + transfer
        channel = (src, dst)
        previous = self._channel_clock.get(channel, -1)
        if deliver_at <= previous:
            deliver_at = previous  # keep FIFO order; ties break by sequence
        self._channel_clock[channel] = deliver_at
        heapq.heappush(
            self._heap,
            (deliver_at, next(self._sequence),
             Envelope(src, dst, payload, deliver_at, size)),
        )
        return deliver_at

    def deliver_due(self, now):
        """Pop and return all envelopes due at or before tick *now*.

        Envelopes come out in (delivery tick, send order) — deterministic.
        """
        due = []
        while self._heap and self._heap[0][0] <= now:
            _, _, envelope = heapq.heappop(self._heap)
            due.append(envelope)
        self.messages_delivered += len(due)
        return due

    def next_delivery_tick(self):
        """Tick of the earliest in-flight envelope, or None when empty.

        Rounded up to an integer tick so the simulator clock stays whole.
        """
        if not self._heap:
            return None
        import math

        return int(math.ceil(self._heap[0][0]))
