"""Exception hierarchy for the PGX.D/Async reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for graph construction and access errors."""


class UnknownPropertyError(GraphError):
    """A vertex or edge property name does not exist in the schema."""

    def __init__(self, kind, name):
        self.kind = kind
        self.name = name
        super().__init__("unknown %s property: %r" % (kind, name))


class PropertyTypeError(GraphError):
    """A property value does not match the declared property type."""


class InvalidVertexError(GraphError):
    """A vertex id is out of range or not valid in the current graph."""


class InvalidEdgeError(GraphError):
    """An edge id is out of range or not valid in the current graph."""


class RemoteAccessError(GraphError):
    """A machine attempted to read data owned by a different machine.

    The distributed runtime must never touch remote vertex properties or
    adjacency directly; it has to ship the computation context instead.
    This error surfaces planner or runtime bugs that violate that rule.
    """


class PgqlError(ReproError):
    """Base class for PGQL front-end errors."""


class PgqlSyntaxError(PgqlError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)


class PgqlValidationError(PgqlError):
    """The query parsed but is semantically invalid (unknown variable,
    type mismatch, aggregate misuse, ...)."""


class PlanError(ReproError):
    """Query planning failed (disconnected pattern, unsupported shape, ...)."""


class RuntimeFault(ReproError):
    """The distributed runtime reached an inconsistent state."""


class QueryAborted(ReproError):
    """A query was cancelled before completion instead of hanging.

    Raised for unrecoverable faults (a crashed machine) and exceeded
    query deadlines.  Carries everything the runtime knew at abort time:

    * ``reason`` — human-readable cause;
    * ``tick`` — the simulated tick the abort happened on;
    * ``metrics`` — partial :class:`~repro.cluster.metrics.QueryMetrics`
      collected from the machines at abort time (may be ``None``);
    * ``trace`` — the :class:`~repro.obs.Tracer` recording the run, when
      tracing was enabled;
    * ``detail`` — optional termination/flow-control progress snapshot;
    * ``flow_state`` — per-machine flow-control/memory snapshot at abort
      time (deadline aborts included): a list of dicts with ``machine``,
      ``occupancy`` (the nonzero ``(stage, dest) -> in-flight`` windows
      from :meth:`FlowControl.occupancy`), and the ``cur_*`` gauges
      (``buffered_contexts``, ``live_frames``), for stuck-window
      debugging.  ``None`` when the simulator had no machines attached.
    """

    def __init__(self, reason, tick=None, metrics=None, trace=None,
                 detail=None, flow_state=None):
        self.reason = reason
        self.tick = tick
        self.metrics = metrics
        self.trace = trace
        self.detail = detail
        self.flow_state = flow_state
        message = "query aborted"
        if tick is not None:
            message += " at tick %d" % tick
        message += ": %s" % reason
        if detail:
            message += " (%s)" % detail
        super().__init__(message)


class FlowControlError(RuntimeFault):
    """Flow-control invariants were violated (negative counter, ...)."""


class ClusterConfigError(ReproError):
    """Invalid cluster simulator configuration."""


class TelemetryError(ReproError):
    """Invalid use of the live-telemetry metrics registry."""


class AnalysisError(ReproError):
    """The static analyzer (``repro lint``) was misused or hit an
    unparseable input: bad severity, malformed baseline file, missing
    path, or a source file with a syntax error."""
