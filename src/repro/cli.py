"""Command-line interface: query and analyze graphs from the shell.

Usage examples::

    python -m repro query --random 1000x5000 --machines 4 \\
        "SELECT a, b WHERE (a)-[]->(b), a.value > b.value" --limit-print 10

    python -m repro query --graph data/graph.json --explain \\
        "SELECT COUNT(*) WHERE (a)-[:friend]->(b)"

    python -m repro trace --random 1000x5000 --machines 4 \\
        "SELECT a, b WHERE (a)-[]->(b)" --chrome-out trace.json

    python -m repro chaos --random 1000x5000 --machines 4 --seed 7 \\
        --profile soak --verify "SELECT a, b WHERE (a)-[]->(b)"

    python -m repro monitor --random 1000x5000 --machines 4 \\
        "SELECT a, b WHERE (a)-[]->(b)" --series-out series.jsonl

    python -m repro query --bsbm 500 --plan cost --explain \\
        "SELECT COUNT(*) WHERE (o:offer)-[:offerProduct]->(p:product)-[:producer]->(pr:producer)"

    python -m repro stats --bsbm 500 --top 3

    python -m repro bench --quick --compare BENCH_seed.json --threshold 25

    python -m repro lint src/repro --fail-on error --json-out lint.json

    python -m repro lint --explain RPR002

    python -m repro analyze --random 1000x5000 pagerank --iterations 20

    python -m repro analyze --bsbm 500 wcc
"""

import argparse
import os
import sys

from repro.bench import EXIT_REGRESSION
from repro.chaos import PROFILES, profile
from repro.cluster.config import ClusterConfig
from repro.errors import QueryAborted
from repro.graph import load_edge_list, load_json, uniform_random_graph
from repro.plan import MatchSemantics, PlannerOptions, SchedulingPolicy
from repro.runtime import PgxdAsyncEngine

#: Exit code for a query that aborted (deadline, crash) — distinct from
#: argparse's 2 so scripts can tell "bad usage" from "query cancelled".
EXIT_ABORTED = 3

#: Exit code for ``repro lint`` when findings meet the ``--fail-on``
#: threshold (usage errors stay argparse's 2).
EXIT_LINT = 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PGX.D/Async reproduction: distributed graph pattern "
                    "matching on a simulated cluster",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a PGQL query")
    _add_graph_args(query)
    _add_query_args(query)
    query.add_argument("--explain", action="store_true",
                       help="print the stage plan instead of executing")
    query.add_argument("--explain-analyze", action="store_true",
                       help="print the stage plan annotated with runtime "
                            "counters, estimated-vs-actual rows "
                            "(q-error), and per-machine skew after "
                            "executing")
    query.add_argument("--feedback-store", metavar="PATH",
                       help="planner feedback store (JSON): recorded "
                            "actuals correct the cost model's "
                            "selectivities under --plan cost, and this "
                            "run's profile is recorded back")
    query.add_argument("--limit-print", type=int, default=20,
                       help="max rows to print (default 20)")

    trace = subparsers.add_parser(
        "trace",
        help="run a PGQL query with event tracing and report the timeline",
    )
    _add_graph_args(trace)
    _add_query_args(trace)
    trace.add_argument("--chrome-out", metavar="PATH",
                       help="write a chrome://tracing JSON file")
    trace.add_argument("--width", type=int, default=72,
                       help="timeline width in columns (default 72)")
    trace.add_argument("--max-events", type=int, default=1_000_000,
                       help="cap on recorded trace events")

    chaos = subparsers.add_parser(
        "chaos",
        help="run a PGQL query under a fault profile with the "
             "reliability layer, and report delivered-exactly-once stats",
    )
    _add_graph_args(chaos)
    _add_query_args(chaos)
    chaos.add_argument("--profile", choices=sorted(PROFILES),
                       default="soak",
                       help="named fault mix (default: soak)")
    chaos.add_argument("--drop", type=float, default=None,
                       help="override the profile's message drop rate")
    chaos.add_argument("--dup", type=float, default=None,
                       help="override the duplication rate")
    chaos.add_argument("--reorder", type=float, default=None,
                       help="override the reordering rate")
    chaos.add_argument("--max-delay", type=int, default=None,
                       help="max extra ticks for reordered/duplicate copies")
    chaos.add_argument("--stall", action="append", default=[],
                       metavar="M@T+D",
                       help="stall machine M's workers from tick T for D "
                            "ticks (repeatable)")
    chaos.add_argument("--crash", metavar="M@T",
                       help="crash machine M at tick T (the query aborts)")
    chaos.add_argument("--verify", action="store_true",
                       help="also run fault-free and require identical "
                            "results (exit 1 on mismatch)")
    chaos.add_argument("--limit-print", type=int, default=0,
                       help="max rows to print (default 0: stats only)")

    monitor = subparsers.add_parser(
        "monitor",
        help="run a PGQL query with live telemetry and a terminal "
             "dashboard (sparklines per machine + stage wavefront)",
    )
    _add_graph_args(monitor)
    _add_query_args(monitor)
    monitor.add_argument("--interval", type=int, default=1,
                         help="sample the series every N ticks (default 1)")
    monitor.add_argument("--refresh", type=int, default=None,
                         help="redraw every N samples (default: 8 on a "
                              "TTY, 32 in snapshot mode)")
    monitor.add_argument("--width", type=int, default=32,
                         help="sparkline width in columns (default 32)")
    monitor.add_argument("--snapshots", action="store_true",
                         help="force plain-text snapshots instead of the "
                              "ANSI in-place redraw")
    monitor.add_argument("--prom-out", metavar="PATH",
                         help="write the final registry in Prometheus "
                              "text exposition format")
    monitor.add_argument("--series-out", metavar="PATH",
                         help="write the per-tick series (.csv for CSV, "
                              "anything else JSONL)")

    bench = subparsers.add_parser(
        "bench",
        help="run the seeded benchmark matrix, write BENCH_<tag>.json, "
             "and optionally gate against a baseline",
    )
    bench.add_argument("--quick", action="store_true",
                       help="run the CI subset of the matrix (a strict "
                            "subset of the full run, so comparisons "
                            "against a full baseline stay valid)")
    bench.add_argument("--tag", default="run",
                       help="tag for the output document (default: run)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", metavar="PATH",
                       help="output path (default: BENCH_<tag>.json)")
    bench.add_argument("--compare", metavar="PATH",
                       help="baseline BENCH JSON to diff against; exit "
                            "%d when a deterministic metric regressed "
                            "past the threshold" % EXIT_REGRESSION)
    bench.add_argument("--threshold", type=float, default=25.0,
                       help="regression threshold in percent (default 25)")
    bench.add_argument("--profile", action="store_true",
                       help="run the matrix under cProfile and print the "
                            "top 20 functions by cumulative time")
    bench.add_argument("--no-bulk-kernels", action="store_true",
                       help="disable the compiled bulk-kernel fast path "
                            "(micro-stepped reference execution; all "
                            "deterministic metrics are identical)")

    lint = subparsers.add_parser(
        "lint",
        help="run the invariant-aware static analysis rule pack "
             "(determinism, zero-cost-off, protocol exhaustiveness, ...)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to analyze "
                           "(default: src/repro)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="report format on stdout (default: text)")
    lint.add_argument("--json-out", metavar="PATH",
                      help="also write the JSON report to PATH "
                           "(CI artifact)")
    lint.add_argument("--sarif-out", metavar="PATH",
                      help="also write a SARIF 2.1.0 report to PATH "
                           "(code-scanning artifact)")
    lint.add_argument("--diff", metavar="REF",
                      help="only report findings in files changed vs the "
                           "given git ref (the full tree is still "
                           "analyzed so project-wide rules see complete "
                           "context)")
    lint.add_argument("--select", metavar="RPR00N[,RPR00N...]",
                      help="run only the named rules "
                           "(comma-separated ids)")
    lint.add_argument("--all-scopes", action="store_true",
                      help="ignore rule scope restrictions (apply every "
                           "selected rule to every scanned module — for "
                           "scanning tests/ and benchmarks/)")
    lint.add_argument("--severity", metavar="RPR00N=LEVEL",
                      action="append", default=[],
                      help="override a rule's severity (warning|error); "
                           "repeatable")
    lint.add_argument("--baseline", metavar="PATH",
                      help="baseline file of reviewed allowed findings "
                           "(default: discover lint-baseline.json "
                           "upward from the scanned path)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--fail-on", choices=["warning", "error"],
                      default="error",
                      help="exit %d when findings at or above this "
                           "severity remain (default: error)" % EXIT_LINT)
    lint.add_argument("--write-baseline", metavar="PATH",
                      help="write the current findings as a baseline "
                           "(placeholder comments; review before "
                           "checking in) and exit 0")
    lint.add_argument("--prune-baseline", action="store_true",
                      help="rewrite the baseline file dropping entries "
                           "that no longer match any finding, then exit")
    lint.add_argument("--explain", metavar="RPR00N",
                      help="print the rule's rationale and an example "
                           "fix, then exit")

    serve = subparsers.add_parser(
        "serve",
        help="run several PGQL queries concurrently on one shared "
             "deployment through the multi-query service",
    )
    _add_graph_args(serve)
    serve.add_argument("queries", nargs="+", metavar="PGQL",
                       help="the PGQL query texts (each becomes one "
                            "service scope)")
    serve.add_argument("--slots", type=int, default=4,
                       help="admission slots: concurrent scopes "
                            "(default 4)")
    serve.add_argument("--scope-window", type=int, default=None,
                       help="per-scope flow-control window (default: "
                            "carve the machine window evenly across "
                            "the slots)")
    serve.add_argument("--priority", action="append", type=int,
                       default=[], metavar="P",
                       help="priority for the Nth query (repeatable; "
                            "default 1)")
    serve.add_argument("--timeout", type=int, default=None,
                       metavar="TICKS",
                       help="per-query deadline in virtual ticks")
    serve.add_argument("--cancel", action="append", default=[],
                       metavar="N@T",
                       help="cancel the Nth query at global tick T "
                            "(repeatable)")

    traffic = subparsers.add_parser(
        "traffic",
        help="drive a seeded open-loop arrival process against the "
             "multi-query service and report latency percentiles plus "
             "a saturation curve",
    )
    _add_graph_args(traffic)
    traffic.add_argument("--arrivals", type=int, default=12,
                         help="number of query arrivals (default 12)")
    traffic.add_argument("--gap", type=int, default=64,
                         help="mean interarrival gap in global ticks "
                              "(default 64)")
    traffic.add_argument("--slots", type=int, default=8,
                         help="admission slots (default 8)")
    traffic.add_argument("--scope-window", type=int, default=None,
                         help="per-scope flow-control window")
    traffic.add_argument("--query-edges", type=int, default=3,
                         help="edges per generated pattern query "
                              "(default 3)")
    traffic.add_argument("--distinct", type=int, default=4,
                         help="distinct generated queries cycled over "
                              "arrivals (default 4)")
    traffic.add_argument("--deadline", type=int, default=None,
                         metavar="TICKS",
                         help="per-query deadline in virtual ticks")
    traffic.add_argument("--sweep", metavar="G1,G2,...",
                         help="also sweep these interarrival gaps and "
                              "print the saturation curve")
    traffic.add_argument("--chaos", metavar="PROFILE", default=None,
                         choices=sorted(PROFILES),
                         help="run the shared deployment under this "
                              "fault profile with the reliability "
                              "layer enabled (service soak)")
    traffic.add_argument("--verify-serial", action="store_true",
                         help="re-run the arrivals one at a time with "
                              "the same scoped budgets and require "
                              "row- and metric-identical per-query "
                              "outcomes (exit 1 on mismatch)")

    stats = subparsers.add_parser(
        "stats",
        help="collect and print a graph's statistics (label counts, "
             "degree histograms, edge fan-out, property sketches)",
    )
    _add_graph_args(stats)
    _add_format_args(stats)
    stats.add_argument("--json", action="store_true",
                       help="deprecated alias for --format json")
    stats.add_argument("--top", type=int, default=5,
                       help="fan-out triples / top values shown per "
                            "section in table mode (default 5)")
    stats.add_argument("--out", metavar="PATH",
                       help="also save the graph as JSON with the "
                            "statistics embedded (load_json re-attaches "
                            "them without recollection)")

    feedback = subparsers.add_parser(
        "feedback",
        help="inspect a planner feedback store: recorded plan-vs-actual "
             "profiles and the selectivity corrections they produce",
    )
    feedback.add_argument("store", metavar="PATH",
                          help="feedback store JSON written by "
                               "`repro query --feedback-store`")
    _add_format_args(feedback)

    analyze = subparsers.add_parser("analyze", help="run a BSP algorithm")
    _add_graph_args(analyze)
    analyze.add_argument(
        "algorithm",
        choices=["pagerank", "wcc", "sssp", "triangles", "degree"],
    )
    analyze.add_argument("--iterations", type=int, default=20,
                         help="pagerank iterations")
    analyze.add_argument("--source", type=int, default=0,
                         help="sssp source vertex")
    analyze.add_argument("--top", type=int, default=10,
                         help="print the top-N vertices")
    return parser


def _add_format_args(sub):
    """The shared report-output convention (matches ``repro lint``)."""
    sub.add_argument("--format", choices=["text", "json"], default="text",
                     help="report format on stdout (default: text)")
    sub.add_argument("--json-out", metavar="PATH",
                     help="also write the JSON report to PATH "
                          "(CI artifact)")


def _add_query_args(sub):
    sub.add_argument("pgql", help="the PGQL query text")
    sub.add_argument("--semantics", default="homomorphism",
                     choices=[s.value for s in MatchSemantics])
    sub.add_argument("--plan", default=None,
                     choices=[p.value for p in SchedulingPolicy],
                     help="vertex-ordering policy: appearance (query "
                          "text order), selectivity (greedy heuristic), "
                          "or cost (statistics-backed cost model; also "
                          "decides the common-neighbor operator)")
    sub.add_argument("--schedule", action="store_true",
                     help="alias for --plan selectivity (kept for "
                          "compatibility)")
    sub.add_argument("--common-neighbors",
                     action=argparse.BooleanOptionalAction, default=None,
                     help="force the specialized common-neighbor hop "
                          "on/off (default: off, except --plan cost "
                          "where the cost model decides)")
    sub.add_argument("--timeout", type=int, default=None, metavar="TICKS",
                     help="abort the query after TICKS simulated ticks "
                          "(exit code %d, partial metrics printed)"
                          % EXIT_ABORTED)


def _add_graph_args(sub):
    source = sub.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", metavar="PATH",
                        help="graph file (.json or edge list)")
    source.add_argument("--random", metavar="VxE",
                        help="uniform random graph, e.g. 1000x5000")
    source.add_argument("--bsbm", type=int, metavar="PRODUCTS",
                        help="BSBM-like e-commerce graph")
    sub.add_argument("--machines", type=int, default=4)
    sub.add_argument("--workers", type=int, default=4)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--ghost-threshold", type=int, default=None,
                     help="replicate vertices with total degree >= N "
                          "(PGX.D ghost nodes; off by default)")


def load_graph(args):
    if args.graph:
        if args.graph.endswith(".json"):
            return load_json(args.graph)
        return load_edge_list(args.graph)
    if args.random:
        try:
            vertices, edges = (int(part) for part in args.random.split("x"))
        except ValueError:
            raise SystemExit("--random expects VxE, e.g. 1000x5000")
        return uniform_random_graph(vertices, edges, seed=args.seed)
    from repro.workloads import generate_bsbm

    return generate_bsbm(args.bsbm, seed=args.seed).graph


def _build_engine(args, trace=False, **config_overrides):
    """Shared setup of the query/trace subcommands."""
    graph = load_graph(args)
    config = ClusterConfig(num_machines=args.machines,
                           workers_per_machine=args.workers,
                           seed=args.seed,
                           **config_overrides)
    if args.plan is not None:
        scheduling = SchedulingPolicy(args.plan)
    elif args.schedule:
        scheduling = SchedulingPolicy.SELECTIVITY
    else:
        scheduling = SchedulingPolicy.APPEARANCE
    options = PlannerOptions(
        semantics=MatchSemantics(args.semantics),
        scheduling=scheduling,
        use_common_neighbors=args.common_neighbors,
        timeout_ticks=getattr(args, "timeout", None),
        trace=trace,
    )
    if args.ghost_threshold is not None:
        from repro.graph import DistributedGraph

        graph = DistributedGraph.create(
            graph, config.num_machines,
            ghost_threshold=args.ghost_threshold,
        )
    return PgxdAsyncEngine(graph, config), options


def _print_abort(aborted):
    """Report an aborted query: the reason plus whatever partial state
    the simulator managed to collect before giving up."""
    print("query aborted:", aborted.reason)
    if aborted.tick is not None:
        print("at tick  :", aborted.tick)
    if aborted.metrics is not None:
        print("partial  :", aborted.metrics.summary())
    if aborted.detail:
        print("detail   :", aborted.detail)
    if getattr(aborted, "flow_state", None):
        # Scope-aware rendering: under the multi-query service the
        # snapshot covers every co-tenant, each entry tagged with its
        # query_id — so a timeout names who held the budget, not just
        # the global occupancy gauges.
        scoped = any(
            entry.get("query_id") is not None
            for entry in aborted.flow_state
        )
        print("flow     :")
        for entry in aborted.flow_state:
            windows = ",".join(
                "s%d->m%d:%d" % (stage, dest, count)
                for (stage, dest), count in sorted(
                    entry["occupancy"].items()
                )
            )
            scope = ""
            if scoped:
                scope = "[%s] " % (entry.get("query_id") or "-")
            print(
                "  %smachine %d: buffered=%d frames=%d inflight=%d%s"
                % (
                    scope,
                    entry["machine"],
                    entry["buffered_contexts"],
                    entry["live_frames"],
                    entry["inflight_total"],
                    "  windows [%s]" % windows if windows else "",
                )
            )
    return EXIT_ABORTED


def cmd_query(args):
    engine, options = _build_engine(args, trace=args.explain_analyze)
    options.profile = args.explain_analyze
    store = None
    if args.feedback_store:
        from repro.obs.feedback import FeedbackStore

        store = FeedbackStore(args.feedback_store)
        options.feedback = store
        options.profile = True  # record this run's actuals back
    if args.explain:
        plan = engine.plan(args.pgql, options)
        print(plan.describe())
        return 0
    try:
        result = engine.query(args.pgql, options)
    except QueryAborted as aborted:
        return _print_abort(aborted)
    print(result.result_set.pretty(limit=args.limit_print))
    print()
    print("rows     :", len(result.rows))
    print("metrics  :", result.metrics.summary())
    if store is not None and result.plan is not None:
        profile = result.execution_profile()
        if profile is not None:
            recorded = store.record(
                result.plan.query, result.plan.graph,
                getattr(result.plan, "choice", None), profile,
            )
            if recorded is not None:
                store.save()
                print("feedback :", "recorded %s -> %s"
                      % (recorded, args.feedback_store))
    if args.explain_analyze:
        print()
        print(result.explain_analyze())
    return 0


def _parse_stall(spec):
    """Parse a ``M@T+D`` stall spec into a (machine, start, duration)."""
    try:
        machine, rest = spec.split("@")
        start, duration = rest.split("+")
        return int(machine), int(start), int(duration)
    except ValueError:
        raise SystemExit("--stall expects M@T+D, e.g. 1@50+30")


def _parse_crash(spec):
    """Parse a ``M@T`` crash spec into a (machine, tick)."""
    try:
        machine, tick = spec.split("@")
        return int(machine), int(tick)
    except ValueError:
        raise SystemExit("--crash expects M@T, e.g. 2@100")


def cmd_chaos(args):
    overrides = {}
    if args.drop is not None:
        overrides["drop_rate"] = args.drop
    if args.dup is not None:
        overrides["duplicate_rate"] = args.dup
    if args.reorder is not None:
        overrides["reorder_rate"] = args.reorder
    if args.max_delay is not None:
        overrides["max_delay"] = args.max_delay
    if args.stall:
        overrides["stalls"] = tuple(_parse_stall(s) for s in args.stall)
    if args.crash:
        overrides["crashes"] = (_parse_crash(args.crash),)
    chaos_config = profile(args.profile, seed=args.seed, **overrides)

    engine, options = _build_engine(
        args, chaos=chaos_config, reliability=True
    )
    try:
        result = engine.query(args.pgql, options)
    except QueryAborted as aborted:
        return _print_abort(aborted)

    if args.limit_print:
        print(result.result_set.pretty(limit=args.limit_print))
        print()
    print("rows     :", len(result.rows))
    print("metrics  :", result.metrics.summary())
    print("chaos    :", result.metrics.reliability_summary())

    if args.verify:
        clean_engine, clean_options = _build_engine(args)
        clean = clean_engine.query(args.pgql, clean_options)
        if sorted(result.rows) == sorted(clean.rows):
            print("verify   : OK (results identical to fault-free run)")
        else:
            print("verify   : MISMATCH (%d rows under chaos, %d fault-free)"
                  % (len(result.rows), len(clean.rows)))
            return 1
    return 0


def cmd_trace(args):
    engine, options = _build_engine(
        args, trace=True, trace_max_events=args.max_events
    )
    try:
        result = engine.query(args.pgql, options)
    except QueryAborted as aborted:
        return _print_abort(aborted)
    trace = result.trace
    print("rows     :", len(result.rows))
    print("metrics  :", result.metrics.summary())
    print(trace.summary())
    print()
    print(result.explain_analyze())
    print()
    print(trace.profile().summary())
    print()
    print(trace.timeline(width=args.width))
    if args.chrome_out:
        trace.to_chrome_json(args.chrome_out)
        print()
        print("chrome trace written to %s (open in chrome://tracing)"
              % args.chrome_out)
    return 0


def cmd_monitor(args):
    from repro.obs import Telemetry
    from repro.obs.dashboard import Dashboard
    from repro.obs.exporters import prometheus_text, series_csv, \
        series_jsonl
    from repro.pgql import parse_and_validate
    from repro.plan.paths import has_quantified_paths

    engine, options = _build_engine(args)
    query = parse_and_validate(args.pgql)
    dashboard = Dashboard(
        width=args.width,
        interactive=False if args.snapshots else None,
    )
    dashboard.refresh_every = args.refresh or (
        8 if dashboard.interactive else 32
    )
    telemetry = Telemetry(interval=args.interval)
    try:
        if has_quantified_paths(query):
            # Union expansions each carry their own sampler; render the
            # merged series once at the end instead of live.
            options.telemetry = True
            result = engine.query(query, options)
            telemetry = result.telemetry
        else:
            dashboard.attach(telemetry.sampler)
            plan = engine.plan(query, options)
            result = engine.execute_plan(
                plan, telemetry=telemetry, deadline=options.timeout_ticks
            )
    except QueryAborted as aborted:
        code = _print_abort(aborted)
        if telemetry.sampler.num_samples:
            print(telemetry.summary())
        return code
    dashboard.final(telemetry.sampler, telemetry.meta.get("ticks", 0))
    print()
    print("rows     :", len(result.rows))
    print("metrics  :", result.metrics.summary())
    print(telemetry.summary())
    if args.prom_out:
        with open(args.prom_out, "w") as handle:
            handle.write(prometheus_text(telemetry.registry))
        print("prometheus text written to", args.prom_out)
    if args.series_out:
        exporter = (
            series_csv if args.series_out.endswith(".csv") else series_jsonl
        )
        with open(args.series_out, "w") as handle:
            handle.write(exporter(telemetry.sampler))
        print("series written to", args.series_out)
    return 0


def cmd_bench(args):
    from repro import bench

    bulk_kernels = not args.no_bulk_kernels
    if args.profile:
        # Profiling lives here (not in repro.bench): the bench module is
        # inside the RPR001 determinism scope, where wall-clock-adjacent
        # imports are off limits.
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        doc = bench.run_bench(tag=args.tag, quick=args.quick,
                              seed=args.seed, progress=print,
                              bulk_kernels=bulk_kernels)
        profiler.disable()
        print()
        print("profile (top 20 by cumulative time):")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        doc = bench.run_bench(tag=args.tag, quick=args.quick,
                              seed=args.seed, progress=print,
                              bulk_kernels=bulk_kernels)
    out = args.out or ("BENCH_%s.json" % args.tag)
    bench.write_bench(doc, out)
    print("wrote", out)
    for key, record in sorted(doc["workloads"].items()):
        print(
            "  %-28s ticks=%-7d ops=%-9d rows=%-6d peak_buf=%d/%d "
            "wall=%.3fs tput=%.0f ops/s"
            % (
                key,
                record["ticks"],
                record["total_ops"],
                record["rows"],
                record["peak_buffered_contexts"],
                record["budget"],
                record["wall_time_seconds"],
                record.get("throughput_ops_per_sec", 0.0),
            )
        )
    if args.compare:
        baseline = bench.load_bench(args.compare)
        regressions, lines = bench.compare(doc, baseline,
                                           threshold=args.threshold)
        print()
        print("compare vs %s (threshold %.0f%%):"
              % (args.compare, args.threshold))
        for line in lines:
            print(" ", line)
        if regressions:
            print()
            print("REGRESSION: %d gated metric(s) worse than baseline"
                  % len(regressions))
            return EXIT_REGRESSION
        print()
        print("OK: no gated metric regressed past the threshold")
    return 0


def _lint_rules(args):
    """Instantiate the (possibly ``--select``-ed) rule objects."""
    from repro.analysis import default_rules, rule_by_id

    if args.select:
        rules = []
        for rule_id in args.select.replace(",", " ").split():
            rule = rule_by_id(rule_id)
            if rule is None:
                raise SystemExit(
                    "repro lint: unknown rule in --select: %s "
                    "(rules: RPR001..RPR009)" % rule_id
                )
            rules.append(rule)
    else:
        rules = default_rules()
    if args.all_scopes:
        for rule in rules:
            rule.scope = ()
    return rules


def _lint_severities(args):
    """Parse repeated ``--severity RPR00N=level`` overrides."""
    from repro.analysis import SEVERITIES

    severities = {}
    for spec in args.severity:
        rule_id, _, level = spec.partition("=")
        if level not in SEVERITIES:
            raise SystemExit(
                "repro lint: bad --severity %r (expected "
                "RPR00N=warning or RPR00N=error)" % spec
            )
        severities[rule_id.strip()] = level
    return severities


def _diff_paths(ref):
    """Absolute paths of files changed vs *ref* (``--diff``)."""
    import subprocess

    try:
        output = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise SystemExit(
            "repro lint: cannot diff against %r: %s"
            % (ref, detail.strip())
        )
    return [os.path.abspath(line) for line in output.splitlines() if line]


def cmd_lint(args):
    from repro.analysis import (
        analyze,
        discover_baseline,
        explain,
        json_report,
        prune_baseline,
        sarif_report,
        text_report,
        write_baseline,
    )

    if args.explain:
        text = explain(args.explain)
        if text is None:
            print("unknown rule: %s (rules: RPR001..RPR009)"
                  % args.explain)
            return 2
        print(text)
        return 0

    paths = args.paths or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        raise SystemExit(
            "repro lint: no such path: %s (run from the repository "
            "root, or name the paths to analyze)" % ", ".join(missing)
        )

    rules = _lint_rules(args)
    severities = _lint_severities(args)
    only = _diff_paths(args.diff) if args.diff else None

    if args.write_baseline:
        result = analyze(paths, rules=rules, severities=severities)
        count = write_baseline(result.findings, args.write_baseline)
        print("wrote %d baseline entr%s to %s — review each one and "
              "replace the placeholder comment before checking it in"
              % (count, "y" if count == 1 else "ies", args.write_baseline))
        return 0

    baseline_path = None
    if not args.no_baseline:
        baseline_path = args.baseline or discover_baseline(paths)
    result = analyze(paths, rules=rules, baseline_path=baseline_path,
                     severities=severities, only=only)
    if args.select:
        # A partial rule selection can't tell stale entries (for rules
        # that didn't run) from genuinely dead ones.
        result.stale_baseline = []

    if args.prune_baseline:
        if baseline_path is None:
            raise SystemExit("repro lint: --prune-baseline needs a "
                             "baseline file (none found)")
        if only is not None or args.select:
            raise SystemExit("repro lint: --prune-baseline needs a "
                             "full scan (no --diff / --select): a "
                             "partial scan cannot tell stale entries "
                             "from unscanned ones")
        dropped = prune_baseline(baseline_path, result.stale_baseline)
        print("pruned %d stale entr%s from %s"
              % (len(dropped), "y" if len(dropped) == 1 else "ies",
                 baseline_path))
        for entry in dropped:
            print("  dropped: %s" % entry.describe())
        return 0

    if args.format == "json":
        print(json_report(result))
    elif args.format == "sarif":
        print(sarif_report(result))
    else:
        if baseline_path is not None:
            print("baseline : %s" % baseline_path)
        if only is not None:
            print("diff     : %d changed file%s vs %s"
                  % (len(only), "" if len(only) == 1 else "s", args.diff))
        print(text_report(result))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(json_report(result))
            handle.write("\n")
    if args.sarif_out:
        with open(args.sarif_out, "w") as handle:
            handle.write(sarif_report(result))
            handle.write("\n")
    return EXIT_LINT if result.fails(args.fail_on) else 0


def _build_cluster_engine(args, **config_overrides):
    """Engine setup for the service subcommands (no planner options)."""
    graph = load_graph(args)
    config = ClusterConfig(num_machines=args.machines,
                           workers_per_machine=args.workers,
                           seed=args.seed,
                           **config_overrides)
    if args.ghost_threshold is not None:
        from repro.graph import DistributedGraph

        graph = DistributedGraph.create(
            graph, config.num_machines,
            ghost_threshold=args.ghost_threshold,
        )
    return PgxdAsyncEngine(graph, config)


def _parse_cancel(spec):
    """Parse an ``N@T`` cancellation spec into (query index, tick)."""
    try:
        index, tick = spec.split("@")
        return int(index), int(tick)
    except ValueError:
        raise SystemExit("--cancel expects N@T, e.g. 1@500")


def cmd_serve(args):
    from repro.service import QueryService, ServiceConfig

    engine = _build_cluster_engine(args)
    service = QueryService(engine, ServiceConfig(
        max_concurrent=args.slots,
        scope_window=args.scope_window,
        telemetry=True,
    ))
    handles = []
    for index, pgql in enumerate(args.queries):
        priority = (
            args.priority[index] if index < len(args.priority) else 1
        )
        handles.append(service.submit(
            pgql, priority=priority, deadline=args.timeout
        ))
    cancels = sorted(
        (_parse_cancel(spec) for spec in args.cancel),
        key=lambda pair: pair[1],
    )
    pending_cancels = list(cancels)
    while True:
        while pending_cancels and pending_cancels[0][1] <= service.now:
            index, _tick = pending_cancels.pop(0)
            if index >= len(handles):
                raise SystemExit(
                    "--cancel index %d out of range (%d queries)"
                    % (index, len(handles))
                )
            handles[index].cancel()
        if not service.step():
            break
    print("scope window :", service.scope_config.flow_control_window,
          "(machine-wide %d across %d slots)"
          % (engine.config.flow_control_window, args.slots))
    print("global ticks :", service.now)
    print("peak active  :", service.peak_active)
    print()
    print("%-6s %-10s %3s %8s %8s %8s %8s"
          % ("query", "status", "pri", "wait", "latency", "vticks",
             "rows"))
    for record in service.stats():
        print("%-6s %-10s %3d %8s %8s %8d %8s" % (
            record["query_id"],
            record["status"],
            record["priority"],
            record["admission_wait"] if record["admission_wait"]
            is not None else "-",
            record["latency"] if record["latency"] is not None else "-",
            record["virtual_ticks"],
            record["rows"] if record["rows"] is not None else "-",
        ))
    aborted = [
        record for record in service.stats()
        if record["status"] == "aborted"
    ]
    for record in aborted:
        scope = service.scope(record["query_id"])
        if scope.aborted is not None:
            print()
            print("abort [%s]:" % record["query_id"])
            _print_abort(scope.aborted)
    return EXIT_ABORTED if aborted else 0


def cmd_traffic(args):
    from repro.service import (
        TrafficConfig,
        run_traffic,
        saturation_sweep,
        verify_serial_parity,
    )

    overrides = {}
    if args.chaos:
        overrides["chaos"] = profile(args.chaos, seed=args.seed)
        overrides["reliability"] = True
    engine = _build_cluster_engine(args, **overrides)
    traffic = TrafficConfig(
        arrivals=args.arrivals,
        mean_interarrival=args.gap,
        seed=args.seed,
        slots=args.slots,
        scope_window=args.scope_window,
        query_edges=args.query_edges,
        distinct_queries=args.distinct,
        deadline=args.deadline,
        telemetry=True,
    )

    if args.verify_serial:
        concurrent, serial, mismatches = verify_serial_parity(
            engine, traffic
        )
        report = concurrent
    else:
        report = run_traffic(engine, traffic)

    print("traffic  :", report.summary())
    print("window   : scope=%d of machine-wide %d (%d slots)" % (
        report.service.scope_config.flow_control_window,
        engine.config.flow_control_window,
        args.slots,
    ))
    if args.chaos:
        print("chaos    : profile=%s (reliability on)" % args.chaos)
    print()
    print("%-6s %-10s %8s %8s %8s %8s"
          % ("query", "status", "wait", "latency", "vticks", "rows"))
    for record in report.records:
        print("%-6s %-10s %8s %8s %8d %8s" % (
            record["query_id"],
            record["status"],
            record["admission_wait"] if record["admission_wait"]
            is not None else "-",
            record["latency"] if record["latency"] is not None else "-",
            record["virtual_ticks"],
            record["rows"] if record["rows"] is not None else "-",
        ))

    if args.sweep:
        try:
            gaps = tuple(int(part) for part in args.sweep.split(","))
        except ValueError:
            raise SystemExit("--sweep expects G1,G2,..., e.g. 256,64,16")
        print()
        print("saturation curve (offered load sweep):")
        print("%8s %10s %8s %8s %8s %12s %6s" % (
            "gap", "completed", "p50", "p95", "p99", "done/kilotick",
            "peak",
        ))
        for gap, point in saturation_sweep(engine, traffic, gaps=gaps):
            print("%8d %10d %8s %8s %8s %12.2f %6d" % (
                gap,
                point.completed,
                point.percentile(50) if point.latencies else "-",
                point.percentile(95) if point.latencies else "-",
                point.percentile(99) if point.latencies else "-",
                point.throughput_per_kilotick,
                point.peak_active,
            ))

    if args.verify_serial:
        print()
        if mismatches:
            print("serial parity: MISMATCH (%d)" % len(mismatches))
            for line in mismatches:
                print("  " + line)
            return 1
        print("serial parity: OK — %d queries row- and metric-identical "
              "to the one-at-a-time run (serial ticks=%d)"
              % (serial.completed + serial.aborted + serial.cancelled,
                 serial.total_ticks))
    return 0


def cmd_stats(args):
    graph = load_graph(args)
    stats = graph.statistics()
    if args.json:
        print("note: --json is deprecated; use --format json",
              file=sys.stderr)
    if args.json or args.format == "json":
        print(stats.to_json())
    else:
        print(stats.table(top=args.top))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(stats.to_json())
            handle.write("\n")
    if args.out:
        from repro.graph import save_json

        save_json(graph, args.out, include_stats=True)
        print()
        print("graph + statistics written to", args.out)
    return 0


def cmd_feedback(args):
    import json

    from repro.obs.feedback import FeedbackStore, q_error

    if not os.path.exists(args.store):
        raise SystemExit("repro feedback: no such store: %s" % args.store)
    store = FeedbackStore(args.store)
    doc = store.to_dict()
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print("feedback store: %s (%d quer%s)"
              % (args.store, len(store), "y" if len(store) == 1 else "ies"))
        for fingerprint, entry in store.entries():
            print()
            print("%s  %s" % (fingerprint, entry["pgql"]))
            print("  order=%s  common_neighbors=%s"
                  % (entry["order"], entry["use_common_neighbors"]))
            for row in entry["operators"]:
                print("  %-46s est~%-10.2f actual=%-8d q=%.2f"
                      % (row["op"], row["estimated"], row["actual"],
                         q_error(row["estimated"], row["actual"])))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def cmd_analyze(args):
    from repro.analytics import (
        BspEngine,
        DegreeCentrality,
        PageRank,
        SingleSourceShortestPaths,
        TriangleCount,
        WeaklyConnectedComponents,
    )

    graph = load_graph(args)
    config = ClusterConfig(num_machines=args.machines,
                           workers_per_machine=args.workers)
    engine = BspEngine(graph, config)

    programs = {
        "pagerank": lambda: PageRank(iterations=args.iterations),
        "wcc": WeaklyConnectedComponents,
        "sssp": lambda: SingleSourceShortestPaths(args.source),
        "triangles": TriangleCount,
        "degree": DegreeCentrality,
    }
    result = engine.run(programs[args.algorithm]())

    if args.algorithm == "triangles":
        print("triangles:", sum(result.values.values()))
    elif args.algorithm == "wcc":
        labels = set(result.values.values())
        print("components:", len(labels))
    else:
        ranked = sorted(result.values.items(), key=lambda kv: kv[1],
                        reverse=(args.algorithm != "sssp"))
        print("top %d vertices:" % args.top)
        for vertex, value in ranked[: args.top]:
            print("  %8d  %s" % (vertex, value))
    print()
    print("supersteps:", result.supersteps)
    print("metrics   :", result.metrics.summary())
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "query":
        return cmd_query(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "monitor":
        return cmd_monitor(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "traffic":
        return cmd_traffic(args)
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "feedback":
        return cmd_feedback(args)
    return cmd_analyze(args)


if __name__ == "__main__":
    sys.exit(main())
