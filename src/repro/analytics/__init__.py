"""PGX.D-style computational graph analytics (bulk-synchronous model).

The paper's substrate, PGX.D, is a *computational* graph analysis
engine; PGX.D/Async layers pattern matching on top of its task and data
management.  This subpackage supplies that computational side on the
same simulated cluster: a Pregel-style BSP engine plus the classic
algorithms (PageRank, SSSP, connected components, triangle counting).
"""

from repro.analytics.algorithms import (
    DegreeCentrality,
    HITS,
    KCoreDecomposition,
    LocalClusteringCoefficient,
    PageRank,
    SingleSourceShortestPaths,
    TriangleCount,
    WeaklyConnectedComponents,
)
from repro.analytics.bsp import (
    AnalyticsResult,
    BspEngine,
    BspMachine,
    ComputeContext,
    VertexProgram,
)

__all__ = [
    "BspEngine",
    "BspMachine",
    "VertexProgram",
    "ComputeContext",
    "AnalyticsResult",
    "PageRank",
    "SingleSourceShortestPaths",
    "WeaklyConnectedComponents",
    "TriangleCount",
    "HITS",
    "KCoreDecomposition",
    "LocalClusteringCoefficient",
    "DegreeCentrality",
]
