"""PGX.D's computational model: bulk-synchronous vertex programs.

PGX.D — the substrate PGX.D/Async extends — "implements a relaxed
version of the bulk-synchronous model, where graph algorithms proceed
with global steps ... suitable for algorithms, such as PageRank, that
iteratively traverse the (whole) graph" (paper §2).  This module
provides that computational side on the same simulated cluster the
pattern-matching runtime uses: a Pregel-style vertex-centric BSP engine
with supersteps, message combining, vote-to-halt semantics, and global
aggregators.

Superstep barrier: after computing all its active vertices, a machine
flushes its per-destination message buffers and then broadcasts a
``StepDone`` control message.  Because the network is FIFO per channel,
a machine that has received every peer's ``StepDone`` for superstep *s*
has necessarily received all of their superstep-(s+1) messages too —
the same ordering argument the pattern-matching termination protocol
uses.  The computation halts after a superstep in which no vertex
remained active and no messages were sent.
"""

from collections import defaultdict

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import MachineMetrics
from repro.cluster.simulator import Simulator
from repro.errors import RuntimeFault
from repro.graph.distributed import DistributedGraph


class VertexProgram:
    """Base class for vertex-centric BSP algorithms.

    Subclasses implement :meth:`init` and :meth:`compute`.  During
    ``compute`` the program interacts with the runtime through the
    :class:`ComputeContext` (send messages, vote to halt, read
    adjacency, read the previous superstep's global aggregate).
    """

    #: Optional commutative/associative message combiner applied on the
    #: sender: a callable ``(value, value) -> value`` (e.g. ``min`` or
    #: ``operator.add``), or None to deliver every message individually.
    combiner = None

    #: Upper bound on supersteps (safety net; programs normally halt).
    max_supersteps = 100

    def init(self, ctx, vertex):
        """Return the initial state of *vertex* (superstep -1)."""
        raise NotImplementedError

    def compute(self, ctx, vertex, state, messages):
        """One superstep for one vertex; returns the new state.

        *messages* is the (possibly combined) list of values sent to
        this vertex in the previous superstep.  Call ``ctx.send`` to
        message other vertices and ``ctx.vote_to_halt()`` to
        deactivate; a vertex reactivates when it receives a message.
        """
        raise NotImplementedError

    def aggregate(self, state):
        """Optional: this vertex's contribution to the global aggregate.

        Contributions are summed across all vertices each superstep and
        exposed as ``ctx.previous_aggregate`` in the next one.
        """
        return 0

    def finish(self, state):
        """Map the final state to the reported per-vertex value."""
        return state


class ComputeContext:
    """The API surface a vertex program sees during ``compute``."""

    __slots__ = ("_machine", "superstep", "previous_aggregate", "_vertex",
                 "_halted")

    def __init__(self, machine):
        self._machine = machine
        self.superstep = 0
        self.previous_aggregate = 0
        self._vertex = None
        self._halted = False

    # -- adjacency (local partition: locality discipline enforced) -----
    def out_neighbors(self):
        dst, _ = self._machine.local.out_edges(self._vertex)
        return dst

    def in_neighbors(self):
        src, _ = self._machine.local.in_edges(self._vertex)
        return src

    def out_edges(self):
        return self._machine.local.out_edges(self._vertex)

    def out_degree(self):
        return self._machine.local.out_degree(self._vertex)

    def num_vertices(self):
        return self._machine.graph.num_vertices

    def edge_prop(self, name, edge):
        return self._machine.local.edge_prop(name, edge)

    def vertex_prop(self, name):
        return self._machine.local.vertex_prop(name, self._vertex)

    # -- messaging ------------------------------------------------------
    def send(self, target, value):
        self._machine.queue_message(target, value)

    def vote_to_halt(self):
        self._halted = True


class StepMessages:
    """Bulk of BSP messages for one destination machine."""

    __slots__ = ("superstep", "entries")

    def __init__(self, superstep, entries):
        self.superstep = superstep
        self.entries = entries  # tuple of (vertex, value)

    def __len__(self):
        return len(self.entries)


class StepDone:
    """Barrier vote: sender finished *superstep*."""

    __slots__ = ("superstep", "active", "sent", "aggregate")

    def __init__(self, superstep, active, sent, aggregate):
        self.superstep = superstep
        self.active = active
        self.sent = sent
        self.aggregate = aggregate


class BspMachine:
    """One simulated machine of the BSP engine."""

    def __init__(self, program, dist_graph, machine_id, api, config):
        self.program = program
        self.graph = dist_graph.graph
        self.local = dist_graph.local(machine_id)
        self.machine_id = machine_id
        self.api = api
        self.config = config
        self.metrics = MachineMetrics()

        self.ctx = ComputeContext(self)
        self.superstep = 0
        self.states = {}
        self.halted = set()
        self._local_vertices = [int(v) for v in self.local.local_vertices()]
        #: Inboxes: superstep -> vertex -> list of values.
        self._inbox = defaultdict(lambda: defaultdict(list))
        #: Outgoing buffers for the *next* superstep, per machine.
        self._outgoing = defaultdict(list)
        self._pending = None  # vertices still to compute this superstep
        self._initialized = False
        self._flushed = False
        self._done_votes = {}  # superstep -> list of StepDone
        self._sent_count = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Simulator interface
    # ------------------------------------------------------------------
    def on_message(self, src, payload):
        if isinstance(payload, StepMessages):
            inbox = self._inbox[payload.superstep]
            combiner = self.program.combiner
            for vertex, value in payload.entries:
                if combiner is not None and inbox[vertex]:
                    inbox[vertex][0] = combiner(inbox[vertex][0], value)
                else:
                    inbox[vertex].append(value)
            self.metrics.buffered_delta(len(payload.entries))
        elif isinstance(payload, StepDone):
            self._done_votes.setdefault(payload.superstep, []).append(payload)
        else:
            raise RuntimeFault("unknown BSP payload: %r" % (payload,))

    def worker_step(self, worker_index, budget):
        if self._finished:
            return 0
        ops = 0
        if not self._initialized:
            ops += self._initialize(budget)
            if not self._initialized or ops >= budget:
                self.metrics.ops += ops
                return ops
        while ops < budget:
            if self._pending:
                ops += self._compute_one()
                continue
            if not self._flushed:
                ops += self._flush_and_vote()
                continue
            if self._try_advance():
                continue
            break  # waiting on the barrier
        self.metrics.ops += ops
        if ops == 0:
            self.metrics.idle_ticks += 1
        return ops

    def is_finished(self):
        return self._finished

    # ------------------------------------------------------------------
    def _initialize(self, budget):
        ops = 0
        start = getattr(self, "_init_pos", 0)
        for index in range(start, len(self._local_vertices)):
            vertex = self._local_vertices[index]
            self.ctx._vertex = vertex
            self.states[vertex] = self.program.init(self.ctx, vertex)
            ops += 1
            if ops >= budget:
                self._init_pos = index + 1
                return ops
        self._initialized = True
        self._pending = list(self._local_vertices)
        return ops

    def _compute_one(self):
        vertex = self._pending.pop()
        inbox = self._inbox[self.superstep]
        messages = inbox.pop(vertex, [])
        if messages:
            self.metrics.buffered_delta(-len(messages))
            self.halted.discard(vertex)
        if vertex in self.halted:
            return 1
        ctx = self.ctx
        ctx._vertex = vertex
        ctx._halted = False
        ctx.superstep = self.superstep
        self.states[vertex] = self.program.compute(
            ctx, vertex, self.states[vertex], messages
        )
        if ctx._halted:
            self.halted.add(vertex)
        return 1 + len(messages)

    def queue_message(self, target, value):
        """Route a message to *target* for the next superstep."""
        owner = self.local.owner(target)
        self._sent_count += 1
        if owner == self.machine_id:
            inbox = self._inbox[self.superstep + 1]
            combiner = self.program.combiner
            if combiner is not None and inbox[target]:
                inbox[target][0] = combiner(inbox[target][0], value)
            else:
                inbox[target].append(value)
            return
        buffer = self._outgoing[owner]
        buffer.append((target, value))
        if len(buffer) >= self.config.bulk_message_size:
            self._ship(owner)

    def _ship(self, owner):
        buffer = self._outgoing[owner]
        if not buffer:
            return
        message = StepMessages(self.superstep + 1, tuple(buffer))
        del buffer[:]
        self.api.send(owner, message, size=len(message))
        self.metrics.work_messages_sent += 1
        self.metrics.contexts_sent += len(message)

    def _flush_and_vote(self):
        ops = 0
        for owner in sorted(self._outgoing):
            if self._outgoing[owner]:
                self._ship(owner)
                ops += self.config.message_send_cost
        aggregate = sum(
            self.program.aggregate(state) for state in self.states.values()
        )
        active = sum(
            1 for vertex in self._local_vertices if vertex not in self.halted
        )
        vote = StepDone(self.superstep, active, self._sent_count, aggregate)
        self._done_votes.setdefault(self.superstep, []).append(vote)
        for machine in range(self.config.num_machines):
            if machine != self.machine_id:
                self.api.send(machine, StepDone(
                    self.superstep, active, self._sent_count, aggregate
                ))
                self.metrics.control_messages_sent += 1
        self._sent_count = 0
        self._flushed = True
        return ops + 1

    def _try_advance(self):
        votes = self._done_votes.get(self.superstep, [])
        if len(votes) < self.config.num_machines:
            return False
        total_active = sum(vote.active for vote in votes)
        total_sent = sum(vote.sent for vote in votes)
        total_aggregate = sum(vote.aggregate for vote in votes)
        finished_step = self.superstep
        if (total_active == 0 and total_sent == 0) or \
                finished_step + 1 >= self.program.max_supersteps:
            self._finished = True
            return False
        self.superstep += 1
        self.ctx.previous_aggregate = total_aggregate
        self._flushed = False
        # Vertices with pending messages plus still-active ones compute.
        inbox = self._inbox[self.superstep]
        pending = set(inbox.keys())
        pending.update(
            vertex for vertex in self._local_vertices
            if vertex not in self.halted
        )
        self._pending = sorted(pending, reverse=True)
        return True

    def final_values(self):
        return {
            vertex: self.program.finish(state)
            for vertex, state in self.states.items()
        }


class AnalyticsResult:
    """Outcome of a BSP computation."""

    def __init__(self, values, metrics, supersteps):
        self.values = values          # dict vertex -> value
        self.metrics = metrics
        self.supersteps = supersteps

    def as_list(self, num_vertices):
        return [self.values.get(vertex) for vertex in range(num_vertices)]

    def __repr__(self):
        return "AnalyticsResult(vertices=%d, supersteps=%d, ticks=%d)" % (
            len(self.values), self.supersteps, self.metrics.ticks,
        )


class BspEngine:
    """PGX.D-style bulk-synchronous analytics over the simulated cluster.

    Shares the cluster substrate (and optionally the partitioned graph)
    with :class:`~repro.runtime.engine.PgxdAsyncEngine`, mirroring how
    PGX.D/Async coexists with PGX.D's computational workloads.
    """

    def __init__(self, graph, config=None, partitioner=None):
        self.config = config or ClusterConfig()
        if isinstance(graph, DistributedGraph):
            self.dist_graph = graph
        else:
            self.dist_graph = DistributedGraph.create(
                graph, self.config.num_machines, partitioner=partitioner
            )
        self.graph = self.dist_graph.graph

    def run(self, program):
        """Execute *program* to convergence; returns AnalyticsResult."""
        simulator = Simulator(self.config)
        machines = [
            BspMachine(program, self.dist_graph, machine_id,
                       simulator.api_for(machine_id), self.config)
            for machine_id in range(self.config.num_machines)
        ]
        simulator.attach(machines)
        metrics = simulator.run()
        values = {}
        for machine in machines:
            values.update(machine.final_values())
        supersteps = machines[0].superstep + 1
        return AnalyticsResult(values, metrics, supersteps)
