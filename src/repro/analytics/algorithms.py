"""Vertex programs for the PGX.D-style BSP engine.

The algorithms the paper's §1-2 name as the computational side of graph
analysis (PageRank, shortest paths) plus the triangle listing of
Sevenich et al. [25], which the common-neighbor hop engine (§5) exists
to serve.
"""

import operator

from repro.analytics.bsp import VertexProgram


class PageRank(VertexProgram):
    """Classic synchronous PageRank with dangling-mass redistribution.

    Runs a fixed number of iterations (like PGX's default) or stops
    early when the global residual falls under *tolerance*.
    """

    combiner = staticmethod(operator.add)

    def __init__(self, damping=0.85, iterations=20, tolerance=None):
        self.damping = damping
        self.iterations = iterations
        self.tolerance = tolerance
        self.max_supersteps = iterations + 1

    def init(self, ctx, vertex):
        rank = 1.0 / ctx.num_vertices()
        return (rank, 0.0)  # (rank, residual contribution)

    def compute(self, ctx, vertex, state, messages):
        rank, _residual = state
        if ctx.superstep > 0:
            incoming = sum(messages)
            n = ctx.num_vertices()
            new_rank = (1.0 - self.damping) / n + self.damping * incoming
            residual = abs(new_rank - rank)
            rank = new_rank
        else:
            residual = 1.0
        if self.tolerance is not None and ctx.superstep > 0 and \
                ctx.previous_aggregate < self.tolerance:
            ctx.vote_to_halt()
            return (rank, 0.0)
        if ctx.superstep < self.iterations:
            degree = ctx.out_degree()
            if degree:
                share = rank / degree
                for target in ctx.out_neighbors():
                    ctx.send(int(target), share)
            else:
                # Dangling vertices spread their rank uniformly; modeled
                # by sending to themselves to keep mass conserved (the
                # standard simplification for vertex-centric PageRank).
                ctx.send(vertex, rank)
        else:
            ctx.vote_to_halt()
        return (rank, residual)

    def aggregate(self, state):
        return state[1]

    def finish(self, state):
        return state[0]


class SingleSourceShortestPaths(VertexProgram):
    """SSSP by distributed Bellman-Ford relaxation.

    Edge weights come from *weight_prop* (or 1.0 when None).  Unreached
    vertices finish with ``inf``.
    """

    combiner = staticmethod(min)
    max_supersteps = 10_000

    def __init__(self, source, weight_prop=None):
        self.source = source
        self.weight_prop = weight_prop

    def init(self, ctx, vertex):
        return 0.0 if vertex == self.source else float("inf")

    def compute(self, ctx, vertex, state, messages):
        candidate = min(messages) if messages else float("inf")
        best = min(state, candidate)
        if best < state or (ctx.superstep == 0 and vertex == self.source):
            dst, edge_ids = ctx.out_edges()
            for target, edge in zip(dst, edge_ids):
                weight = (
                    ctx.edge_prop(self.weight_prop, int(edge))
                    if self.weight_prop
                    else 1.0
                )
                ctx.send(int(target), best + weight)
        ctx.vote_to_halt()
        return best


class WeaklyConnectedComponents(VertexProgram):
    """Label propagation of the minimum vertex id over both directions."""

    combiner = staticmethod(min)
    max_supersteps = 10_000

    def init(self, ctx, vertex):
        return vertex

    def compute(self, ctx, vertex, state, messages):
        candidate = min(messages) if messages else state
        best = min(state, candidate)
        if best < state or ctx.superstep == 0:
            for target in ctx.out_neighbors():
                ctx.send(int(target), best)
            for target in ctx.in_neighbors():
                ctx.send(int(target), best)
        ctx.vote_to_halt()
        return best


class TriangleCount(VertexProgram):
    """Distributed triangle counting after Sevenich et al. [25].

    The graph is treated as undirected and simple.  Edges are oriented
    from the lower to the higher vertex id; in superstep 0 every vertex
    sends its higher-id neighbor set to each of those neighbors, which
    then intersect it with their own higher-id neighborhood.  Each
    triangle is counted exactly once (at its middle vertex).  The total
    is the sum over vertices (``AnalyticsResult.values``) or the final
    global aggregate.
    """

    max_supersteps = 3

    def init(self, ctx, vertex):
        return 0

    def _higher_neighbors(self, ctx, vertex):
        neighbors = set()
        for target in ctx.out_neighbors():
            if int(target) > vertex:
                neighbors.add(int(target))
        for target in ctx.in_neighbors():
            if int(target) > vertex:
                neighbors.add(int(target))
        return neighbors

    def compute(self, ctx, vertex, state, messages):
        if ctx.superstep == 0:
            higher = self._higher_neighbors(ctx, vertex)
            payload = tuple(sorted(higher))
            for target in sorted(higher):
                ctx.send(target, payload)
            ctx.vote_to_halt()
            return 0
        mine = self._higher_neighbors(ctx, vertex)
        count = state
        for payload in messages:
            for candidate in payload:
                if candidate in mine:
                    count += 1
        ctx.vote_to_halt()
        return count

    def aggregate(self, state):
        return state


class HITS(VertexProgram):
    """Hyperlink-Induced Topic Search (hub and authority scores).

    Alternating power iteration: authorities accumulate hub scores over
    in-edges, hubs accumulate authority scores over out-edges, with a
    global L2 normalization via the aggregator each round.
    """

    combiner = staticmethod(operator.add)

    def __init__(self, iterations=20):
        self.iterations = iterations
        self.max_supersteps = 2 * iterations + 1

    def init(self, ctx, vertex):
        return (1.0, 1.0)  # (hub, authority)

    def compute(self, ctx, vertex, state, messages):
        hub, authority = state
        step = ctx.superstep
        norm = ctx.previous_aggregate ** 0.5 if step > 0 else 1.0
        if step >= 2 * self.iterations:
            ctx.vote_to_halt()
            if norm:
                if step % 2 == 1:
                    authority = sum(messages) / norm if messages else 0.0
            return (hub, authority)
        if step % 2 == 0:
            # Authority phase result arrives next step; send hub scores.
            if step > 0 and norm:
                hub = (sum(messages) / norm) if messages else 0.0
            for target in ctx.out_neighbors():
                ctx.send(int(target), hub)
        else:
            if norm:
                authority = (sum(messages) / norm) if messages else 0.0
            for target in ctx.in_neighbors():
                ctx.send(int(target), authority)
        return (hub, authority)

    def aggregate(self, state):
        # Normalization constant for the score updated last step.
        return state[0] ** 2 + state[1] ** 2

    def finish(self, state):
        return state


class KCoreDecomposition(VertexProgram):
    """Iterative peeling: each vertex converges to its coreness.

    Every vertex maintains an estimate (initialized to its undirected
    degree) and repeatedly recomputes: the largest k such that at least
    k neighbors have an estimate of at least k — a classic distributed
    k-core algorithm; monotone decreasing, so it converges.
    """

    max_supersteps = 10_000

    def init(self, ctx, vertex):
        return None  # filled in at superstep 0

    def _neighbors(self, ctx, vertex):
        neighbors = set()
        for target in ctx.out_neighbors():
            if int(target) != vertex:
                neighbors.add(int(target))
        for target in ctx.in_neighbors():
            if int(target) != vertex:
                neighbors.add(int(target))
        return sorted(neighbors)

    def compute(self, ctx, vertex, state, messages):
        neighbors = self._neighbors(ctx, vertex)
        if ctx.superstep == 0:
            estimate = len(neighbors)
            known = {}
        else:
            estimate, known = state
            for neighbor, value in messages:
                known[neighbor] = min(value, known.get(neighbor, value))
        # Largest k with >= k neighbors whose estimate >= k.
        values = sorted(
            (known.get(neighbor, len(neighbors) + 1)
             for neighbor in neighbors),
            reverse=True,
        )
        new_estimate = 0
        for index, value in enumerate(values, start=1):
            if value >= index:
                new_estimate = index
            else:
                break
        new_estimate = min(new_estimate, estimate)
        if ctx.superstep == 0 or new_estimate < estimate:
            for neighbor in neighbors:
                ctx.send(neighbor, (vertex, new_estimate))
        ctx.vote_to_halt()
        return (new_estimate, known)

    def finish(self, state):
        return state[0]


class LocalClusteringCoefficient(VertexProgram):
    """Per-vertex clustering coefficient on the underlying simple graph.

    Reuses the neighbor-set exchange of triangle counting: each vertex
    ships its neighbor set to its neighbors, which count how many of
    their own neighbors appear in it; the coefficient is the closed
    wedge fraction ``2T / (d * (d - 1))``.
    """

    max_supersteps = 3

    def init(self, ctx, vertex):
        return 0.0

    def _neighbors(self, ctx, vertex):
        neighbors = set()
        for target in ctx.out_neighbors():
            if int(target) != vertex:
                neighbors.add(int(target))
        for target in ctx.in_neighbors():
            if int(target) != vertex:
                neighbors.add(int(target))
        return neighbors

    def compute(self, ctx, vertex, state, messages):
        mine = self._neighbors(ctx, vertex)
        if ctx.superstep == 0:
            payload = tuple(sorted(mine))
            for target in sorted(mine):
                ctx.send(target, payload)
            ctx.vote_to_halt()
            return 0.0
        links = 0
        for payload in messages:
            for candidate in payload:
                if candidate in mine:
                    links += 1
        degree = len(mine)
        ctx.vote_to_halt()
        if degree < 2:
            return 0.0
        # Each triangle edge is reported twice (once per neighbor pair).
        return links / (degree * (degree - 1))


class DegreeCentrality(VertexProgram):
    """Trivial one-superstep program: out-degree per vertex.

    Mostly useful as the smallest possible vertex program in tests and
    as a template for custom analytics.
    """

    max_supersteps = 1

    def init(self, ctx, vertex):
        return 0

    def compute(self, ctx, vertex, state, messages):
        ctx.vote_to_halt()
        return ctx.out_degree()
