"""Checked-in baseline of reviewed, deliberately-allowed findings.

A baseline entry whitelists every finding matching its fingerprint —
``(rule, path, symbol, pattern)`` — with **no line numbers**, so
unrelated edits to a file never invalidate it.  Every entry must carry a
non-empty ``comment`` explaining why the site is allowed: the baseline
is a reviewed whitelist, not a landfill.  Entries that no longer match
anything are reported as *stale* so the whitelist shrinks as code
improves.
"""

import json

from repro.errors import AnalysisError

#: Schema identifier; bump on incompatible layout changes.
SCHEMA = "repro-lint-baseline/1"

_REQUIRED = ("rule", "path", "pattern", "comment")


class BaselineEntry:
    """One reviewed whitelist entry."""

    __slots__ = ("rule", "path", "symbol", "pattern", "comment",
                 "snippet_hash")

    def __init__(self, rule, path, pattern, comment, symbol=None,
                 snippet_hash=None):
        if not comment or not str(comment).strip():
            raise AnalysisError(
                "baseline entry %s %s %s has no comment — every "
                "whitelisted finding must explain why it is allowed"
                % (rule, path, pattern)
            )
        self.rule = rule
        self.path = path
        self.symbol = symbol
        self.pattern = pattern
        self.comment = comment
        #: Optional normalized-snippet hash: when present, the entry
        #: only covers a finding whose anchored source text still
        #: hashes the same — editing the whitelisted line re-surfaces
        #: the finding for re-review.
        self.snippet_hash = snippet_hash

    def matches(self, finding):
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and finding.pattern == self.pattern
            and (self.symbol is None or finding.symbol == self.symbol)
            and (self.snippet_hash is None
                 or finding.snippet_hash == self.snippet_hash)
        )

    def to_dict(self):
        entry = {
            "rule": self.rule,
            "path": self.path,
            "pattern": self.pattern,
            "comment": self.comment,
        }
        if self.symbol is not None:
            entry["symbol"] = self.symbol
        if self.snippet_hash is not None:
            entry["snippet_hash"] = self.snippet_hash
        return entry

    def describe(self):
        where = self.path if self.symbol is None \
            else "%s [%s]" % (self.path, self.symbol)
        return "%s %s %s" % (self.rule, where, self.pattern)


def load_baseline(path):
    """Parse and validate a baseline file into entries."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SCHEMA:
        raise AnalysisError(
            "unsupported baseline schema %r in %s (expected %r)"
            % (document.get("schema"), path, SCHEMA)
        )
    entries = []
    for raw in document.get("entries", ()):
        missing = [key for key in _REQUIRED if not raw.get(key)]
        if missing:
            raise AnalysisError(
                "baseline entry %r in %s is missing %s"
                % (raw, path, ", ".join(missing))
            )
        entries.append(BaselineEntry(
            raw["rule"], raw["path"], raw["pattern"], raw["comment"],
            symbol=raw.get("symbol"),
            snippet_hash=raw.get("snippet_hash"),
        ))
    return entries


def apply_baseline(findings, entries):
    """Split findings into (kept, baselined) and spot stale entries.

    Returns ``(kept, baselined_count, stale_entries)``; one entry may
    cover several findings (e.g. two wall-clock reads bracketing the
    same timed region).
    """
    kept = []
    baselined = 0
    used = [False] * len(entries)
    for finding in findings:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(finding):
                used[index] = True
                matched = True
        if matched:
            baselined += 1
        else:
            kept.append(finding)
    stale = [entry for index, entry in enumerate(entries) if not used[index]]
    return kept, baselined, stale


def write_baseline(findings, path,
                   comment="TODO(review): explain why this site is allowed"):
    """Write a baseline covering *findings* (one entry per fingerprint).

    Entries get a placeholder comment; the workflow is to review each
    one and replace the placeholder with the actual justification before
    checking the file in.
    """
    seen = {}
    for finding in findings:
        key = finding.fingerprint()
        if key not in seen:
            seen[key] = BaselineEntry(
                finding.rule, finding.path, finding.pattern, comment,
                symbol=finding.symbol,
                snippet_hash=finding.snippet_hash,
            )
    document = {
        "schema": SCHEMA,
        "entries": [entry.to_dict() for entry in seen.values()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(seen)


def prune_baseline(path, stale_entries):
    """Rewrite the baseline at *path* without *stale_entries*.

    Comments and field layout of the surviving entries are preserved
    (the file is re-read and re-emitted entry for entry).  Returns the
    list of dropped entries.
    """
    entries = load_baseline(path)
    stale_keys = {
        (entry.rule, entry.path, entry.symbol, entry.pattern,
         entry.snippet_hash)
        for entry in stale_entries
    }
    kept, dropped = [], []
    for entry in entries:
        key = (entry.rule, entry.path, entry.symbol, entry.pattern,
               entry.snippet_hash)
        (dropped if key in stale_keys else kept).append(entry)
    document = {
        "schema": SCHEMA,
        "entries": [entry.to_dict() for entry in kept],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return dropped
