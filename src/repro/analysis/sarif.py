"""SARIF 2.1.0 emitter for lint results.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; CI uploads the file as a build artifact so findings can be
browsed per-run without re-reading the text log.  The emitter is
deliberately minimal — one run, one tool, one result per finding — but
schema-valid: ``version``/``$schema``, a driver with the full rule
catalogue (id, short description, full rationale, default level), and
per-result locations plus the stable repro fingerprint so downstream
dedup survives line churn exactly like the baseline does.
"""

import json

from repro.analysis.rules import RULE_CLASSES

#: The SARIF version and schema the document declares.
VERSION = "2.1.0"
SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro severity -> SARIF result level.
_LEVELS = {"warning": "warning", "error": "error"}


def _driver_rules():
    rules = []
    for rule_class in RULE_CLASSES:
        rules.append({
            "id": rule_class.id,
            "name": rule_class.title,
            "shortDescription": {"text": rule_class.title},
            "fullDescription": {"text": rule_class.rationale},
            "defaultConfiguration": {
                "level": _LEVELS[rule_class.severity],
            },
        })
    return rules


def _result(finding):
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
            "logicalLocations": [{
                "fullyQualifiedName": "%s.%s" % (finding.module,
                                                 finding.symbol),
            }],
        }],
        "partialFingerprints": {
            "reproLint/v1": "/".join(
                str(part) for part in finding.fingerprint()
            ),
        },
    }


def sarif_report(result):
    """Render an :class:`~repro.analysis.runner.AnalysisResult` as SARIF."""
    document = {
        "$schema": SCHEMA_URI,
        "version": VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "docs/static-analysis.md",
                    "rules": _driver_rules(),
                }
            },
            "results": [_result(f) for f in result.findings],
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
