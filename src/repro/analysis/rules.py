"""The repro rule pack: invariants the paper's guarantees depend on.

Each rule encodes one cross-cutting contract of this codebase (see
``docs/static-analysis.md`` for the rendered catalogue):

* **RPR001** — the simulated runtime must be wall-clock- and
  RNG-deterministic;
* **RPR002** — instrumentation on hot paths must follow the
  zero-cost-off guard pattern (the TXT1–TXT3 contract);
* **RPR003** — the message protocol must be exhaustive: every frame
  type has a dispatch handler and a construction site;
* **RPR004** — no mutable default arguments;
* **RPR005** — no broad exception handlers that can swallow
  ``QueryAborted`` or the termination protocol's control flow.
"""

import ast
import os

from repro.analysis.core import Rule, enclosing_symbols
from repro.analysis.guards import UnguardedCallScanner, dotted_parts

# ----------------------------------------------------------------------
# RPR001 — determinism
# ----------------------------------------------------------------------

#: Calls that read ambient nondeterminism (wall clock, OS entropy).
_NONDETERMINISTIC = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
}


def _import_aliases(tree):
    """Map local names to the dotted thing they import.

    ``import time as t`` maps ``t -> time``; ``from random import
    shuffle`` maps ``shuffle -> random.shuffle``.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    "%s.%s" % (node.module, alias.name)
                )
    return aliases


class DeterminismRule(Rule):
    """RPR001: no ambient wall-clock or unseeded randomness in the
    simulated runtime."""

    id = "RPR001"
    title = "determinism: no wall-clock or unseeded randomness"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.chaos",
             "repro.graph", "repro.workloads", "repro.bench",
             "repro.service", "repro.stats")
    rationale = (
        "The paper's guarantees — deterministic query completion under a "
        "finite memory budget — are only testable because a run is a pure "
        "function of (graph, query, config, seed). A single `time.time()` "
        "or module-level `random.random()` call inside the simulated "
        "runtime makes results, tick counts, and the regression gates "
        "unreproducible. Randomness must flow from an explicit "
        "`random.Random(seed)` threaded from the config; wall-clock reads "
        "are allowed only at explicitly baselined sites that never feed "
        "back into control flow (benchmark wall-time reporting)."
    )
    example = (
        "# bad: ambient entropy, differs across runs\n"
        "delay = random.randint(0, 3)\n"
        "started = time.time()\n"
        "\n"
        "# good: seeded stream threaded from config\n"
        "rng = random.Random(config.seed)\n"
        "delay = rng.randint(0, 3)"
    )

    def check(self, module):
        aliases = _import_aliases(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_parts(node.func)
            if chain is None:
                continue
            resolved = aliases.get(chain[0])
            if resolved is None:
                continue
            dotted = ".".join((resolved,) + chain[1:])
            if dotted in _NONDETERMINISTIC or dotted.startswith("secrets."):
                yield self.finding(
                    module, node,
                    "nondeterministic call %s() in simulated runtime "
                    "code" % dotted,
                    dotted, symbols,
                )
            elif dotted == "random.Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed is nondeterministic; "
                    "thread an explicit seed from the config",
                    "random.Random:unseeded", symbols,
                )
            elif dotted.startswith("random.") and dotted != "random.Random":
                yield self.finding(
                    module, node,
                    "module-level %s() draws from the shared unseeded "
                    "RNG; use a random.Random(seed) instance" % dotted,
                    dotted, symbols,
                )


# ----------------------------------------------------------------------
# RPR002 — zero-cost-off instrumentation
# ----------------------------------------------------------------------

#: Segment names that denote an optional observability handle.
_TRACERISH = frozenset({"trace", "tracer", "telemetry", "sampler",
                        "profiler"})


class ZeroCostOffRule(Rule):
    """RPR002: tracer/telemetry calls must be dominated by an
    ``is not None`` guard on the handle."""

    id = "RPR002"
    title = "zero-cost-off: guard tracer/telemetry calls with `is not None`"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.service",
             "repro.obs.feedback")
    rationale = (
        "Observability must cost nothing when disabled: the runtime holds "
        "either a tracer/telemetry object or None, and the TXT1–TXT3 "
        "overhead benchmarks pin the disabled path to a single pointer "
        "comparison per site. An instrumentation call not dominated by an "
        "`is not None` guard on its handle either crashes when "
        "observability is off (AttributeError on None) or forces the "
        "handle to become a do-nothing object whose method calls are pure "
        "overhead on every hot-path operation. The guard on the root "
        "handle is the contract; sub-objects (`telemetry.sampler`, "
        "histogram families) are owned by it."
    )
    example = (
        "# bad: crashes (or costs a call) when tracing is off\n"
        "self.trace.emit(FlowBlock(now, self.machine_id, stage, dest))\n"
        "\n"
        "# good: one pointer comparison when disabled\n"
        "if self.trace is not None:\n"
        "    self.trace.emit(FlowBlock(now, self.machine_id, stage, dest))"
    )

    @staticmethod
    def _matches(segment):
        return segment.lstrip("_") in _TRACERISH

    def check(self, module):
        scanner = UnguardedCallScanner(self._matches)
        scanner.scan_module(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node, chain in scanner.found:
            dotted = ".".join(chain)
            yield self.finding(
                module, node,
                "call %s() is not dominated by an `is not None` guard "
                "on its tracer/telemetry handle" % dotted,
                dotted, symbols,
            )


# ----------------------------------------------------------------------
# RPR003 — protocol exhaustiveness (cross-module)
# ----------------------------------------------------------------------

class ProtocolExhaustivenessRule(Rule):
    """RPR003: every message type is dispatched and constructed."""

    id = "RPR003"
    title = "protocol exhaustiveness: every message handled and constructed"
    severity = "error"
    project_wide = True
    #: Handler modules searched next to each ``messages.py``.
    handler_files = ("machine.py", "reliability.py")
    rationale = (
        "The termination protocol is a distributed wavefront: COMPLETED "
        "notifications, acks, and quota messages must all be consumed, or "
        "a frame silently vanishes in dispatch and the query wedges "
        "instead of terminating — the exact failure mode the paper's "
        "deterministic-completion guarantee rules out. This cross-module "
        "check ties `runtime/messages.py` to the dispatchers "
        "(`runtime/machine.py` for application traffic, "
        "`runtime/reliability.py` for the transport frames): every public "
        "message class must appear in an isinstance dispatch arm, and "
        "must be constructed somewhere — a never-built frame type is dead "
        "protocol surface that dispatch code still pays for."
    )
    example = (
        "# messages.py\n"
        "class Completed:\n"
        "    ...\n"
        "\n"
        "# machine.py — every concrete frame type gets an arm\n"
        "elif isinstance(payload, Completed):\n"
        "    self.termination.on_completed(payload.stage, src)"
    )

    def check_project(self, modules):
        by_dir = {}
        for module in modules:
            directory = os.path.dirname(module.abspath)
            by_dir.setdefault(directory, {})[
                os.path.basename(module.abspath)] = module
        constructed = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    chain = dotted_parts(node.func)
                    if chain:
                        constructed.add(chain[-1])
        for directory, files in sorted(by_dir.items()):
            messages = files.get("messages.py")
            if messages is None:
                continue
            handlers = [
                files[name] for name in self.handler_files if name in files
            ]
            if not handlers:
                continue
            handled = set()
            for handler in handlers:
                handled |= _dispatched_classes(handler.tree)
            symbols = enclosing_symbols(messages.tree)
            for node in messages.tree.body:
                if not isinstance(node, ast.ClassDef) \
                        or node.name.startswith("_"):
                    continue
                if node.name not in handled:
                    yield self.finding(
                        messages, node,
                        "message type %s has no isinstance dispatch arm "
                        "in %s" % (
                            node.name,
                            "/".join(h.path for h in handlers),
                        ),
                        "%s:unhandled" % node.name, symbols,
                    )
                if node.name not in constructed:
                    yield self.finding(
                        messages, node,
                        "message type %s is never constructed — dead "
                        "frame type" % node.name,
                        "%s:unconstructed" % node.name, symbols,
                        severity="warning",
                    )


def _dispatched_classes(tree):
    """Class names appearing in isinstance/type-is dispatch tests."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            names |= _class_names(node.args[1])
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.Is, ast.Eq)) \
                and isinstance(node.left, ast.Call) \
                and isinstance(node.left.func, ast.Name) \
                and node.left.func.id == "type":
            names |= _class_names(node.comparators[0])
    return names


def _class_names(node):
    if isinstance(node, ast.Tuple):
        names = set()
        for element in node.elts:
            names |= _class_names(element)
        return names
    chain = dotted_parts(node)
    return {chain[-1]} if chain else set()


# ----------------------------------------------------------------------
# RPR004 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict",
                  "Counter", "OrderedDict"}


class MutableDefaultRule(Rule):
    """RPR004: no mutable default argument values."""

    id = "RPR004"
    title = "no mutable default arguments"
    severity = "error"
    rationale = (
        "A mutable default is evaluated once at definition time and "
        "shared by every call. In a runtime where per-query state "
        "isolation is the whole point (each QueryMachine, plan, and "
        "chaos plan must be independent), a shared default list or dict "
        "leaks state between queries and produces seed-dependent "
        "heisenbugs that the deterministic test matrix can't pin down. "
        "Default to None and materialize inside the function."
    )
    example = (
        "# bad: one shared list across every call\n"
        "def route(self, stage, dests=[]):\n"
        "    dests.append(stage)\n"
        "\n"
        "# good\n"
        "def route(self, stage, dests=None):\n"
        "    if dests is None:\n"
        "        dests = []"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional)
                                               - len(args.defaults):],
                                    args.defaults):
                if self._mutable(default):
                    yield self._arg_finding(module, node, arg, default,
                                            symbols)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and self._mutable(default):
                    yield self._arg_finding(module, node, arg, default,
                                            symbols)

    @staticmethod
    def _mutable(node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS)

    def _arg_finding(self, module, func, arg, default, symbols):
        name = getattr(func, "name", "<lambda>")
        return self.finding(
            module, default,
            "mutable default for argument %r of %s() is shared across "
            "calls; default to None instead" % (arg.arg, name),
            "%s(%s)" % (name, arg.arg), symbols,
        )


# ----------------------------------------------------------------------
# RPR005 — exception hygiene
# ----------------------------------------------------------------------

#: Exception names broad enough to swallow QueryAborted / control flow.
_BROAD_EXCEPTIONS = {"Exception", "BaseException", "ReproError"}


class ExceptionHygieneRule(Rule):
    """RPR005: no bare/broad except that can swallow ``QueryAborted``."""

    id = "RPR005"
    title = "exception hygiene: no broad except without re-raise"
    severity = "error"
    rationale = (
        "QueryAborted is control flow, not an error: it carries the "
        "partial metrics, trace, and flow-control snapshot of a "
        "cancelled query up through the engine, and the termination "
        "protocol relies on it propagating. A bare `except:` or "
        "`except Exception:` (or `except ReproError:`, its base class) "
        "that does not re-raise can swallow an abort mid-wavefront, "
        "turning a clean structured cancellation into a silent hang or a "
        "half-updated machine state. Catch the narrowest exception the "
        "call can actually raise, or re-raise after cleanup."
    )
    example = (
        "# bad: also catches QueryAborted and RuntimeFault\n"
        "try:\n"
        "    worker.step(budget)\n"
        "except Exception:\n"
        "    pass\n"
        "\n"
        "# good: narrow catch, or re-raise after cleanup\n"
        "try:\n"
        "    worker.step(budget)\n"
        "except FlowControlError:\n"
        "    self.metrics.flow_control_blocks += 1"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue
            label = "bare except" if node.type is None \
                else "except %s" % broad
            yield self.finding(
                module, node,
                "%s swallows QueryAborted and the termination "
                "protocol's control flow without re-raising" % label,
                label.replace(" ", ":"), symbols,
            )

    @staticmethod
    def _broad_name(type_node):
        """The broad class name caught by *type_node*, or None."""
        if type_node is None:
            return "<bare>"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            chain = dotted_parts(candidate)
            if chain and chain[-1] in _BROAD_EXCEPTIONS:
                return chain[-1]
        return None


#: The default rule pack, in report order.
RULE_CLASSES = (
    DeterminismRule,
    ZeroCostOffRule,
    ProtocolExhaustivenessRule,
    MutableDefaultRule,
    ExceptionHygieneRule,
)


def default_rules():
    """Fresh instances of the full rule pack."""
    return [cls() for cls in RULE_CLASSES]


def rule_by_id(rule_id):
    """Look up one rule instance by id (case-insensitive)."""
    for cls in RULE_CLASSES:
        if cls.id.lower() == rule_id.lower():
            return cls()
    return None
