"""The repro rule pack: invariants the paper's guarantees depend on.

Each rule encodes one cross-cutting contract of this codebase (see
``docs/static-analysis.md`` for the rendered catalogue):

* **RPR001** — the simulated runtime must be wall-clock- and
  RNG-deterministic;
* **RPR002** — instrumentation on hot paths must follow the
  zero-cost-off guard pattern (the TXT1–TXT3 contract);
* **RPR003** — the message protocol must be exhaustive: every frame
  type has a dispatch handler and a construction site;
* **RPR004** — no mutable default arguments;
* **RPR005** — no broad exception handlers that can swallow
  ``QueryAborted`` or the termination protocol's control flow;
* **RPR006** — no effectful iteration over ``set``s / set-keyed dict
  views (hash-seed-dependent order breaks bit-determinism);
* **RPR007** — flow-control reservations must be paired with a release
  on every CFG path to function exit;
* **RPR008** — the generated bulk kernels must charge every counter the
  micro-step handlers charge, exactly once (see
  :mod:`repro.analysis.kernel_audit`);
* **RPR009** — no ``QueryScope``-reachable mutable state mutated across
  the service boundary except through the scheduler API.
"""

import ast
import os

from repro.analysis.core import Rule, enclosing_symbols
from repro.analysis.dataflow import iter_scopes
from repro.analysis.flows import (
    ReservationAnalysis,
    SetTypeAnalysis,
    call_aliases,
    class_set_model,
)
from repro.analysis.guards import UnguardedCallScanner, dotted_parts

# ----------------------------------------------------------------------
# RPR001 — determinism
# ----------------------------------------------------------------------

#: Calls that read ambient nondeterminism (wall clock, OS entropy).
_NONDETERMINISTIC = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
}


def _import_aliases(tree):
    """Map local names to the dotted thing they import.

    ``import time as t`` maps ``t -> time``; ``from random import
    shuffle`` maps ``shuffle -> random.shuffle``.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    "%s.%s" % (node.module, alias.name)
                )
    return aliases


class DeterminismRule(Rule):
    """RPR001: no ambient wall-clock or unseeded randomness in the
    simulated runtime."""

    id = "RPR001"
    title = "determinism: no wall-clock or unseeded randomness"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.chaos",
             "repro.graph", "repro.workloads", "repro.bench",
             "repro.service", "repro.stats", "repro.plan.cost")
    rationale = (
        "The paper's guarantees — deterministic query completion under a "
        "finite memory budget — are only testable because a run is a pure "
        "function of (graph, query, config, seed). A single `time.time()` "
        "or module-level `random.random()` call inside the simulated "
        "runtime makes results, tick counts, and the regression gates "
        "unreproducible. Randomness must flow from an explicit "
        "`random.Random(seed)` threaded from the config; wall-clock reads "
        "are allowed only at explicitly baselined sites that never feed "
        "back into control flow (benchmark wall-time reporting)."
    )
    example = (
        "# bad: ambient entropy, differs across runs\n"
        "delay = random.randint(0, 3)\n"
        "started = time.time()\n"
        "\n"
        "# good: seeded stream threaded from config\n"
        "rng = random.Random(config.seed)\n"
        "delay = rng.randint(0, 3)"
    )

    def check(self, module):
        aliases = _import_aliases(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_parts(node.func)
            if chain is None:
                continue
            resolved = aliases.get(chain[0])
            if resolved is None:
                continue
            dotted = ".".join((resolved,) + chain[1:])
            if dotted in _NONDETERMINISTIC or dotted.startswith("secrets."):
                yield self.finding(
                    module, node,
                    "nondeterministic call %s() in simulated runtime "
                    "code" % dotted,
                    dotted, symbols,
                )
            elif dotted == "random.Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed is nondeterministic; "
                    "thread an explicit seed from the config",
                    "random.Random:unseeded", symbols,
                )
            elif dotted.startswith("random.") and dotted != "random.Random":
                yield self.finding(
                    module, node,
                    "module-level %s() draws from the shared unseeded "
                    "RNG; use a random.Random(seed) instance" % dotted,
                    dotted, symbols,
                )


# ----------------------------------------------------------------------
# RPR002 — zero-cost-off instrumentation
# ----------------------------------------------------------------------

#: Segment names that denote an optional observability handle.
_TRACERISH = frozenset({"trace", "tracer", "telemetry", "sampler",
                        "profiler"})


class ZeroCostOffRule(Rule):
    """RPR002: tracer/telemetry calls must be dominated by an
    ``is not None`` guard on the handle."""

    id = "RPR002"
    title = "zero-cost-off: guard tracer/telemetry calls with `is not None`"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.service",
             "repro.obs.feedback")
    rationale = (
        "Observability must cost nothing when disabled: the runtime holds "
        "either a tracer/telemetry object or None, and the TXT1–TXT3 "
        "overhead benchmarks pin the disabled path to a single pointer "
        "comparison per site. An instrumentation call not dominated by an "
        "`is not None` guard on its handle either crashes when "
        "observability is off (AttributeError on None) or forces the "
        "handle to become a do-nothing object whose method calls are pure "
        "overhead on every hot-path operation. The guard on the root "
        "handle is the contract; sub-objects (`telemetry.sampler`, "
        "histogram families) are owned by it."
    )
    example = (
        "# bad: crashes (or costs a call) when tracing is off\n"
        "self.trace.emit(FlowBlock(now, self.machine_id, stage, dest))\n"
        "\n"
        "# good: one pointer comparison when disabled\n"
        "if self.trace is not None:\n"
        "    self.trace.emit(FlowBlock(now, self.machine_id, stage, dest))"
    )

    @staticmethod
    def _matches(segment):
        return segment.lstrip("_") in _TRACERISH

    def check(self, module):
        scanner = UnguardedCallScanner(self._matches)
        scanner.scan_module(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node, chain in scanner.found:
            dotted = ".".join(chain)
            yield self.finding(
                module, node,
                "call %s() is not dominated by an `is not None` guard "
                "on its tracer/telemetry handle" % dotted,
                dotted, symbols,
            )


# ----------------------------------------------------------------------
# RPR003 — protocol exhaustiveness (cross-module)
# ----------------------------------------------------------------------

class ProtocolExhaustivenessRule(Rule):
    """RPR003: every message type is dispatched and constructed."""

    id = "RPR003"
    title = "protocol exhaustiveness: every message handled and constructed"
    severity = "error"
    project_wide = True
    #: Handler modules searched next to each ``messages.py``.
    handler_files = ("machine.py", "reliability.py")
    rationale = (
        "The termination protocol is a distributed wavefront: COMPLETED "
        "notifications, acks, and quota messages must all be consumed, or "
        "a frame silently vanishes in dispatch and the query wedges "
        "instead of terminating — the exact failure mode the paper's "
        "deterministic-completion guarantee rules out. This cross-module "
        "check ties `runtime/messages.py` to the dispatchers "
        "(`runtime/machine.py` for application traffic, "
        "`runtime/reliability.py` for the transport frames): every public "
        "message class must appear in an isinstance dispatch arm, and "
        "must be constructed somewhere — a never-built frame type is dead "
        "protocol surface that dispatch code still pays for."
    )
    example = (
        "# messages.py\n"
        "class Completed:\n"
        "    ...\n"
        "\n"
        "# machine.py — every concrete frame type gets an arm\n"
        "elif isinstance(payload, Completed):\n"
        "    self.termination.on_completed(payload.stage, src)"
    )

    def check_project(self, modules):
        by_dir = {}
        for module in modules:
            directory = os.path.dirname(module.abspath)
            by_dir.setdefault(directory, {})[
                os.path.basename(module.abspath)] = module
        constructed = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    chain = dotted_parts(node.func)
                    if chain:
                        constructed.add(chain[-1])
        for directory, files in sorted(by_dir.items()):
            messages = files.get("messages.py")
            if messages is None:
                continue
            handlers = [
                files[name] for name in self.handler_files if name in files
            ]
            if not handlers:
                continue
            handled = set()
            for handler in handlers:
                handled |= _dispatched_classes(handler.tree)
            symbols = enclosing_symbols(messages.tree)
            for node in messages.tree.body:
                if not isinstance(node, ast.ClassDef) \
                        or node.name.startswith("_"):
                    continue
                if node.name not in handled:
                    yield self.finding(
                        messages, node,
                        "message type %s has no isinstance dispatch arm "
                        "in %s" % (
                            node.name,
                            "/".join(h.path for h in handlers),
                        ),
                        "%s:unhandled" % node.name, symbols,
                    )
                if node.name not in constructed:
                    yield self.finding(
                        messages, node,
                        "message type %s is never constructed — dead "
                        "frame type" % node.name,
                        "%s:unconstructed" % node.name, symbols,
                        severity="warning",
                    )


def _dispatched_classes(tree):
    """Class names appearing in isinstance/type-is dispatch tests."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            names |= _class_names(node.args[1])
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.Is, ast.Eq)) \
                and isinstance(node.left, ast.Call) \
                and isinstance(node.left.func, ast.Name) \
                and node.left.func.id == "type":
            names |= _class_names(node.comparators[0])
    return names


def _class_names(node):
    if isinstance(node, ast.Tuple):
        names = set()
        for element in node.elts:
            names |= _class_names(element)
        return names
    chain = dotted_parts(node)
    return {chain[-1]} if chain else set()


# ----------------------------------------------------------------------
# RPR004 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict",
                  "Counter", "OrderedDict"}


class MutableDefaultRule(Rule):
    """RPR004: no mutable default argument values."""

    id = "RPR004"
    title = "no mutable default arguments"
    severity = "error"
    rationale = (
        "A mutable default is evaluated once at definition time and "
        "shared by every call. In a runtime where per-query state "
        "isolation is the whole point (each QueryMachine, plan, and "
        "chaos plan must be independent), a shared default list or dict "
        "leaks state between queries and produces seed-dependent "
        "heisenbugs that the deterministic test matrix can't pin down. "
        "Default to None and materialize inside the function."
    )
    example = (
        "# bad: one shared list across every call\n"
        "def route(self, stage, dests=[]):\n"
        "    dests.append(stage)\n"
        "\n"
        "# good\n"
        "def route(self, stage, dests=None):\n"
        "    if dests is None:\n"
        "        dests = []"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional)
                                               - len(args.defaults):],
                                    args.defaults):
                if self._mutable(default):
                    yield self._arg_finding(module, node, arg, default,
                                            symbols)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and self._mutable(default):
                    yield self._arg_finding(module, node, arg, default,
                                            symbols)

    @staticmethod
    def _mutable(node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS)

    def _arg_finding(self, module, func, arg, default, symbols):
        name = getattr(func, "name", "<lambda>")
        return self.finding(
            module, default,
            "mutable default for argument %r of %s() is shared across "
            "calls; default to None instead" % (arg.arg, name),
            "%s(%s)" % (name, arg.arg), symbols,
        )


# ----------------------------------------------------------------------
# RPR005 — exception hygiene
# ----------------------------------------------------------------------

#: Exception names broad enough to swallow QueryAborted / control flow.
_BROAD_EXCEPTIONS = {"Exception", "BaseException", "ReproError"}


class ExceptionHygieneRule(Rule):
    """RPR005: no bare/broad except that can swallow ``QueryAborted``."""

    id = "RPR005"
    title = "exception hygiene: no broad except without re-raise"
    severity = "error"
    rationale = (
        "QueryAborted is control flow, not an error: it carries the "
        "partial metrics, trace, and flow-control snapshot of a "
        "cancelled query up through the engine, and the termination "
        "protocol relies on it propagating. A bare `except:` or "
        "`except Exception:` (or `except ReproError:`, its base class) "
        "that does not re-raise can swallow an abort mid-wavefront, "
        "turning a clean structured cancellation into a silent hang or a "
        "half-updated machine state. Catch the narrowest exception the "
        "call can actually raise, or re-raise after cleanup."
    )
    example = (
        "# bad: also catches QueryAborted and RuntimeFault\n"
        "try:\n"
        "    worker.step(budget)\n"
        "except Exception:\n"
        "    pass\n"
        "\n"
        "# good: narrow catch, or re-raise after cleanup\n"
        "try:\n"
        "    worker.step(budget)\n"
        "except FlowControlError:\n"
        "    self.metrics.flow_control_blocks += 1"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue
            label = "bare except" if node.type is None \
                else "except %s" % broad
            yield self.finding(
                module, node,
                "%s swallows QueryAborted and the termination "
                "protocol's control flow without re-raising" % label,
                label.replace(" ", ":"), symbols,
            )

    @staticmethod
    def _broad_name(type_node):
        """The broad class name caught by *type_node*, or None."""
        if type_node is None:
            return "<bare>"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            chain = dotted_parts(candidate)
            if chain and chain[-1] in _BROAD_EXCEPTIONS:
                return chain[-1]
        return None


# ----------------------------------------------------------------------
# RPR006 — iteration-order determinism
# ----------------------------------------------------------------------

#: Call-chain tails whose invocation inside a loop body makes iteration
#: order observable: message emission, buffer mutation, metric charges.
#: ``add``/``discard`` are deliberately absent — set insertion is
#: order-insensitive by construction.
_EMIT_SEGMENTS = frozenset({
    "send", "emit", "route", "flush", "_flush", "flush_buffer",
    "_flush_buffer", "enqueue", "push", "push_frame", "append",
    "appendleft", "extend", "extendleft", "put", "observe", "inc",
    "record", "charge",
})


def _metricish_target(target):
    """True when an AugAssign target looks like a metric/counter cell."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    chain = dotted_parts(node)
    if not chain:
        return False
    return any(
        "metric" in segment or "profil" in segment or "stat" in segment
        or "counter" in segment or segment.startswith("stage_")
        for segment in chain
    )


def _loop_has_effects(body):
    """True when the loop body emits, mutates buffers, or charges
    metrics — i.e. when iteration order becomes observable."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                chain = dotted_parts(node.func)
                if chain and len(chain) >= 2 \
                        and chain[-1] in _EMIT_SEGMENTS:
                    return True
            elif isinstance(node, ast.AugAssign):
                if _metricish_target(node.target):
                    return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


class IterationOrderRule(Rule):
    """RPR006: no effectful loops over sets or set-keyed dict views."""

    id = "RPR006"
    title = "iteration-order determinism: no effectful loops over sets"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.service",
             "repro.analytics")
    rationale = (
        "Every parity gate — bulk-kernel differential, serial-vs-"
        "concurrent soak, chaos exact-result check — rests on bit-"
        "deterministic execution, and `set` iteration order depends on "
        "the interpreter's hash seed. A loop over a set (or over the "
        "views of a dict keyed from one) whose body sends messages, "
        "mutates shared buffers, or charges metrics makes emission "
        "order — and therefore traces, tick interleavings, and peak "
        "gauges — vary run to run. The dataflow analysis tracks which "
        "locals, attributes, and helper-method results must hold sets; "
        "wrap the iterable in `sorted(...)` to pin the order, or "
        "suppress with a comment when the body is provably order-"
        "insensitive."
    )
    example = (
        "# bad: message order depends on PYTHONHASHSEED\n"
        "higher = {v for v in neighbors if v > vertex}\n"
        "for target in higher:\n"
        "    ctx.send(target, payload)\n"
        "\n"
        "# good: deterministic emission order\n"
        "for target in sorted(higher):\n"
        "    ctx.send(target, payload)"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        class_models, parent_class = {}, {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                class_models[id(node)] = class_set_model(node)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        parent_class[id(stmt)] = node
        reported = set()
        for scope, body in iter_scopes(module.tree):
            owner = parent_class.get(id(scope))
            if owner is not None:
                attrs, methods = class_models[id(owner)]
                analysis = SetTypeAnalysis(set_methods=methods,
                                           seed_attrs=attrs)
            else:
                analysis = SetTypeAnalysis()
            cfg, entry_facts = analysis.analyze(body)
            for block in cfg.blocks:
                fact = entry_facts[block.id]
                if fact is None:
                    fact = analysis.initial()
                for elem in block.elems:
                    kind, node = elem
                    if kind == "loop-iter" and id(node) not in reported:
                        classification = analysis.classify_iterable(
                            node.iter, fact)
                        if classification is not None \
                                and _loop_has_effects(node.body):
                            reported.add(id(node))
                            iterable = ast.unparse(node.iter)
                            what = (
                                "a set" if classification == "set"
                                else "a set-keyed dict view"
                            )
                            yield self.finding(
                                module, node,
                                "loop over %s iterates %s in hash order "
                                "while its body emits/mutates/charges; "
                                "rewrite as `for ... in sorted(%s):` to "
                                "pin the order"
                                % (iterable, what, iterable),
                                "set-iter:%s" % iterable, symbols,
                            )
                    fact = analysis.transfer(elem, fact)


# ----------------------------------------------------------------------
# RPR007 — reservation pairing
# ----------------------------------------------------------------------

class ReservationPairingRule(Rule):
    """RPR007: every reserve is released on every path to exit."""

    id = "RPR007"
    title = "reservation pairing: release flow-control grants on every path"
    severity = "error"
    scope = ("repro.runtime", "repro.cluster", "repro.service")
    rationale = (
        "Flow control admits work under `inflight + reserved <= limit`; "
        "`FlowControl.reserve` / `QueryMachine.reserve_items` charge the "
        "`reserved` term and only `release` / `end_batch` give it back. "
        "A CFG path that exits a function with a grant still open leaks "
        "window capacity permanently — after enough leaks every send is "
        "refused and the query wedges in a way no functional test "
        "attributes to the leak site. The may-analysis tracks each "
        "grant through local aliases, container re-homing "
        "(`resv[dest] = rem - 1`), zero-grant branches, and ownership-"
        "transferring returns; a grant reaching the normal exit on any "
        "path is a leak (the raise exit is exempt — aborts snapshot and "
        "rebuild flow state)."
    )
    example = (
        "# bad: early return leaks the reserved slots\n"
        "rem = rt.reserve_items(stage, dest, want)\n"
        "if rem > 0 and not fits(rem):\n"
        "    return ops, K_BLOCKED\n"
        "\n"
        "# good: every exit releases what it still holds\n"
        "rem = rt.reserve_items(stage, dest, want)\n"
        "if rem > 0 and not fits(rem):\n"
        "    rt.end_batch(stage, {dest: rem})\n"
        "    return ops, K_BLOCKED"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for scope, body in iter_scopes(module.tree):
            aliases = call_aliases(body)
            leaks = ReservationAnalysis(aliases).leaks(body)
            if not leaks:
                continue
            calls_at = {}
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        calls_at.setdefault(
                            (node.lineno, node.col_offset), node)
            for line, col, base, holder in leaks:
                node = calls_at.get((line, col))
                if node is None:
                    continue
                yield self.finding(
                    module, node,
                    "reservation from %s() can reach function exit "
                    "without a matching release/end_batch on some "
                    "control-flow path" % base,
                    "reserve-leak:%s" % base, symbols,
                )


# ----------------------------------------------------------------------
# RPR009 — cross-scope isolation
# ----------------------------------------------------------------------

#: Method names that mutate a container in place.
_MUTATOR_SEGMENTS = frozenset({
    "append", "appendleft", "add", "remove", "discard", "pop", "popleft",
    "clear", "extend", "extendleft", "update", "insert", "setdefault",
    "push", "sort", "reverse",
})


class CrossScopeIsolationRule(Rule):
    """RPR009: scopes only touch shared state via the scheduler API."""

    id = "RPR009"
    title = "cross-scope isolation: shared state only via the scheduler"
    severity = "error"
    scope = ("repro.service", "repro.runtime")
    rationale = (
        "The multi-query service's serial-parity gate holds because a "
        "QueryScope owns all its mutable state and the scheduler is the "
        "only cross-scope channel. A scope that writes through its "
        "service handle (`self.service.x = ...`, "
        "`self.service.registry.append(...)`) or a module-level mutable "
        "container in the runtime creates state shared across scopes "
        "outside the scheduler's control — co-tenant queries then "
        "observe each other and the concurrent run diverges from the "
        "serial replay under exactly the schedules the soak can't "
        "enumerate. Direct scheduler *calls* (`self.service.submit(...)`) "
        "are the sanctioned channel and stay allowed."
    )
    example = (
        "# bad: scope-side mutation of service-owned state\n"
        "self.service.active.append(self.query_id)\n"
        "self.service.last_result = rows\n"
        "\n"
        "# good: go through the scheduler API\n"
        "self.service.retire(self.query_id, rows)"
    )

    def check(self, module):
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    chain = self._service_chain(target)
                    if chain is not None and len(chain) >= 3:
                        dotted = ".".join(chain)
                        yield self.finding(
                            module, node,
                            "assignment to %s mutates service-owned "
                            "state from a scope; route it through the "
                            "scheduler API" % dotted,
                            "scope-write:%s" % dotted, symbols,
                        )
            elif isinstance(node, ast.Call):
                chain = self._service_chain(node.func)
                if chain is not None and len(chain) >= 4 \
                        and chain[-1] in _MUTATOR_SEGMENTS:
                    dotted = ".".join(chain)
                    yield self.finding(
                        module, node,
                        "%s() mutates a service-owned container from a "
                        "scope; route it through the scheduler API"
                        % dotted,
                        "scope-mutate:%s" % dotted, symbols,
                    )
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and not target.id.startswith("__") \
                        and self._module_mutable(node.value):
                    yield self.finding(
                        module, node,
                        "module-level mutable %r is shared by every "
                        "scope in the process; move it into per-scope "
                        "state or freeze it" % target.id,
                        "module-mutable:%s" % target.id, symbols,
                    )

    @staticmethod
    def _service_chain(target):
        """The dotted chain when *target* goes through a service handle."""
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        chain = dotted_parts(node)
        if chain is None or len(chain) < 2:
            return None
        if chain[0] == "self" and chain[1].lstrip("_") == "service":
            return chain
        return None

    @staticmethod
    def _module_mutable(value):
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CALLS)


from repro.analysis.kernel_audit import KernelCodegenAuditRule  # noqa: E402

#: The default rule pack, in report order.  RPR008 (the kernel-codegen
#: audit, :mod:`repro.analysis.kernel_audit`) is the one rule that
#: compiles repository code (the bench plan matrix) instead of only
#: parsing it; its heavy imports are deferred into the check itself.
RULE_CLASSES = (
    DeterminismRule,
    ZeroCostOffRule,
    ProtocolExhaustivenessRule,
    MutableDefaultRule,
    ExceptionHygieneRule,
    IterationOrderRule,
    ReservationPairingRule,
    KernelCodegenAuditRule,
    CrossScopeIsolationRule,
)


def default_rules():
    """Fresh instances of the full rule pack."""
    return [cls() for cls in RULE_CLASSES]


def rule_by_id(rule_id):
    """Look up one rule instance by id (case-insensitive)."""
    for cls in RULE_CLASSES:
        if cls.id.lower() == rule_id.lower():
            return cls()
    return None
