"""Reporters: human-readable text and machine-readable JSON."""

import json

#: JSON report schema identifier.
SCHEMA = "repro-lint/1"


def summary_line(result):
    parts = [
        "%d finding%s" % (len(result.findings),
                          "" if len(result.findings) == 1 else "s"),
        "(%d error%s, %d warning%s)" % (
            result.count("error"),
            "" if result.count("error") == 1 else "s",
            result.count("warning"),
            "" if result.count("warning") == 1 else "s",
        ),
        "in %d files" % result.files_scanned,
    ]
    if result.suppressed:
        parts.append("— %d suppressed inline" % result.suppressed)
    if result.baselined:
        parts.append("— %d baselined" % result.baselined)
    return " ".join(parts)


def text_report(result):
    """The human-readable report, one line per finding plus a summary."""
    lines = []
    for finding in result.findings:
        lines.append(
            "%s:%d:%d: %s %s [%s] %s"
            % (
                finding.path, finding.line, finding.col + 1,
                finding.rule, finding.severity, finding.symbol,
                finding.message,
            )
        )
    if lines:
        lines.append("")
    lines.append(summary_line(result))
    for entry in result.stale_baseline:
        lines.append(
            "stale baseline entry (matched nothing — delete it): %s"
            % entry.describe()
        )
    return "\n".join(lines)


def json_report(result):
    """The machine-readable report (stable key order)."""
    document = {
        "schema": SCHEMA,
        "files_scanned": result.files_scanned,
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "errors": result.count("error"),
            "warnings": result.count("warning"),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": [
                entry.describe() for entry in result.stale_baseline
            ],
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
