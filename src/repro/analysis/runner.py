"""Collect files, run the rule pack, apply suppressions and baseline."""

import os

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.core import load_module, package_root
from repro.analysis.rules import default_rules
from repro.errors import AnalysisError

#: Name of the auto-discovered baseline file (searched upward from the
#: first scanned path).
BASELINE_FILENAME = "lint-baseline.json"


class AnalysisResult:
    """The outcome of one analysis run."""

    __slots__ = ("findings", "suppressed", "baselined", "stale_baseline",
                 "files_scanned")

    def __init__(self, findings, suppressed, baselined, stale_baseline,
                 files_scanned):
        #: Findings that survived suppression and baseline filtering,
        #: ordered by (path, line, rule).
        self.findings = findings
        self.suppressed = suppressed
        self.baselined = baselined
        #: Baseline entries that matched nothing (candidates to delete).
        self.stale_baseline = stale_baseline
        self.files_scanned = files_scanned

    def count(self, severity):
        return sum(1 for f in self.findings if f.severity == severity)

    def worst_severity(self):
        if self.count("error"):
            return "error"
        if self.findings:
            return "warning"
        return None

    def fails(self, fail_on):
        """True when the run should exit non-zero under *fail_on*."""
        if fail_on == "warning":
            return bool(self.findings)
        return self.count("error") > 0


def iter_source_files(paths):
    """Yield the ``.py`` files named by *paths* (dirs walked, sorted)."""
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise AnalysisError("no such file or directory: %s" % path)


def load_modules(paths):
    """Parse every source file under *paths* into SourceModules."""
    modules = []
    for abspath in iter_source_files(paths):
        modules.append(load_module(abspath, root=package_root(abspath)))
    return modules


def discover_baseline(paths):
    """Find a ``lint-baseline.json`` above the first scanned path.

    Walks up from the first path (and from the current directory as a
    fallback) so running from the repo root or from a subdirectory both
    pick up the checked-in baseline.  Returns a path or None.
    """
    starts = []
    if paths:
        starts.append(os.path.abspath(paths[0]))
    starts.append(os.getcwd())
    for start in starts:
        directory = start if os.path.isdir(start) else os.path.dirname(start)
        while True:
            candidate = os.path.join(directory, BASELINE_FILENAME)
            if os.path.isfile(candidate):
                return candidate
            parent = os.path.dirname(directory)
            if parent == directory:
                break
            directory = parent
    return None


def analyze(paths, rules=None, baseline_path=None, severities=None,
            only=None):
    """Run *rules* (default: the full pack) over *paths*.

    Suppression comments are applied first, then the baseline; the
    returned :class:`AnalysisResult` carries only live findings plus the
    bookkeeping counts.

    *severities* optionally maps rule ids to severity overrides
    (``{"RPR006": "warning"}``) applied before the fail gate.  *only*
    optionally restricts *reported* findings to a set of absolute file
    paths (``--diff``): the full module set is still loaded so
    project-wide rules see complete context, but findings outside the
    set are dropped before suppression/baseline bookkeeping.
    """
    modules = load_modules(paths)
    if rules is None:
        rules = default_rules()
    if severities:
        for rule in rules:
            override = severities.get(rule.id)
            if override is not None:
                rule.severity = override
    by_path = {module.path: module for module in modules}
    by_abspath = {module.abspath: module for module in modules}

    raw = []
    for rule in rules:
        if rule.project_wide:
            raw.extend(rule.check_project(modules))
        else:
            for module in modules:
                if rule.applies(module):
                    raw.extend(rule.check(module))

    if only is not None:
        wanted = {os.path.abspath(path) for path in only}
        wanted_display = {
            module.path for abspath, module in by_abspath.items()
            if abspath in wanted
        }
        raw = [f for f in raw if f.path in wanted_display]

    findings, suppressed = [], 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.rule,
                                                    finding.line):
            suppressed += 1
        else:
            findings.append(finding)

    baselined, stale = 0, []
    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        findings, baselined, stale = apply_baseline(findings, entries)
        if only is not None:
            # A partial (--diff) scan can't tell stale from out-of-diff.
            stale = []

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return AnalysisResult(findings, suppressed, baselined, stale,
                          len(modules))
