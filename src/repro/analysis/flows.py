"""Client dataflow analyses for the determinism and flow-control rules.

Two analyses live here, both built on the shared CFG/dataflow framework:

:class:`SetTypeAnalysis` (RPR006)
    A *must* analysis tracking which names and attributes definitely
    hold a ``set`` (or a dict built from a set, whose view order is the
    set's order).  Iterating such a value is order-nondeterministic
    under hash randomization, so a loop over one that emits messages or
    charges metrics breaks the bit-determinism contract.

:class:`ReservationAnalysis` (RPR007)
    A *may* analysis tracking open flow-control reservations
    (``FlowControl.reserve`` / ``QueryMachine.reserve_items``).  A
    token reaching the scope's normal exit means some path leaks
    reserved quota — the ``inflight + reserved <= limit`` invariant
    then decays monotonically until the query wedges.
"""

import ast

from .dataflow import ForwardDataflow
from .guards import dotted_parts, _key


# ---------------------------------------------------------------------------
# RPR006 support: set-typed value tracking
# ---------------------------------------------------------------------------

#: ``set`` methods returning another set.
_SET_PRODUCING_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference", "copy",
})


class SetTypeAnalysis(ForwardDataflow):
    """Track keys that *must* hold a set / set-keyed dict.

    The fact is ``(sets, setdicts)`` — two frozensets of dotted keys.
    ``sets`` holds values of type ``set``/``frozenset``; ``setdicts``
    holds dicts whose keys came from a set (``dict.fromkeys(s)``, dict
    comprehensions over a set), so ``.keys()``/``.items()``/``.values()``
    views inherit the nondeterministic order.

    *set_methods* optionally names methods of the enclosing class whose
    return value is known to be a set (``self._helper()`` call sites
    then classify as sets); *seed_attrs* pre-loads ``self.<attr>`` keys
    known to hold sets (assigned set literals anywhere in the class).
    """

    def __init__(self, set_methods=(), seed_attrs=()):
        self.set_methods = frozenset(set_methods)
        self.seed_attrs = frozenset(seed_attrs)

    def initial(self):
        return (frozenset(self.seed_attrs), frozenset())

    def join(self, a, b):
        return (a[0] & b[0], a[1] & b[1])

    def transfer(self, elem, fact):
        kind, node = elem
        if kind == "bind":
            return self._invalidate_target(fact, node)
        if kind == "loop-iter":
            # The loop target is invalidated by the head's bind elem.
            return fact
        if kind != "stmt":
            return fact
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            return self._assign(fact, node.targets[0], node.value)
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return self._assign(fact, node.target, node.value)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                fact = self._invalidate_target(fact, target)
            return fact
        if isinstance(node, ast.Delete):
            for target in node.targets:
                fact = self._invalidate_target(fact, target)
            return fact
        return fact

    # -- helpers -------------------------------------------------------
    def _assign(self, fact, target, value):
        fact = self._invalidate_target(fact, target)
        key = _key(target)
        if key is None:
            return fact
        sets, setdicts = fact
        classification = self.classify(value, fact)
        if classification == "set":
            sets = sets | {key}
        elif classification == "setdict":
            setdicts = setdicts | {key}
        return (sets, setdicts)

    def _invalidate_target(self, fact, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                fact = self._invalidate_target(fact, element)
            return fact
        if isinstance(target, ast.Starred):
            return self._invalidate_target(fact, target.value)
        key = _key(target)
        if key is None:
            return fact
        prefix = key + "."
        sets, setdicts = fact
        sets = frozenset(k for k in sets
                         if k != key and not k.startswith(prefix))
        setdicts = frozenset(k for k in setdicts
                             if k != key and not k.startswith(prefix))
        return (sets, setdicts)

    def classify(self, expr, fact):
        """Classify *expr* as "set", "setdict", or None (unknown)."""
        sets, setdicts = fact
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, (ast.Name, ast.Attribute)):
            key = _key(expr)
            if key in sets:
                return "set"
            if key in setdicts:
                return "setdict"
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return "set"
            if isinstance(func, ast.Attribute):
                # set-producing methods on a known set
                if func.attr in _SET_PRODUCING_METHODS \
                        and self.classify(func.value, fact) == "set":
                    return "set"
                # dict.fromkeys(some_set) -> keys iterate in set order
                if func.attr == "fromkeys" and expr.args \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id == "dict" \
                        and self.classify(expr.args[0], fact) == "set":
                    return "setdict"
                # self._helper() where _helper is known to return a set
                chain = dotted_parts(func)
                if chain is not None and len(chain) == 2 \
                        and chain[0] == "self" \
                        and chain[1] in self.set_methods:
                    return "set"
            return None
        if isinstance(expr, ast.BinOp) \
                and isinstance(expr.op, (ast.BitOr, ast.BitAnd,
                                         ast.BitXor, ast.Sub)):
            if self.classify(expr.left, fact) == "set" \
                    or self.classify(expr.right, fact) == "set":
                return "set"
            return None
        if isinstance(expr, ast.IfExp):
            if self.classify(expr.body, fact) == "set" \
                    and self.classify(expr.orelse, fact) == "set":
                return "set"
            return None
        if isinstance(expr, ast.DictComp) and expr.generators:
            first = expr.generators[0]
            if self.classify(first.iter, fact) == "set":
                return "setdict"
            return None
        return None

    def classify_iterable(self, expr, fact):
        """Classify a ``for``-loop iterable, seeing through dict views.

        Returns "set" / "setdict-view" / None.  ``sorted(...)`` and
        ``list(...)``/``tuple(...)`` wrappers normalize the order, so
        they classify as None by construction.
        """
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in ("keys", "values", "items") \
                    and not expr.args:
                if self.classify(expr.func.value, fact) == "setdict":
                    return "setdict-view"
                return None
        classification = self.classify(expr, fact)
        return "set" if classification == "set" else None


def class_set_model(class_node):
    """Pre-pass over a class body: seed attrs and set-returning methods.

    Returns ``(set_attrs, set_methods)``:

    * ``set_attrs`` — every ``self.<attr>`` assigned a syntactic set
      expression somewhere in the class and never anything else-typed
      we can see; used to seed per-method initial facts.
    * ``set_methods`` — methods whose every ``return <value>``
      classifies as a set under the seeded analysis (and at least one
      valued return exists).  One level deep, no fixpoint: enough to
      catch helper methods like ``_higher_neighbors`` returning a
      built set.
    """
    candidate = {}
    probe = SetTypeAnalysis()
    for node in ast.walk(class_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                chain = dotted_parts(target)
                if chain is None or len(chain) != 2 or chain[0] != "self":
                    continue
                is_set = probe.classify(
                    value, (frozenset(), frozenset())) == "set"
                seen = candidate.get(chain[1])
                candidate[chain[1]] = is_set if seen is None \
                    else (seen and is_set)
    set_attrs = frozenset(
        "self." + attr for attr, ok in candidate.items() if ok
    )

    set_methods = set()
    for stmt in class_node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        returns = [node for node in ast.walk(stmt)
                   if isinstance(node, ast.Return)]
        valued = [node for node in returns if node.value is not None]
        if not valued or len(valued) != len(returns):
            continue
        analysis = SetTypeAnalysis(seed_attrs=set_attrs)
        cfg, entry_facts = analysis.analyze(stmt.body)
        facts_at = _facts_at_stmts(analysis, cfg, entry_facts)
        if all(
            analysis.classify(node.value,
                              facts_at.get(id(node),
                                           (frozenset(), frozenset())))
            == "set"
            for node in valued
        ):
            set_methods.add(stmt.name)
    return set_attrs, frozenset(set_methods)


def _facts_at_stmts(analysis, cfg, entry_facts):
    """Map ``id(stmt) -> fact`` holding just before each stmt element."""
    facts = {}
    for block in cfg.blocks:
        fact = entry_facts[block.id]
        if fact is None:
            fact = analysis.initial()
        for elem in block.elems:
            kind, node = elem
            facts.setdefault(id(node), fact)
            fact = analysis.transfer(elem, fact)
    return facts


# ---------------------------------------------------------------------------
# RPR007 support: reservation-pairing tracking
# ---------------------------------------------------------------------------

#: Call-chain tails that open a reservation / close one.
RESERVE_SEGMENTS = frozenset({"reserve", "reserve_items"})
RELEASE_SEGMENTS = frozenset({"release", "end_batch"})


class ReservationToken(tuple):
    """(line, col, base, holder) — one syntactic reservation site.

    ``holder`` is the local name the grant was stored into ("" when the
    call's result is dropped); releases and ownership transfers are
    recognized through it.
    """
    __slots__ = ()

    @property
    def line(self):
        return self[0]

    @property
    def base(self):
        return self[2]

    @property
    def holder(self):
        return self[3]


def _call_role(node, aliases):
    """Classify a call as "reserve"/"release"/None via its chain tail."""
    if not isinstance(node, ast.Call):
        return None
    chain = dotted_parts(node.func)
    if chain is None:
        return None
    if len(chain) == 1:
        return aliases.get(chain[0])
    if chain[-1] in RESERVE_SEGMENTS:
        return "reserve"
    if chain[-1] in RELEASE_SEGMENTS:
        return "release"
    return None


def call_aliases(body):
    """Map local alias names to reserve/release roles.

    The generated kernels prebind methods for speed (``reserve =
    rt.reserve_items``); a pre-pass over plain assignments lets the
    analysis see through that.
    """
    aliases = {}
    for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        chain = dotted_parts(node.value)
        if chain is None or len(chain) < 2:
            continue
        if chain[-1] in RESERVE_SEGMENTS:
            aliases[target.id] = "reserve"
        elif chain[-1] in RELEASE_SEGMENTS:
            aliases[target.id] = "release"
    return aliases


def _names_in(expr):
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name)}


class ReservationAnalysis(ForwardDataflow):
    """May-analysis: the fact is the frozenset of possibly-open tokens.

    Joins with union — a reservation open on *any* path into a block is
    still the caller's responsibility.  Tokens close when:

    * a release-role call names their holder among its arguments (a
      release call naming no tracked holder conservatively closes all
      tokens — the analysis favors false negatives over noise);
    * a ``return`` expression references the holder — ownership moves
      to the caller (``reserve_items`` itself ends with
      ``return room + slots * bulk``);
    * a branch proves the grant was zero: the false edge of a
      truthiness test on the holder, or the true edge of
      ``holder == 0`` / ``<= 0`` / ``< 1``.

    Findings are the tokens still open in the fact entering the
    normal-exit block; the raise exit is exempt (an exception already
    abandons the machine's quota accounting to the abort path).
    """

    def __init__(self, aliases=None):
        self.aliases = aliases or {}

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, elem, fact):
        kind, node = elem
        if kind == "bind":
            return fact
        if kind in ("test", "expr", "loop-iter"):
            target_expr = node.iter if kind == "loop-iter" else node
            return self._scan_expr_calls(target_expr, fact, holder=None)
        if kind != "stmt":
            return fact
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and node.value is not None:
            fact = self._scan_expr_calls(node.value, fact,
                                         holder=node.targets[0])
            return self._rehome(node, fact)
        if isinstance(node, ast.Return):
            if node.value is not None:
                fact = self._scan_expr_calls(node.value, fact, holder=None)
                # Ownership transfer: returning a value derived from the
                # holder hands the reservation to the caller.
                returned = _names_in(node.value)
                fact = frozenset(t for t in fact
                                 if not t[3] or t[3] not in returned)
            return fact
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested scopes are analyzed separately; a reserve inside a
            # nested def does not open a token in the enclosing frame.
            return fact
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                fact = self._apply_call(child, fact, holder=None)
        return fact

    def refine(self, test, polarity, fact):
        zero_holders = self._proven_zero(test, polarity)
        if zero_holders:
            fact = frozenset(t for t in fact if t[3] not in zero_holders)
        return fact

    # -- helpers -------------------------------------------------------
    def _scan_expr_calls(self, expr, fact, holder):
        """Apply every call in *expr*; the outermost call binds *holder*."""
        outer = expr if isinstance(expr, ast.Call) else None
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                fact = self._apply_call(
                    child, fact, holder=holder if child is outer else None
                )
        return fact

    def _apply_call(self, node, fact, holder):
        role = _call_role(node, self.aliases)
        if role == "reserve":
            holder_name = holder.id \
                if isinstance(holder, ast.Name) else ""
            base = dotted_parts(node.func)
            token = ReservationToken((
                getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
                ".".join(base) if base else "?", holder_name,
            ))
            return fact | {token}
        if role == "release":
            if not fact:
                return fact
            arg_names = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                arg_names |= _names_in(arg)
            matched = frozenset(t for t in fact if t[3] and t[3] in arg_names)
            if matched:
                return fact - matched
            # A release that names no tracked holder (e.g. end_batch
            # over a dict of grants) conservatively closes everything.
            return frozenset()
        return fact

    def _rehome(self, assign, fact):
        """Track grants moved into containers: ``resv[dest] = rem - 1``
        re-homes ``rem``'s token onto ``resv``; ``x = rem`` onto ``x``."""
        target = assign.targets[0]
        value_names = _names_in(assign.value)
        holders = {t[3] for t in fact if t[3]}
        moved = holders & value_names
        if not moved:
            return fact
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            new_holder = target.value.id
        elif isinstance(target, ast.Name):
            new_holder = target.id
        else:
            return fact
        rehomed = set()
        for token in fact:
            if token[3] in moved:
                rehomed.add(ReservationToken(
                    (token[0], token[1], token[2], new_holder)))
            else:
                rehomed.add(token)
        return frozenset(rehomed)

    @staticmethod
    def _proven_zero(test, polarity):
        """Holder names proven to hold a zero/empty grant on this edge."""
        holders = set()
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return ReservationAnalysis._proven_zero(
                test.operand, not polarity)
        if isinstance(test, ast.Name):
            if polarity is False:
                holders.add(test.id)
            return holders
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            name, const = None, None
            if isinstance(left, ast.Name) and isinstance(right, ast.Constant):
                name, const, flipped = left.id, right.value, False
            elif isinstance(right, ast.Name) \
                    and isinstance(left, ast.Constant):
                name, const, flipped = right.id, left.value, True
            else:
                return holders
            if not isinstance(const, (int, float)) \
                    or isinstance(const, bool):
                return holders
            # Normalize to "name OP const".
            if flipped:
                swap = {ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                        ast.LtE: ast.GtE, ast.GtE: ast.LtE}
                op_type = swap.get(type(op), type(op))
            else:
                op_type = type(op)
            proves_zero_true = (
                (op_type is ast.Eq and const == 0)
                or (op_type is ast.LtE and const <= 0)
                or (op_type is ast.Lt and const <= 1)
            )
            proves_zero_false = (
                (op_type is ast.NotEq and const == 0)
                or (op_type is ast.Gt and const >= 0)
                or (op_type is ast.GtE and const >= 1)
            )
            if polarity is True and proves_zero_true:
                holders.add(name)
            elif polarity is False and proves_zero_false:
                holders.add(name)
        return holders

    # -- entry point ---------------------------------------------------
    def leaks(self, body):
        """Open tokens on some path reaching the scope's normal exit."""
        cfg, entry_facts = self.analyze(list(body))
        open_tokens = entry_facts[cfg.exit.id]
        return sorted(open_tokens) if open_tokens else []
