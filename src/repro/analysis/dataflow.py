"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

One worklist engine serves every flow-sensitive rule: clients subclass
:class:`ForwardDataflow` and define the lattice (``initial``/``join``),
the per-element transfer function, and optionally ``refine`` to
sharpen facts along branch edges (e.g. "``x is not None`` held on the
true edge").  Must-analyses join with intersection (guard domination),
may-analyses with union (a reservation *may* still be open).

The engine is deliberately small: facts are immutable values, blocks
re-enter the worklist when their entry fact changes, and termination
follows from the client's lattice being finite with a monotone join —
true for every client here (frozensets over program identifiers).
"""

import ast

from .cfg import EXC, build_cfg


class ForwardDataflow:
    """Subclass and override the four lattice hooks."""

    def initial(self):
        """Fact at scope entry."""
        raise NotImplementedError

    def join(self, a, b):
        """Merge facts where control-flow paths meet."""
        raise NotImplementedError

    def transfer(self, elem, fact):
        """Apply one block element ``(kind, node)`` to *fact*."""
        raise NotImplementedError

    def refine(self, test, polarity, fact):
        """Sharpen *fact* along a True/False branch edge of *test*."""
        return fact

    # -- engine --------------------------------------------------------
    def run(self, cfg):
        """Fixpoint: returns ``{block_id: entry_fact}`` (None=unreached)."""
        entry_facts = {block.id: None for block in cfg.blocks}
        entry_facts[cfg.entry.id] = self.initial()
        worklist = [cfg.entry]
        while worklist:
            block = worklist.pop()
            fact = entry_facts[block.id]
            if fact is None:
                continue
            out = self.block_exit(block, fact)
            for succ, polarity, test in block.succ:
                if polarity == EXC:
                    # The source may have executed any prefix of its
                    # elements when the exception surfaced: be safe and
                    # merge its entry with its exit.
                    edge_fact = self.join(fact, out)
                elif polarity is None:
                    edge_fact = out
                else:
                    edge_fact = self.refine(test, polarity, out)
                old = entry_facts[succ.id]
                new = edge_fact if old is None else self.join(old, edge_fact)
                if new != old:
                    entry_facts[succ.id] = new
                    worklist.append(succ)
        return entry_facts

    def block_exit(self, block, fact):
        """Fold ``transfer`` over the block's elements."""
        for elem in block.elems:
            fact = self.transfer(elem, fact)
        return fact

    def analyze(self, body):
        """Convenience: build the CFG of *body* and run to fixpoint."""
        cfg = build_cfg(body)
        return cfg, self.run(cfg)


def iter_scopes(tree):
    """Yield ``(scope_node, body)`` for a module and every nested scope.

    Scopes are the units CFGs are built over: the module itself, then
    each function/async-function/class body (in source order).  Nested
    ``def``/``class`` statements appear in their enclosing scope's CFG
    as plain elements but their bodies are only visited via their own
    scope entry here.
    """
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node,
                      (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node, node.body


def assigned_names(target):
    """Names (re)bound by an assignment target — facts to invalidate."""
    names = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute) or isinstance(node, ast.Subscript):
            # ``self.x = ...`` rebinds the attribute chain, handled by
            # clients via dotted keys; the base name itself is untouched.
            pass
    return names
