"""Statement-level control-flow graphs for the analysis framework.

Every flow-sensitive rule in :mod:`repro.analysis` used to re-implement
its own statement walk (the PR 4 prefix-guard heuristic).  This module
builds one shared CFG per scope — module body, function body, class
body — over which :mod:`repro.analysis.dataflow` runs forward fixpoint
analyses.  The graph models the control flow that matters for
must/may facts:

* branches (``if``/``elif``/``else``, ``while``/``for`` with ``else``
  clauses, ``match``), with each branch edge annotated by the test
  expression and its polarity so analyses can refine facts per edge;
* loops, including ``break``/``continue`` and back edges;
* early exits: ``return`` and ``raise`` edges leave through distinct
  exit blocks (``exit`` for normal completion, ``raise_exit`` for
  propagating exceptions), so "on every path to function exit" has a
  precise meaning;
* ``try``/``except``/``else``/``finally``: exception edges connect every
  block of a ``try`` body to its handlers, and every abrupt exit from
  inside a ``try`` (return/break/continue/raise) flows through a
  *duplicate* of each enclosing ``finally`` body before reaching its
  target — the duplication keeps the normal-completion path's facts
  separate from the abrupt paths', which is what makes guard domination
  through ``try/finally`` precise instead of merely conservative.

Nested function and class bodies are **not** inlined: they execute at
another time, so each is its own scope/CFG (see
:func:`repro.analysis.dataflow.iter_scopes`).  Their ``def`` statement
appears in the enclosing graph as an ordinary element (defaults and
decorators evaluate in the enclosing scope).

Blocks hold a list of *elements* — ``(kind, node)`` pairs — rather than
raw statements, so analyses see evaluation order without re-deriving it:

``("stmt", node)``
    a simple statement executed in full (includes ``Return``/``Raise``,
    whose outgoing edges the graph already encodes);
``("test", expr)``
    a branch test evaluated at the end of the block; outgoing edges
    carry ``(polarity, expr)``;
``("expr", expr)``
    a bare expression evaluated for control flow (loop iterables,
    ``with`` context managers, ``match`` subjects);
``("bind", target)``
    a name-binding event that invalidates facts about the target (loop
    targets, ``with ... as`` vars, ``except ... as`` names).
"""

import ast

#: Edge polarity marking an exception edge (source may have executed
#: only partially; dataflow joins the block's entry and exit facts).
EXC = "exc"


class Block:
    """One basic block: straight-line elements plus annotated edges."""

    __slots__ = ("id", "elems", "succ")

    def __init__(self, block_id):
        self.id = block_id
        self.elems = []
        #: Outgoing edges: ``(block, polarity, test)`` with polarity one
        #: of None (unconditional), True/False (branch), or :data:`EXC`.
        self.succ = []

    def __repr__(self):
        return "Block(%d, %d elems, -> %s)" % (
            self.id, len(self.elems), [b.id for b, _, _ in self.succ],
        )


class CFG:
    """The graph of one scope: entry, blocks, and the two exits."""

    __slots__ = ("entry", "exit", "raise_exit", "blocks")

    def __init__(self, entry, exit_block, raise_exit, blocks):
        self.entry = entry
        #: Normal completion: every ``return`` and the body's fall-off.
        self.exit = exit_block
        #: Exception propagation out of the scope.
        self.raise_exit = raise_exit
        self.blocks = blocks


def build_cfg(body):
    """Build the CFG of one scope *body* (a list of statements)."""
    return _Builder().build(body)


class _LoopFrame:
    __slots__ = ("head", "after")

    def __init__(self, head, after):
        self.head = head
        self.after = after


class _FinallyFrame:
    __slots__ = ("stmts",)

    def __init__(self, stmts):
        self.stmts = stmts


class _Builder:
    """Single-pass recursive CFG construction.

    ``visit_body`` threads the "current" block through the statement
    list and returns the block where control falls off the end, or None
    when every path already left (return/raise/break/continue).
    """

    def __init__(self):
        self.blocks = []
        self.exit = self._new()
        self.raise_exit = self._new()

    # -- plumbing ------------------------------------------------------
    def _new(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    @staticmethod
    def _edge(src, dst, polarity=None, test=None):
        src.succ.append((dst, polarity, test))

    def build(self, body):
        entry = self._new()
        end = self.visit_body(body, entry, ())
        if end is not None:
            self._edge(end, self.exit)
        return CFG(entry, self.exit, self.raise_exit, self.blocks)

    # -- statement dispatch --------------------------------------------
    def visit_body(self, body, cur, context):
        for stmt in body:
            if cur is None:
                # Unreachable code after an unconditional exit; build it
                # anyway (rules still scan it) on a detached block.
                cur = self._new()
            cur = self.visit_stmt(stmt, cur, context)
        return cur

    def visit_stmt(self, stmt, cur, context):
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cur, context)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, cur, context)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cur, context)
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            return self._visit_try(stmt, cur, context)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, cur, context)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, cur, context)
        if isinstance(stmt, ast.Return):
            cur.elems.append(("stmt", stmt))
            self._abrupt_exit(cur, context, self.exit, through_all=True)
            return None
        if isinstance(stmt, ast.Raise):
            cur.elems.append(("stmt", stmt))
            self._abrupt_exit(cur, context, self.raise_exit,
                              through_all=True)
            return None
        if isinstance(stmt, ast.Break):
            loop, finallies = self._innermost_loop(context)
            if loop is not None:
                self._abrupt_chain(cur, finallies, loop.after)
            return None
        if isinstance(stmt, ast.Continue):
            loop, finallies = self._innermost_loop(context)
            if loop is not None:
                self._abrupt_chain(cur, finallies, loop.head)
            return None
        # Simple statement: straight-line element.
        cur.elems.append(("stmt", stmt))
        return cur

    # -- structured statements -----------------------------------------
    def _visit_if(self, stmt, cur, context):
        cur.elems.append(("test", stmt.test))
        after = self._new()
        then_entry = self._new()
        self._edge(cur, then_entry, True, stmt.test)
        then_end = self.visit_body(stmt.body, then_entry, context)
        if then_end is not None:
            self._edge(then_end, after)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(cur, else_entry, False, stmt.test)
            else_end = self.visit_body(stmt.orelse, else_entry, context)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(cur, after, False, stmt.test)
        return after

    def _visit_while(self, stmt, cur, context):
        head = self._new()
        after = self._new()
        self._edge(cur, head)
        head.elems.append(("test", stmt.test))
        body_entry = self._new()
        self._edge(head, body_entry, True, stmt.test)
        loop_context = context + (_LoopFrame(head, after),)
        body_end = self.visit_body(stmt.body, body_entry, loop_context)
        if body_end is not None:
            self._edge(body_end, head)
        # ``while True:`` (any constant-truthy test) can only exit via
        # break — modelling the false edge would leak facts down an
        # impossible path (the generated bulk kernels are while-True
        # driver loops whose every real exit is a return).
        exhausts = not (isinstance(stmt.test, ast.Constant)
                       and stmt.test.value)
        if stmt.orelse:
            # else runs only when the loop exhausts (test false), and is
            # skipped by break — which already targets ``after``.
            if exhausts:
                else_entry = self._new()
                self._edge(head, else_entry, False, stmt.test)
                else_end = self.visit_body(stmt.orelse, else_entry,
                                           context)
                if else_end is not None:
                    self._edge(else_end, after)
        elif exhausts:
            self._edge(head, after, False, stmt.test)
        return after

    def _visit_for(self, stmt, cur, context):
        # The iterable is evaluated once, in the current block; the
        # whole For node rides along so iteration-order rules can pair
        # the iterable's type with the loop body.
        cur.elems.append(("loop-iter", stmt))
        head = self._new()
        after = self._new()
        self._edge(cur, head)
        # The loop target rebinds on every iteration — including the
        # iteration that discovers exhaustion never happened, so the
        # invalidation sits in the head where both edges see it.
        head.elems.append(("bind", stmt.target))
        body_entry = self._new()
        self._edge(head, body_entry)
        loop_context = context + (_LoopFrame(head, after),)
        body_end = self.visit_body(stmt.body, body_entry, loop_context)
        if body_end is not None:
            self._edge(body_end, head)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(head, else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry, context)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(head, after)
        return after

    def _visit_with(self, stmt, cur, context):
        for item in stmt.items:
            cur.elems.append(("expr", item.context_expr))
            if item.optional_vars is not None:
                cur.elems.append(("bind", item.optional_vars))
        return self.visit_body(stmt.body, cur, context)

    def _visit_match(self, stmt, cur, context):
        cur.elems.append(("expr", stmt.subject))
        after = self._new()
        exhaustive = False
        for case in stmt.cases:
            case_entry = self._new()
            self._edge(cur, case_entry)
            for name in _pattern_names(case.pattern):
                case_entry.elems.append(
                    ("bind", ast.Name(id=name, ctx=ast.Store()))
                )
            if case.guard is not None:
                case_entry.elems.append(("test", case.guard))
            case_end = self.visit_body(case.body, case_entry, context)
            if case_end is not None:
                self._edge(case_end, after)
            if _is_wildcard(case.pattern) and case.guard is None:
                exhaustive = True
        if not exhaustive:
            self._edge(cur, after)
        return after

    def _visit_try(self, stmt, cur, context):
        handlers = getattr(stmt, "handlers", [])
        finalbody = stmt.finalbody
        after = self._new()

        handler_entries = [self._new() for _ in handlers]
        body_entry = self._new()
        self._edge(cur, body_entry)

        body_context = context
        if finalbody:
            body_context = body_context + (_FinallyFrame(finalbody),)
        first_body_block = len(self.blocks)
        body_end = self.visit_body(stmt.body, body_entry, body_context)
        body_blocks = [body_entry] + self.blocks[first_body_block:]

        # An exception can surface at any point in the try body: edge
        # every body block into every handler (dataflow joins the
        # block's entry and exit facts across an EXC edge).
        for block in body_blocks:
            for entry in handler_entries:
                self._edge(block, entry, EXC)
            if not handlers and finalbody:
                # No handler: the exception runs the finally body and
                # propagates.  Duplicate finalbody on the exception path
                # so its facts never merge into normal completion.
                exc_final = self._new()
                self._edge(block, exc_final, EXC)
                exc_end = self.visit_body(list(finalbody), exc_final,
                                          context)
                if exc_end is not None:
                    self._edge(exc_end, self.raise_exit)

        # Normal completion of the body: else clause, then finally.
        if body_end is not None:
            if stmt.orelse:
                body_end = self.visit_body(stmt.orelse, body_end,
                                           body_context)
            if body_end is not None:
                if finalbody:
                    body_end = self.visit_body(list(finalbody), body_end,
                                               context)
                if body_end is not None:
                    self._edge(body_end, after)

        # Handlers: bind the exception name, run the body, then the
        # finally body (its own duplicate per handler path).
        for handler, entry in zip(handlers, handler_entries):
            if handler.name:
                entry.elems.append(
                    ("bind", ast.Name(id=handler.name, ctx=ast.Store()))
                )
            handler_context = context
            if finalbody:
                handler_context = handler_context \
                    + (_FinallyFrame(finalbody),)
            handler_end = self.visit_body(handler.body, entry,
                                          handler_context)
            if handler_end is not None:
                if finalbody:
                    handler_end = self.visit_body(list(finalbody),
                                                  handler_end, context)
                if handler_end is not None:
                    self._edge(handler_end, after)
        return after

    # -- abrupt-exit plumbing ------------------------------------------
    @staticmethod
    def _innermost_loop(context):
        """The closest loop frame plus the finallies inside it."""
        finallies = []
        for frame in reversed(context):
            if isinstance(frame, _LoopFrame):
                return frame, finallies
            finallies.append(frame)
        return None, finallies

    def _abrupt_exit(self, cur, context, target, through_all=False):
        """Route return/raise through every enclosing finally body."""
        finallies = [f for f in reversed(context)
                     if isinstance(f, _FinallyFrame)]
        self._abrupt_chain(cur, finallies, target)

    def _abrupt_chain(self, cur, finallies, target):
        """Chain duplicated finally bodies from *cur* to *target*."""
        for frame in finallies:
            if not isinstance(frame, _FinallyFrame):
                continue
            entry = self._new()
            self._edge(cur, entry)
            end = self.visit_body(list(frame.stmts), entry, ())
            if end is None:
                return  # the finally body itself left (return/raise)
            cur = end
        self._edge(cur, target)


def _pattern_names(pattern):
    """Names bound by a match-case pattern (facts to invalidate)."""
    names = []
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) \
                and node.name is not None:
            names.append(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest is not None:
            names.append(node.rest)
    return names


def _is_wildcard(pattern):
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None
