"""RPR008 — the kernel-codegen audit.

The bulk kernels (:mod:`repro.runtime.kernels`) are *generated source*:
``compile_plan_kernels`` specializes one function per plan stage, and
the runtime differential (CI's bulk-kernel parity step) asserts the
compiled path charges bit-identical deterministic metrics to the
micro-stepped cursor path.  That differential only covers the plans the
gate happens to execute, and it reports *that* a counter diverged, not
*where the codegen went wrong*.  This rule is the static complement:

1. compile every plan of the bench workload matrix (the same matrix
   ``tests/test_kernels.py`` differentials run over), in **both**
   ``profiled=`` variants;
2. parse each generated kernel's attached ``__source__``;
3. verify every counter-charge site present in the micro-step handlers
   — ``worker._vertex_function`` (stage visits/passes), the
   ``hops.py`` cursor ``advance`` methods (profiler ``scanned``),
   ``machine.route`` (profiler ``emitted``) and ``machine.emit_result``
   (``results_emitted`` + profiler ``emitted``) — appears in the kernel
   **exactly** the expected number of times, that the unprofiled
   variant contains zero profiler references (the zero-cost-off claim
   at codegen level), that generated trace calls are guarded, and that
   the generated reservation protocol cannot leak
   (:class:`~repro.analysis.flows.ReservationAnalysis` over the kernel
   body).

A pure-AST cross-check pins the handler side: if a handler starts
charging a counter family this audit does not model, the audit itself
is flagged as drifted — the table below and the codegen must move
together.

Unlike every other rule, this one *imports and executes* repository
code (plan compilation pulls in numpy via the graph layer).  When those
imports are unavailable the dynamic half degrades to a skip — the
pure-AST handler cross-check still runs — so ``repro lint`` keeps
working in a dependency-free environment.
"""

import ast

from repro.analysis.core import Rule, enclosing_symbols
from repro.analysis.flows import ReservationAnalysis, call_aliases
from repro.analysis.guards import UnguardedCallScanner, dotted_parts

#: Counter families the audit models (the vocabulary of the handler
#: cross-check and the per-kernel expectation table).
_FAMILIES = ("stage_visits", "stage_passes", "scanned", "emitted",
             "results_emitted")

#: What each micro-step handler charges.  ``hops.py`` cursor ``advance``
#: methods may charge a subset (the output cursor charges nothing).
_HANDLER_CHARGES = {
    ("repro.runtime.worker", "_vertex_function"):
        frozenset({"stage_visits", "stage_passes"}),
    ("repro.runtime.hops", "advance"): frozenset({"scanned"}),
    ("repro.runtime.machine", "route"): frozenset({"emitted"}),
    ("repro.runtime.machine", "emit_result"):
        frozenset({"results_emitted", "emitted"}),
}

#: Tracer-ish handles that must stay guarded inside generated source.
#: ``profiler`` is deliberately absent: profiled kernels are installed
#: iff a profiler is attached, so their charges are guard-free by
#: contract (and the unprofiled variant must not mention it at all).
_KERNEL_TRACERISH = frozenset({"trace", "tracer", "telemetry"})

#: Process-wide cache of the (expensive, deterministic) dynamic audit:
#: raw ``(message, pattern)`` problem tuples, or None before first run.
_AUDIT_CACHE = None


def _reset_audit_cache():
    """Test hook: force the next check to re-run the dynamic audit."""
    global _AUDIT_CACHE
    _AUDIT_CACHE = None


class KernelCodegenAuditRule(Rule):
    """RPR008: generated kernels charge what the handlers charge."""

    id = "RPR008"
    title = "kernel-codegen audit: generated counter charges match handlers"
    severity = "error"
    project_wide = True
    rationale = (
        "The bulk kernels are generated source, and the deterministic "
        "metrics they charge (stage visits/passes, profiler scanned/"
        "emitted cardinalities, result counts, micro-ops) are exactly "
        "what the regression, parity, and drift gates compare. The "
        "runtime differential proves equality for executed plans; this "
        "audit proves the *shape*: it compiles both profiled variants of "
        "every plan in the bench matrix, parses the generated source, "
        "and checks each handler-side charge site appears in the kernel "
        "exactly once per semantic event — plus that the unprofiled "
        "variant contains zero profiler references, generated trace "
        "calls stay guarded, and the generated reservation protocol "
        "releases on every path. A pure-AST cross-check over worker.py/"
        "hops.py/machine.py fails the audit itself when a handler grows "
        "a counter family this table does not model."
    )
    example = (
        "# codegen must mirror machine.emit_result exactly once:\n"
        "#   rt.collector.add(ctx)\n"
        "#   M.results_emitted += 1\n"
        "#   rt.profiler.emitted[-1] += 1   (profiled variant only)\n"
        "# a second charge, or a dropped one, fails the audit with the\n"
        "# workload/stage/counter that diverged."
    )

    def check_project(self, modules):
        kernels_module = None
        by_name = {}
        for module in modules:
            by_name[module.name] = module
            if module.name == "repro.runtime.kernels":
                kernels_module = module
        if kernels_module is None:
            return
        symbols = enclosing_symbols(kernels_module.tree)
        anchor = kernels_module.tree.body[0] if kernels_module.tree.body \
            else kernels_module.tree
        for message, pattern in _handler_drift(by_name):
            yield self.finding(kernels_module, anchor, message, pattern,
                               symbols)
        for message, pattern in _dynamic_audit():
            yield self.finding(kernels_module, anchor, message, pattern,
                               symbols)


# ---------------------------------------------------------------------------
# Handler-side cross-check (pure AST)
# ---------------------------------------------------------------------------

def _charge_family(target):
    """The counter family an AugAssign *target* charges, or None."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    chain = dotted_parts(node)
    if chain is None:
        return None
    if "profiler" in chain[:-1]:
        return chain[-1]
    if chain[-1] in ("stage_visits", "stage_passes", "results_emitted"):
        return chain[-1]
    return None


def _handler_drift(modules_by_name):
    """Yield problems when handler charge sites drift from the table."""
    expected_by_module = {}
    for (module_name, symbol), families in _HANDLER_CHARGES.items():
        expected_by_module.setdefault(module_name, {})[symbol] = families
    for module_name, table in sorted(expected_by_module.items()):
        module = modules_by_name.get(module_name)
        if module is None:
            continue
        observed = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            families = set()
            for child in ast.walk(node):
                if isinstance(child, ast.AugAssign):
                    family = _charge_family(child.target)
                    if family is not None:
                        families.add(family)
            if families:
                observed.setdefault(node.name, set()).update(families)
        for symbol, families in sorted(observed.items()):
            expected = table.get(symbol)
            if expected is None:
                yield (
                    "handler %s.%s charges counter famil%s %s that the "
                    "kernel audit does not model — update the audit "
                    "table and the codegen together" % (
                        module_name, symbol,
                        "y" if len(families) == 1 else "ies",
                        ", ".join(sorted(families)),
                    ),
                    "audit-drift:%s.%s" % (module_name, symbol),
                )
            elif not families <= expected:
                extra = families - expected
                yield (
                    "handler %s.%s now also charges %s — the kernel "
                    "audit table (and the generated kernels) must be "
                    "updated to match" % (
                        module_name, symbol, ", ".join(sorted(extra)),
                    ),
                    "audit-drift:%s.%s" % (module_name, symbol),
                )


# ---------------------------------------------------------------------------
# Dynamic half: compile the bench plan matrix and audit each kernel
# ---------------------------------------------------------------------------

def _dynamic_audit():
    global _AUDIT_CACHE
    if _AUDIT_CACHE is None:
        try:
            _AUDIT_CACHE = tuple(_audit_plan_matrix())
        except ImportError:
            # Dependency-free environment (no numpy): the dynamic half
            # is skipped; CI installs numpy so the gate still runs it.
            _AUDIT_CACHE = ()
    return _AUDIT_CACHE


def _audit_plan_matrix():
    from repro.bench import WORKLOADS
    from repro.cluster.config import ClusterConfig
    from repro.pgql import parse_and_validate
    from repro.plan import PlannerOptions, SchedulingPolicy
    from repro.runtime.engine import PgxdAsyncEngine
    from repro.runtime.kernels import compile_plan_kernels
    from repro.workloads.random_graphs import seeded_workload
    from repro.workloads.skewed import skewed_workload

    problems = []
    for key, spec in WORKLOADS:
        config = ClusterConfig(num_machines=spec["machines"], seed=0)
        if spec.get("kind") == "planner":
            graph, queries = skewed_workload(
                config,
                num_persons=spec["persons"],
                num_bands=spec["bands"],
                num_songs=spec["songs"],
                fan_edges=spec["fans"],
                likes_edges=spec["likes"],
            )
            options = PlannerOptions(scheduling=SchedulingPolicy.COST)
        else:
            graph, queries = seeded_workload(
                config,
                num_vertices=spec["vertices"],
                num_edges=spec["edges"],
                num_queries=spec["queries"],
                query_edges=spec["query_edges"],
            )
            options = PlannerOptions()
        engine = PgxdAsyncEngine(graph, config)
        for index, query in enumerate(queries):
            if isinstance(query, str):
                query = parse_and_validate(query)
            plan = engine.plan(query, options)
            for profiled in (False, True):
                kernels = compile_plan_kernels(plan, profiled=profiled)
                for stage, kernel in zip(plan.stages,
                                         kernels.stage_kernels):
                    source = getattr(kernel, "__source__", None)
                    if source is None:
                        continue  # generic (cursor-backed) kernel
                    where = "%s[q%d] stage %d (%s, profiled=%s)" % (
                        key, index, stage.index, stage.hop.kind.value,
                        profiled,
                    )
                    problems.extend(_audit_kernel_source(
                        where, key, stage, profiled, source,
                    ))
    return problems


#: Expected call counts common to every specialized kernel kind.
_ZERO_CALLS = {"reserve": 0, "end_batch": 0, "route": 0,
               "collector_add": 0}


def _expected_counts(kind, profiled, source):
    """The expectation table: counter/call multiplicities per kernel.

    Mirrors the micro-step handlers: one visit + one pass per vertex
    function, ``scanned`` per inspected edge (profiled only), ``emitted``
    at every route-equivalent delivery point, ``results_emitted`` and
    the collector exactly once for OUTPUT, three inline ``ops +=``
    charge sites per kind, and the NEIGHBOR kernel's reservation
    protocol (one reserve, four exit-path end_batch calls, one route
    fallback).
    """
    counters = {
        "stage_visits": 1, "stage_passes": 1,
        "scanned": 0, "emitted": 0, "results_emitted": 0,
    }
    calls = dict(_ZERO_CALLS)
    ops, return_charges = 3, 0
    if kind == "neighbor":
        counters["scanned"] = 1 if profiled else 0
        counters["emitted"] = 2 if profiled else 0
        calls.update({"reserve": 1, "end_batch": 4, "route": 1})
        return_charges = 1
    elif kind == "vertex":
        edge_checked = "_EdgeRun(" in source
        counters["scanned"] = 1 if (profiled and edge_checked) else 0
        calls["route"] = 1
    elif kind == "output":
        counters["emitted"] = 1 if profiled else 0
        counters["results_emitted"] = 1
        calls["collector_add"] = 1
    return counters, calls, ops, return_charges


def _observed_counts(tree):
    """Count counter charges and protocol calls in a kernel's AST."""
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            chain = dotted_parts(node.value)
            if chain and len(chain) >= 2 and "profiler" in chain:
                aliases[node.targets[0].id] = chain[-1]
    counters = {family: 0 for family in _FAMILIES}
    calls = dict(_ZERO_CALLS)
    ops = return_charges = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) \
                    and node.target.id == "ops":
                ops += 1
                continue
            base = node.target
            while isinstance(base, ast.Subscript):
                base = base.value
            chain = dotted_parts(base)
            family = None
            if chain is not None:
                if len(chain) == 1 and chain[0] in aliases:
                    family = aliases[chain[0]]
                else:
                    family = _charge_family(node.target)
            if family in counters:
                counters[family] += 1
        elif isinstance(node, ast.Return) \
                and isinstance(node.value, ast.Tuple) \
                and node.value.elts:
            first = node.value.elts[0]
            if isinstance(first, ast.BinOp) \
                    and isinstance(first.left, ast.Name) \
                    and first.left.id == "ops":
                return_charges += 1
        elif isinstance(node, ast.Call):
            chain = dotted_parts(node.func)
            if chain is None:
                continue
            tail = chain[-1]
            if tail in ("reserve", "reserve_items"):
                calls["reserve"] += 1
            elif tail == "end_batch":
                calls["end_batch"] += 1
            elif tail == "route":
                calls["route"] += 1
            elif tail == "add" and len(chain) >= 2 \
                    and chain[-2] == "collector":
                calls["collector_add"] += 1
    return counters, calls, ops, return_charges


def _audit_kernel_source(where, workload, stage, profiled, source):
    """Audit one generated kernel; yields (message, pattern) problems."""
    kind = stage.hop.kind.value

    def problem(counter, detail):
        return (
            "%s: %s" % (where, detail),
            "kernel-audit:%s:%d:%s" % (workload, stage.index, counter),
        )

    if not profiled and "profiler" in source:
        yield problem(
            "profiler",
            "unprofiled kernel source references the profiler — the "
            "zero-cost-off claim requires zero profiling instructions",
        )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        yield problem("parse", "generated source does not parse: %s" % exc)
        return

    counters, calls, ops, return_charges = _observed_counts(tree)
    exp_counters, exp_calls, exp_ops, exp_returns = _expected_counts(
        kind, profiled, source)
    for family in _FAMILIES:
        if counters[family] != exp_counters[family]:
            yield problem(family, (
                "counter %s charged %d time(s), handlers imply exactly "
                "%d" % (family, counters[family], exp_counters[family])
            ))
    for name in sorted(exp_calls):
        if calls[name] != exp_calls[name]:
            yield problem(name, (
                "%s called %d time(s), expected exactly %d"
                % (name, calls[name], exp_calls[name])
            ))
    if ops != exp_ops:
        yield problem("ops", (
            "%d inline `ops +=` charge sites, expected exactly %d"
            % (ops, exp_ops)
        ))
    if return_charges != exp_returns:
        yield problem("ops-return", (
            "%d return-time op charges (`return ops + n`), expected "
            "exactly %d" % (return_charges, exp_returns)
        ))

    scanner = UnguardedCallScanner(
        lambda segment: segment.lstrip("_") in _KERNEL_TRACERISH
    )
    scanner.scan_module(tree)
    for _node, chain in scanner.found:
        yield problem("trace-guard", (
            "generated call %s() is not guarded by `is not None` on its "
            "handle" % ".".join(chain)
        ))

    for function in tree.body:
        if not isinstance(function, ast.FunctionDef):
            continue
        aliases = call_aliases(function.body)
        leaks = ReservationAnalysis(aliases).leaks(function.body)
        for line, _col, base, _holder in leaks:
            yield problem("reserve-leak", (
                "generated reservation from %s() at kernel line %d can "
                "reach kernel exit without end_batch" % (base, line)
            ))
