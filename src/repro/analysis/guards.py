"""Guard-domination analysis for the zero-cost-off contract (RPR002).

The runtime's observability contract (TXT1–TXT3, see ``repro.obs``) is
that a disabled tracer/telemetry handle costs exactly one pointer
comparison on every hot path: the handle is ``None`` and every
instrumentation site is dominated by an ``is not None`` test on it.
This module implements the flow-sensitive half of that check as a
client of the shared CFG + dataflow framework
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`): guard
facts are a *must* property, so :class:`GuardAnalysis` joins with set
intersection — a call is satisfied only when a dominating guard holds
on **every** control-flow path reaching it, through branches, loops,
``try``/``finally``, and early returns alike.

The analysis understands the guard shapes that occur in idiomatic
Python:

* ``if x is not None: x.emit(...)`` (including ``and`` conjunctions);
* ``x.emit(...) if x is not None else None`` (ternary);
* ``x is not None and x.emit(...)`` (short-circuit);
* ``x is None or x.emit(...)``;
* early exits — ``if x is None: return`` guards the rest of the block;
* ``assert x is not None``;
* guards on a *prefix* of the access chain: ``if self.telemetry is not
  None: self.telemetry.sampler.flush(...)`` is fine, because a non-None
  handle owns its sub-objects.

Reassigning a guarded name (``tracer = ...``) invalidates its guard —
including along loop back edges, which the old prefix-walk could not
see — and nested function/class scopes start with no guards: a closure
may run long after the guard was checked.
"""

import ast

from .dataflow import ForwardDataflow, iter_scopes


def dotted_parts(node):
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


def _key(node):
    parts = dotted_parts(node)
    return ".".join(parts) if parts else None


def _is_none(node):
    return isinstance(node, ast.Constant) and node.value is None


def positive_guards(test):
    """Expression keys proven non-None when *test* evaluates true."""
    guards = set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if isinstance(op, ast.IsNot):
            operand = left if _is_none(right) else (
                right if _is_none(left) else None
            )
            key = _key(operand) if operand is not None else None
            if key:
                guards.add(key)
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            guards |= positive_guards(value)
    elif isinstance(test, (ast.Name, ast.Attribute)):
        # Truthiness implies non-None.
        key = _key(test)
        if key:
            guards.add(key)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        guards |= negative_guards(test.operand)
    return guards


def negative_guards(test):
    """Expression keys proven non-None when *test* evaluates false."""
    guards = set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if isinstance(op, ast.Is):
            operand = left if _is_none(right) else (
                right if _is_none(left) else None
            )
            key = _key(operand) if operand is not None else None
            if key:
                guards.add(key)
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        # The whole Or is false only if every operand is false.
        for value in test.values:
            guards |= negative_guards(value)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        guards |= positive_guards(test.operand)
    return guards


def _invalidated(fact, key):
    """Drop *key* and everything rooted under it from a guard fact."""
    if key is None:
        return fact
    prefix = key + "."
    stale = {g for g in fact if g == key or g.startswith(prefix)}
    return fact - stale if stale else fact


def _invalidate_target(fact, target):
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            fact = _invalidate_target(fact, element)
        return fact
    if isinstance(target, ast.Starred):
        return _invalidate_target(fact, target.value)
    return _invalidated(fact, _key(target))


class GuardAnalysis(ForwardDataflow):
    """Must-analysis over guard keys: intersection join, edge refinement."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a & b

    def refine(self, test, polarity, fact):
        if polarity is True:
            return fact | frozenset(positive_guards(test))
        return fact | frozenset(negative_guards(test))

    def transfer(self, elem, fact):
        kind, node = elem
        if kind == "bind":
            return _invalidate_target(fact, node)
        if kind != "stmt":
            return fact
        if isinstance(node, ast.Assert):
            return fact | frozenset(positive_guards(node.test))
        if isinstance(node, ast.Assign):
            for target in node.targets:
                fact = _invalidate_target(fact, target)
            return fact
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return _invalidate_target(fact, node.target)
        if isinstance(node, ast.Delete):
            for target in node.targets:
                fact = _invalidate_target(fact, target)
            return fact
        return fact


class UnguardedCallScanner:
    """Collect attribute calls on matching bases without a dominating
    ``is not None`` guard.

    *base_matches* is a predicate over one chain segment name (e.g.
    ``"tracer"``); a call qualifies when any proper prefix of its access
    chain ends in a matching segment, and is satisfied when any such
    prefix — or a longer prefix of the chain — is guarded.
    """

    def __init__(self, base_matches):
        self.base_matches = base_matches
        #: Violations: (call node, full dotted chain tuple).
        self.found = []
        self._reported = set()

    # -- statements ----------------------------------------------------
    def scan_module(self, tree):
        analysis = GuardAnalysis()
        for _scope, body in iter_scopes(tree):
            cfg, entry_facts = analysis.analyze(body)
            for block in cfg.blocks:
                fact = entry_facts[block.id]
                if fact is None:
                    # Dead code (after an unconditional exit): scan it
                    # anyway, assuming nothing.
                    fact = frozenset()
                self._scan_block(block, set(fact))
        return self.found

    def _scan_block(self, block, guarded):
        """Walk one block's elements with the fixpoint entry fact,
        scanning expressions and updating guards in evaluation order."""
        for kind, node in block.elems:
            if kind in ("test", "expr"):
                self.scan_expr(node, guarded)
            elif kind == "loop-iter":
                self.scan_expr(node.iter, guarded)
            elif kind == "bind":
                self._invalidate(node, guarded)
            elif kind == "stmt":
                self._scan_simple(node, guarded)

    def _scan_simple(self, stmt, guarded):
        if isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test, guarded)
            if stmt.msg is not None:
                self.scan_expr(stmt.msg, guarded)
            guarded |= positive_guards(stmt.test)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                self.scan_expr(stmt.value, guarded)
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._invalidate(target, guarded)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._invalidate(target, guarded)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Defaults/decorators evaluate in the enclosing scope now;
            # the body is its own scope (visited via iter_scopes) and
            # runs later, when no guard still holds.
            for default in (stmt.args.defaults
                            + [d for d in stmt.args.kw_defaults if d]):
                self.scan_expr(default, guarded)
            for decorator in stmt.decorator_list:
                self.scan_expr(decorator, guarded)
        elif isinstance(stmt, ast.ClassDef):
            for decorator in stmt.decorator_list:
                self.scan_expr(decorator, guarded)
            for base in stmt.bases:
                self.scan_expr(base, guarded)
            for keyword in stmt.keywords:
                self.scan_expr(keyword.value, guarded)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.scan_expr(child, guarded)

    def _invalidate(self, target, guarded):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._invalidate(element, guarded)
            return
        if isinstance(target, ast.Starred):
            self._invalidate(target.value, guarded)
            return
        key = _key(target)
        if key is None:
            return
        prefix = key + "."
        for stale in [g for g in guarded
                      if g == key or g.startswith(prefix)]:
            guarded.discard(stale)

    # -- expressions ---------------------------------------------------
    def scan_expr(self, node, guarded):
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._check_call(node, guarded)
            for child in ast.iter_child_nodes(node):
                self.scan_expr(child, guarded)
        elif isinstance(node, ast.BoolOp):
            accumulated = set(guarded)
            for value in node.values:
                self.scan_expr(value, accumulated)
                if isinstance(node.op, ast.And):
                    accumulated |= positive_guards(value)
                else:
                    accumulated |= negative_guards(value)
        elif isinstance(node, ast.IfExp):
            self.scan_expr(node.test, guarded)
            self.scan_expr(node.body,
                           guarded | positive_guards(node.test))
            self.scan_expr(node.orelse,
                           guarded | negative_guards(node.test))
        elif isinstance(node, ast.Lambda):
            self.scan_expr(node.body, set())
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            element_guards = set(guarded)
            for comp in node.generators:
                self.scan_expr(comp.iter, element_guards)
                for condition in comp.ifs:
                    self.scan_expr(condition, element_guards)
                    element_guards |= positive_guards(condition)
            if isinstance(node, ast.DictComp):
                self.scan_expr(node.key, element_guards)
                self.scan_expr(node.value, element_guards)
            else:
                self.scan_expr(node.elt, element_guards)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.scan_expr(child, guarded)
                else:
                    # keywords, slices, formatted values, ...
                    for grandchild in ast.iter_child_nodes(child):
                        if isinstance(grandchild, ast.expr):
                            self.scan_expr(grandchild, guarded)

    def _check_call(self, node, guarded):
        chain = dotted_parts(node.func)
        if chain is None or len(chain) < 2:
            return
        base = chain[:-1]
        matching = [
            length for length in range(1, len(base) + 1)
            if self.base_matches(base[length - 1])
        ]
        if not matching:
            return
        # Satisfied when a guard covers a matching prefix or anything
        # longer (a guard on the full base also proves the prefix).
        shortest = min(matching)
        for length in range(shortest, len(base) + 1):
            if ".".join(base[:length]) in guarded:
                return
        # finally-body duplication means one call node can be walked on
        # several paths; report it at most once.
        if id(node) not in self._reported:
            self._reported.add(id(node))
            self.found.append((node, chain))
