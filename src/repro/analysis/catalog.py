"""Rule catalogue rendering: one source of truth for rationale text.

The rationale and example-fix strings live on the rule classes
(``repro.analysis.rules``).  ``repro lint --explain RPR00N`` prints them
directly, and :func:`render_catalog` renders the identical text as the
markdown catalogue embedded in ``docs/static-analysis.md`` (a test keeps
the two in sync), so the CLI and the docs can never drift apart.
"""

from repro.analysis.rules import RULE_CLASSES, rule_by_id


def explain(rule_id):
    """The ``--explain`` text for one rule, or None if unknown."""
    rule = rule_by_id(rule_id)
    if rule is None:
        return None
    lines = [
        "%s — %s" % (rule.id, rule.title),
        "severity: %s" % rule.severity,
    ]
    if rule.scope:
        lines.append("scope   : %s" % ", ".join(rule.scope))
    else:
        lines.append("scope   : all analyzed modules")
    lines.append("")
    lines.append(rule.rationale)
    lines.append("")
    lines.append("Example:")
    lines.append("")
    for code_line in rule.example.splitlines():
        lines.append("    " + code_line if code_line else "")
    lines.append("")
    lines.append(
        "Suppress one site with `# repro: allow(%s)` on (or directly "
        "above) the offending line; whitelist a reviewed site with a "
        "commented entry in lint-baseline.json." % rule.id
    )
    return "\n".join(lines)


def render_catalog():
    """The rule catalogue as markdown (embedded in the docs)."""
    sections = []
    for cls in RULE_CLASSES:
        rule = cls()
        scope = (
            ", ".join("`%s`" % prefix for prefix in rule.scope)
            if rule.scope else "all analyzed modules"
        )
        lines = [
            "### %s — %s" % (rule.id, rule.title),
            "",
            "*Severity:* %s · *Scope:* %s" % (rule.severity, scope),
            "",
            rule.rationale,
            "",
            "```python",
            rule.example,
            "```",
        ]
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"
