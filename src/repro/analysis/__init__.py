"""Invariant-aware static analysis for the repro codebase (`repro lint`).

A self-contained, stdlib-``ast``-based rule engine that machine-checks
the cross-cutting contracts the paper's guarantees rest on — simulator
determinism (RPR001), zero-cost-off instrumentation (RPR002, the
TXT1–TXT3 contract), message-protocol exhaustiveness (RPR003), plus the
general hygiene rules RPR004/RPR005.  See ``docs/static-analysis.md``
for the catalogue and workflow.

Programmatic use::

    from repro.analysis import analyze

    result = analyze(["src/repro"], baseline_path="lint-baseline.json")
    for finding in result.findings:
        print(finding.rule, finding.path, finding.line, finding.message)
"""

from repro.analysis.baseline import (
    BaselineEntry,
    SCHEMA as BASELINE_SCHEMA,
    load_baseline,
    write_baseline,
)
from repro.analysis.catalog import explain, render_catalog
from repro.analysis.core import Finding, Rule, SEVERITIES, SourceModule
from repro.analysis.report import json_report, summary_line, text_report
from repro.analysis.rules import RULE_CLASSES, default_rules, rule_by_id
from repro.analysis.runner import (
    AnalysisResult,
    BASELINE_FILENAME,
    analyze,
    discover_baseline,
)

__all__ = [
    "AnalysisResult",
    "BASELINE_FILENAME",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "Finding",
    "RULE_CLASSES",
    "Rule",
    "SEVERITIES",
    "SourceModule",
    "analyze",
    "default_rules",
    "discover_baseline",
    "explain",
    "json_report",
    "load_baseline",
    "render_catalog",
    "rule_by_id",
    "summary_line",
    "text_report",
    "write_baseline",
]
