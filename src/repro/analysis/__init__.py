"""Invariant-aware static analysis for the repro codebase (`repro lint`).

A self-contained, ``ast``-based rule engine built on a real control-flow
graph and forward-dataflow framework (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`) that machine-checks the cross-cutting
contracts the paper's guarantees rest on — simulator determinism
(RPR001), zero-cost-off instrumentation (RPR002, the TXT1–TXT3
contract), message-protocol exhaustiveness (RPR003), iteration-order
determinism (RPR006), reservation pairing on every CFG path (RPR007),
the kernel-codegen audit (RPR008), cross-scope isolation (RPR009), plus
the general hygiene rules RPR004/RPR005.  Everything except RPR008's
dynamic half is stdlib-only and never executes scanned code.  See
``docs/static-analysis.md`` for the catalogue and workflow.

Programmatic use::

    from repro.analysis import analyze

    result = analyze(["src/repro"], baseline_path="lint-baseline.json")
    for finding in result.findings:
        print(finding.rule, finding.path, finding.line, finding.message)
"""

from repro.analysis.baseline import (
    BaselineEntry,
    SCHEMA as BASELINE_SCHEMA,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.catalog import explain, render_catalog
from repro.analysis.cfg import CFG, Block, build_cfg
from repro.analysis.core import Finding, Rule, SEVERITIES, SourceModule
from repro.analysis.dataflow import ForwardDataflow, iter_scopes
from repro.analysis.report import json_report, summary_line, text_report
from repro.analysis.rules import RULE_CLASSES, default_rules, rule_by_id
from repro.analysis.runner import (
    AnalysisResult,
    BASELINE_FILENAME,
    analyze,
    discover_baseline,
)
from repro.analysis.sarif import sarif_report

__all__ = [
    "AnalysisResult",
    "BASELINE_FILENAME",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "Block",
    "CFG",
    "Finding",
    "ForwardDataflow",
    "RULE_CLASSES",
    "Rule",
    "SEVERITIES",
    "SourceModule",
    "analyze",
    "build_cfg",
    "default_rules",
    "discover_baseline",
    "explain",
    "iter_scopes",
    "json_report",
    "load_baseline",
    "prune_baseline",
    "render_catalog",
    "rule_by_id",
    "sarif_report",
    "summary_line",
    "text_report",
    "write_baseline",
]
