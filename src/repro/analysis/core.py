"""Core object model of the static analysis framework.

The analyzer is deliberately stdlib-only: modules are parsed with
:mod:`ast`, suppression comments are recovered with :mod:`tokenize`, and
every rule works on those parse trees — nothing is ever imported or
executed.  Three ideas organize the package:

* a :class:`Finding` is one violation at one source location, carrying a
  *fingerprint* — ``(rule, path, symbol, pattern, snippet_hash)`` — that
  is stable across line-number churn (the snippet hash normalizes
  whitespace before hashing), so baselines don't rot on unrelated edits;
* a :class:`SourceModule` is one parsed file plus the metadata rules
  need: its dotted module name (for scope checks), its per-line
  ``# repro: allow(...)`` suppressions, and its parse tree;
* a :class:`Rule` declares an id, a severity, and the rationale/example
  text that is the single source of truth for both ``repro lint
  --explain`` and the rendered catalogue in ``docs/static-analysis.md``.
"""

import ast
import hashlib
import io
import os
import re
import tokenize

from repro.errors import AnalysisError

#: Severities, mildest first.  ``--fail-on`` compares against this order.
SEVERITIES = ("warning", "error")

#: Inline suppression syntax: ``# repro: allow(RPR001)`` or
#: ``# repro: allow(RPR001, RPR005)`` on the finding's line or the line
#: directly above it.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


class Finding:
    """One rule violation at one source location."""

    __slots__ = (
        "rule", "severity", "path", "module", "line", "col", "symbol",
        "message", "pattern", "snippet_hash",
    )

    def __init__(self, rule, severity, path, module, line, col, symbol,
                 message, pattern, snippet_hash=None):
        if severity not in SEVERITIES:
            raise AnalysisError("unknown severity: %r" % (severity,))
        self.rule = rule
        self.severity = severity
        self.path = path
        self.module = module
        self.line = line
        self.col = col
        self.symbol = symbol
        self.message = message
        self.pattern = pattern
        #: Hash of the whitespace-normalized source snippet the finding
        #: anchors to (None when no source segment is recoverable).
        self.snippet_hash = snippet_hash

    def fingerprint(self):
        """Line-number-independent identity used for baseline matching.

        Built from the rule, path, enclosing qualname, pattern, and the
        normalized-snippet hash — never from line numbers, so baselines
        survive unrelated edits that merely shift code around.
        """
        return (self.rule, self.path, self.symbol, self.pattern,
                self.snippet_hash)

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "pattern": self.pattern,
            "snippet_hash": self.snippet_hash,
        }

    def __repr__(self):
        return "Finding(%s %s %s:%d %s)" % (
            self.rule, self.severity, self.path, self.line, self.pattern,
        )


class SourceModule:
    """One parsed source file with the metadata rules consume."""

    __slots__ = ("abspath", "path", "name", "source", "tree",
                 "suppressions")

    def __init__(self, abspath, path, name, source, tree, suppressions):
        self.abspath = abspath
        #: Display/baseline path: package-root relative, posix separators.
        self.path = path
        #: Dotted module name, e.g. ``repro.cluster.simulator``.
        self.name = name
        self.source = source
        self.tree = tree
        #: line number -> set of rule ids allowed on that line.
        self.suppressions = suppressions

    def suppressed(self, rule, line):
        """True when *rule* is allowed on *line* (or the line above)."""
        for candidate in (line, line - 1):
            if rule in self.suppressions.get(candidate, ()):
                return True
        return False


def parse_suppressions(source):
    """Extract ``# repro: allow(...)`` comments, keyed by line number."""
    suppressions = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).replace(",", " ").split()
                if part.strip()
            }
            if rules:
                line = token.start[0]
                suppressions.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        # A malformed tail (unterminated string) is the parser's problem;
        # keep whatever suppressions were recovered before it.
        pass
    return suppressions


def load_module(abspath, root=None):
    """Parse *abspath* into a :class:`SourceModule`.

    The dotted module name is derived from the ``__init__.py`` chain
    above the file, and the display path is relative to the directory
    containing the topmost package — so a tree scanned as ``src/repro``
    reports stable ``repro/...`` paths wherever the checkout lives.
    """
    abspath = os.path.abspath(abspath)
    with open(abspath, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=abspath)
    except SyntaxError as exc:
        raise AnalysisError("cannot parse %s: %s" % (abspath, exc))
    directory = os.path.dirname(abspath)
    stem = os.path.splitext(os.path.basename(abspath))[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    parts.reverse()
    name = ".".join(parts) if parts else stem
    path = os.path.relpath(abspath, root or directory).replace(os.sep, "/")
    return SourceModule(
        abspath, path, name, source, tree, parse_suppressions(source)
    )


def snippet_hash(source, node):
    """Hash of the whitespace-normalized source text behind *node*.

    Normalization (strip + collapse internal whitespace runs) makes the
    hash survive re-indentation and line-wrapping; only a change to the
    tokens themselves produces a new fingerprint.
    """
    segment = None
    if source and getattr(node, "lineno", None):
        try:
            segment = ast.get_source_segment(source, node)
        except (TypeError, ValueError):
            segment = None
    if segment is None:
        return None
    normalized = " ".join(segment.split())
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


def package_root(abspath):
    """Directory containing the topmost package of *abspath*."""
    directory = os.path.dirname(os.path.abspath(abspath))
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory = os.path.dirname(directory)
    return directory


def enclosing_symbols(tree):
    """Map every node to its enclosing ``Class.method`` qualname."""
    symbols = {}

    def visit(node, qualname):
        for child in ast.iter_child_nodes(node):
            child_qualname = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qualname = (
                    "%s.%s" % (qualname, child.name) if qualname
                    else child.name
                )
            symbols[child] = child_qualname or "<module>"
            visit(child, child_qualname)

    symbols[tree] = "<module>"
    visit(tree, "")
    return symbols


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement either
    :meth:`check` (per module) or :meth:`check_project` (cross-module,
    with ``project_wide = True``).
    """

    id = None
    title = None
    severity = "error"
    #: Dotted module-name prefixes the rule applies to; empty = all.
    scope = ()
    project_wide = False
    #: Rationale and example-fix text: the single source of truth reused
    #: by ``repro lint --explain`` and the generated doc catalogue.
    rationale = ""
    example = ""

    def applies(self, module):
        if not self.scope:
            return True
        name = module.name
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, module):
        return ()

    def check_project(self, modules):
        return ()

    def finding(self, module, node, message, pattern, symbols=None,
                severity=None):
        """Build a :class:`Finding` anchored at *node* in *module*."""
        if symbols is None:
            symbols = enclosing_symbols(module.tree)
        return Finding(
            self.id,
            severity or self.severity,
            module.path,
            module.name,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            symbols.get(node) or _symbol_at(module.tree, node),
            message,
            pattern,
            snippet_hash=snippet_hash(module.source, node),
        )


def _symbol_at(tree, node):
    """Fallback qualname lookup for nodes found via ``ast.walk``."""
    return enclosing_symbols(tree).get(node, "<module>")
