"""Synthetic graph generators.

All generators are deterministic given a seed.  The uniform random graph
mirrors the "artificial uniformly random graph" of the paper's second
experiment (scaled down per DESIGN.md §2).
"""

import random

from repro.graph.builder import GraphBuilder


def uniform_random_graph(
    num_vertices,
    num_edges,
    seed=0,
    num_types=8,
    edge_labels=("linked",),
    value_range=10_000,
):
    """Uniform random multigraph with generic query-friendly properties.

    Every vertex gets ``type`` (int in ``[0, num_types)``) and ``value``
    (int in ``[0, value_range)``); every edge gets a label drawn uniformly
    from *edge_labels* and a ``weight`` double in ``[0, 1)``.  Self loops
    are permitted, as in a true uniform model.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()
    for _ in range(num_vertices):
        builder.add_vertex(
            type=rng.randrange(num_types),
            value=rng.randrange(value_range),
        )
    for _ in range(num_edges):
        src = rng.randrange(num_vertices)
        dst = rng.randrange(num_vertices)
        builder.add_edge(
            src,
            dst,
            label=rng.choice(edge_labels),
            weight=rng.random(),
        )
    return builder.build()


def chain_graph(length, label="next", **vertex_props):
    """A directed path ``0 -> 1 -> ... -> length-1`` (tests and examples)."""
    builder = GraphBuilder()
    for index in range(length):
        props = {name: values[index] for name, values in vertex_props.items()}
        builder.add_vertex(**props)
    for index in range(length - 1):
        builder.add_edge(index, index + 1, label=label)
    return builder.build()


def star_graph(num_leaves, direction="out", hub_label=None, leaf_label=None):
    """A hub with *num_leaves* leaves; ``direction`` is hub-relative."""
    builder = GraphBuilder()
    hub = builder.add_vertex(label=hub_label)
    for _ in range(num_leaves):
        leaf = builder.add_vertex(label=leaf_label)
        if direction == "out":
            builder.add_edge(hub, leaf)
        else:
            builder.add_edge(leaf, hub)
    return builder.build()


def complete_graph(num_vertices, label=None):
    """All ordered pairs (no self loops)."""
    builder = GraphBuilder()
    for _ in range(num_vertices):
        builder.add_vertex()
    for src in range(num_vertices):
        for dst in range(num_vertices):
            if src != dst:
                builder.add_edge(src, dst, label=label)
    return builder.build()


def power_law_graph(num_vertices, num_edges, seed=0, exponent=2.0,
                    num_types=8, value_range=10_000):
    """Random graph with (approximately) power-law out-degrees.

    Sources are drawn from a Zipf-like distribution over vertices,
    destinations uniformly — a cheap stand-in for scale-free real graphs
    used in skew/imbalance ablations.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()
    for _ in range(num_vertices):
        builder.add_vertex(
            type=rng.randrange(num_types),
            value=rng.randrange(value_range),
        )
    # Inverse-CDF sampling from an unnormalized Zipf over ranks.
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(num_vertices)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc / total)
    import bisect

    for _ in range(num_edges):
        src = bisect.bisect_left(cumulative, rng.random())
        src = min(src, num_vertices - 1)
        dst = rng.randrange(num_vertices)
        builder.add_edge(src, dst, label="linked", weight=rng.random())
    return builder.build()
