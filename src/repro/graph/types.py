"""Core value types shared across the graph subpackage.

Vertices and edges are dense integer ids (``0 .. n-1``).  Labels are
interned into small integers through :class:`LabelDictionary` so that hot
runtime paths compare ints instead of strings.
"""

import enum

from repro.errors import PropertyTypeError

# Dense integer handles. Plain ints, aliased for documentation purposes.
VertexId = int
EdgeId = int
MachineId = int

# Sentinel for "no label" on a vertex or an edge.
NO_LABEL = -1


class Direction(enum.Enum):
    """Traversal direction of a pattern edge relative to the source stage."""

    OUT = "out"
    IN = "in"

    def reverse(self):
        return Direction.IN if self is Direction.OUT else Direction.OUT


class PropertyType(enum.Enum):
    """Declared type of a vertex or edge property column."""

    LONG = "long"
    DOUBLE = "double"
    STRING = "string"
    BOOLEAN = "boolean"

    @classmethod
    def infer(cls, value):
        """Infer the property type of a Python value.

        Booleans must be tested before ints because ``bool`` subclasses
        ``int`` in Python.
        """
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.LONG
        if isinstance(value, float):
            return cls.DOUBLE
        if isinstance(value, str):
            return cls.STRING
        raise PropertyTypeError(
            "unsupported property value type: %r" % type(value).__name__
        )

    def default(self):
        """Default value used for entities that never set the property."""
        if self is PropertyType.LONG:
            return 0
        if self is PropertyType.DOUBLE:
            return 0.0
        if self is PropertyType.STRING:
            return ""
        return False

    def coerce(self, value):
        """Coerce *value* into this type, raising on lossy mismatches."""
        if self is PropertyType.LONG:
            if isinstance(value, bool) or not isinstance(value, int):
                raise PropertyTypeError("expected int, got %r" % (value,))
            return value
        if self is PropertyType.DOUBLE:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise PropertyTypeError("expected float, got %r" % (value,))
            return float(value)
        if self is PropertyType.STRING:
            if not isinstance(value, str):
                raise PropertyTypeError("expected str, got %r" % (value,))
            return value
        if not isinstance(value, bool):
            raise PropertyTypeError("expected bool, got %r" % (value,))
        return value


class LabelDictionary:
    """Bidirectional mapping between label strings and small integers."""

    def __init__(self):
        self._by_name = {}
        self._by_id = []

    def __len__(self):
        return len(self._by_id)

    def intern(self, name):
        """Return the id for *name*, assigning a fresh one if unseen."""
        label_id = self._by_name.get(name)
        if label_id is None:
            label_id = len(self._by_id)
            self._by_name[name] = label_id
            self._by_id.append(name)
        return label_id

    def lookup(self, name):
        """Return the id for *name*, or ``None`` if it was never interned.

        Unknown labels are not an error: a query may filter on a label that
        simply does not occur in the graph, and must match nothing.  The
        ``None`` result is distinct from ``NO_LABEL`` (unlabeled entities)
        so that filtering on an absent label never matches unlabeled ones.
        """
        return self._by_name.get(name)

    def name(self, label_id):
        return self._by_id[label_id]

    def names(self):
        return list(self._by_id)
