"""Property-graph substrate: storage, partitioning, generation, I/O."""

from repro.graph.builder import GraphBuilder
from repro.graph.distributed import DistributedGraph, LocalPartition
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    power_law_graph,
    star_graph,
    uniform_random_graph,
)
from repro.graph.graph import PropertyGraph
from repro.graph.loaders import (
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
)
from repro.graph.partition import (
    BlockPartitioner,
    EdgeBalancedRandomPartitioner,
    HashPartitioner,
    Partition,
)
from repro.graph.types import NO_LABEL, Direction, LabelDictionary, PropertyType

__all__ = [
    "GraphBuilder",
    "PropertyGraph",
    "DistributedGraph",
    "LocalPartition",
    "Partition",
    "EdgeBalancedRandomPartitioner",
    "HashPartitioner",
    "BlockPartitioner",
    "Direction",
    "PropertyType",
    "LabelDictionary",
    "NO_LABEL",
    "uniform_random_graph",
    "chain_graph",
    "star_graph",
    "complete_graph",
    "power_law_graph",
    "load_edge_list",
    "save_edge_list",
    "load_json",
    "save_json",
    "graph_from_dict",
    "graph_to_dict",
]
