"""Loading and saving property graphs in simple text formats.

Two formats are supported:

* **edge list** — one ``src dst [label]`` triple per line, whitespace
  separated; vertices are created implicitly.
* **JSON graph** — a dict with ``vertices`` and ``edges`` lists carrying
  labels and arbitrary properties; round-trips through ``save_json``.
"""

import json

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


def load_edge_list(path, comment="#"):
    """Load a graph from a whitespace-separated edge-list file."""
    builder = GraphBuilder()
    seen = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    "%s:%d: expected 'src dst [label]', got %r"
                    % (path, line_number, line)
                )
            src, dst = int(parts[0]), int(parts[1])
            label = parts[2] if len(parts) == 3 else None
            needed = max(src, dst) + 1
            if needed > seen:
                builder.add_vertices(needed - seen)
                seen = needed
            builder.add_edge(src, dst, label=label)
    return builder.build()


def save_edge_list(graph, path):
    """Write *graph* as an edge-list file (labels included when present)."""
    with open(path, "w") as handle:
        for vertex in graph.vertices():
            dst, edge_ids = graph.out_edges(vertex)
            for neighbor, edge in zip(dst, edge_ids):
                label = graph.edge_label_name(int(edge))
                if label is None:
                    handle.write("%d %d\n" % (vertex, neighbor))
                else:
                    handle.write("%d %d %s\n" % (vertex, neighbor, label))


def load_json(path):
    """Load a graph from the JSON format produced by :func:`save_json`."""
    with open(path) as handle:
        data = json.load(handle)
    return graph_from_dict(data)


def graph_from_dict(data):
    """Build a graph from an in-memory dict (``vertices`` / ``edges``).

    A ``stats`` key (written by ``save_json(..., include_stats=True)``)
    is deserialized and attached so loaded graphs keep their build-time
    statistics without recollection.
    """
    builder = GraphBuilder()
    for record in data.get("vertices", []):
        record = dict(record)
        record.pop("id", None)  # ids are positional
        label = record.pop("label", None)
        builder.add_vertex(label=label, **record)
    for record in data.get("edges", []):
        record = dict(record)
        src = record.pop("src")
        dst = record.pop("dst")
        label = record.pop("label", None)
        builder.add_edge(src, dst, label=label, **record)
    graph = builder.build()
    if "stats" in data:
        from repro.stats import GraphStatistics

        graph.attach_statistics(GraphStatistics.from_dict(data["stats"]))
    return graph


def save_json(graph, path, include_stats=False):
    """Write *graph* in the JSON format readable by :func:`load_json`.

    With *include_stats* the graph's collected statistics travel in the
    same document (collected first if not yet cached).
    """
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph, include_stats=include_stats), handle)


def graph_to_dict(graph, include_stats=False):
    """Serialize *graph* to a plain dict."""
    vertex_prop_names = graph.vertex_properties.names()
    edge_prop_names = graph.edge_properties.names()
    vertices = []
    for vertex in graph.vertices():
        record = {"id": vertex}
        label = graph.vertex_label_name(vertex)
        if label is not None:
            record["label"] = label
        for name in vertex_prop_names:
            record[name] = graph.vertex_prop(name, vertex)
        vertices.append(record)
    edges = []
    for edge in range(graph.num_edges):
        src, dst = graph.edge_endpoints(edge)
        record = {"src": src, "dst": dst}
        label = graph.edge_label_name(edge)
        if label is not None:
            record["label"] = label
        for name in edge_prop_names:
            record[name] = graph.edge_prop(name, edge)
        edges.append(record)
    document = {"vertices": vertices, "edges": edges}
    if include_stats:
        document["stats"] = graph.statistics().to_dict()
    return document
