"""Columnar property storage for vertices and edges.

Numeric and boolean columns are numpy arrays; string columns are interned
through a per-column dictionary with an integer code array, which keeps
row access O(1) while deduplicating the (typically highly repetitive)
string payloads of generated benchmark graphs.
"""

import numpy as np

from repro.errors import PropertyTypeError, UnknownPropertyError
from repro.graph.types import PropertyType

_NUMPY_DTYPES = {
    PropertyType.LONG: np.int64,
    PropertyType.DOUBLE: np.float64,
    PropertyType.BOOLEAN: np.bool_,
}


class PropertyColumn:
    """A single fixed-length, typed property column."""

    __slots__ = ("name", "ptype", "_values", "_codes", "_strings",
                 "_string_ids", "_values_list")

    def __init__(self, name, ptype, size):
        self.name = name
        self.ptype = ptype
        #: Lazily built plain-list mirror served by :meth:`get`;
        #: invalidated on every write.  Row reads vastly outnumber
        #: writes (filters and captures hit ``get`` once per inspected
        #: entity), and list indexing returns unboxed scalars without
        #: the per-call numpy ``.item()`` round trip.
        self._values_list = None
        if ptype is PropertyType.STRING:
            self._codes = np.zeros(size, dtype=np.int32)
            self._strings = [""]
            self._string_ids = {"": 0}
            self._values = None
        else:
            self._values = np.full(
                size, ptype.default(), dtype=_NUMPY_DTYPES[ptype]
            )
            self._codes = None
            self._strings = None
            self._string_ids = None

    def __len__(self):
        if self.ptype is PropertyType.STRING:
            return len(self._codes)
        return len(self._values)

    def get(self, index):
        """Return the property value of entity *index* as a Python scalar."""
        values = self._values_list
        if values is None:
            if self.ptype is PropertyType.STRING:
                strings = self._strings
                values = [strings[code] for code in self._codes.tolist()]
            else:
                values = self._values.tolist()
            self._values_list = values
        return values[index]

    def values(self):
        """All row values as the cached plain list (read-only).

        Shares the lazily built mirror that :meth:`get` serves row reads
        from, so statistics collection (one full-column pass) costs no
        extra materialization beyond what the first filter would pay.
        """
        if len(self) == 0:
            return []
        if self._values_list is None:
            self.get(0)  # builds and caches the list mirror
        return self._values_list

    def set(self, index, value):
        """Set the property value of entity *index* (type-checked)."""
        value = self.ptype.coerce(value)
        self._values_list = None
        if self.ptype is PropertyType.STRING:
            code = self._string_ids.get(value)
            if code is None:
                code = len(self._strings)
                self._string_ids[value] = code
                self._strings.append(value)
            self._codes[index] = code
        else:
            self._values[index] = value

    def fill(self, values):
        """Bulk-set the whole column from an iterable of *len(self)* values."""
        for index, value in enumerate(values):
            self.set(index, value)

    def reordered(self, order):
        """Return a copy of this column permuted by the index array *order*.

        ``result.get(i) == self.get(order[i])``; used when the builder
        renumbers edges into CSR order.
        """
        clone = PropertyColumn(self.name, self.ptype, len(order))
        if self.ptype is PropertyType.STRING:
            clone._codes = self._codes[order].copy()
            clone._strings = list(self._strings)
            clone._string_ids = dict(self._string_ids)
        else:
            clone._values = self._values[order].copy()
        return clone

    def selectivity(self, value):
        """Fraction of rows equal to *value* — used by the query scheduler.

        Returns 1.0 for un-coercible values (treated as unknown).
        """
        total = len(self)
        if total == 0:
            return 1.0
        try:
            value = self.ptype.coerce(value)
        except PropertyTypeError:
            return 1.0
        if self.ptype is PropertyType.STRING:
            code = self._string_ids.get(value)
            if code is None:
                return 0.0
            return float(np.count_nonzero(self._codes == code)) / total
        return float(np.count_nonzero(self._values == value)) / total


class PropertyTable:
    """A named collection of equally sized property columns."""

    def __init__(self, kind, size):
        self._kind = kind  # "vertex" or "edge", for error messages
        self._size = size
        self._columns = {}

    def __contains__(self, name):
        return name in self._columns

    def __len__(self):
        return len(self._columns)

    @property
    def size(self):
        return self._size

    def names(self):
        return list(self._columns)

    def add_column(self, name, ptype):
        """Create (or return the existing, type-checked) column *name*."""
        column = self._columns.get(name)
        if column is not None:
            if column.ptype is not ptype:
                raise PropertyTypeError(
                    "%s property %r redeclared as %s (was %s)"
                    % (self._kind, name, ptype.value, column.ptype.value)
                )
            return column
        column = PropertyColumn(name, ptype, self._size)
        self._columns[name] = column
        return column

    def column(self, name):
        column = self._columns.get(name)
        if column is None:
            raise UnknownPropertyError(self._kind, name)
        return column

    def get(self, name, index):
        return self.column(name).get(index)

    def set(self, name, index, value):
        self.column(name).set(index, value)

    def reordered(self, order):
        """Return a copy of the whole table permuted by *order*."""
        clone = PropertyTable(self._kind, len(order))
        for name, column in self._columns.items():
            clone._columns[name] = column.reordered(order)
        return clone
