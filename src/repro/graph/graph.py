"""Immutable in-memory property graph with CSR adjacency.

The graph stores directed edges in two compressed sparse row structures:
one sorted by source vertex (out-adjacency) and one by destination vertex
(in-adjacency).  Within a vertex's adjacency run, neighbors are sorted by
the opposite endpoint id, which lets edge-existence checks use binary
search.  Edge ids index the out-CSR order; the in-CSR carries the same
edge ids so that edge labels and properties are shared between the two
directions.
"""

import bisect

import numpy as np

from repro.errors import InvalidEdgeError, InvalidVertexError
from repro.graph.types import NO_LABEL, Direction


class PropertyGraph:
    """A finalized property graph. Build instances via ``GraphBuilder``."""

    def __init__(
        self,
        num_vertices,
        out_offsets,
        out_dst,
        out_edge_ids,
        in_offsets,
        in_src,
        in_edge_ids,
        edge_src,
        edge_dst,
        vertex_labels,
        edge_labels,
        vertex_props,
        edge_props,
        label_dict,
    ):
        self._num_vertices = num_vertices
        self._out_offsets = out_offsets
        self._out_dst = out_dst
        self._out_edge_ids = out_edge_ids
        self._in_offsets = in_offsets
        self._in_src = in_src
        self._in_edge_ids = in_edge_ids
        self._edge_src = edge_src
        self._edge_dst = edge_dst
        self._vertex_labels = vertex_labels
        self._edge_labels = edge_labels
        self._vertex_props = vertex_props
        self._edge_props = edge_props
        self._label_dict = label_dict
        # Lazily built plain-list mirrors of the CSR and label arrays,
        # shared by every compiled bulk kernel over this graph
        # (runtime.kernels): indexing a python list yields unboxed ints
        # at a fraction of the per-element numpy scalar cost.
        self._adjacency_lists = None
        self._vertex_labels_list = None
        self._edge_labels_list = None
        # Collected graph statistics (repro.stats), built lazily by
        # ``statistics()`` or attached eagerly by the builder/loaders.
        self._statistics = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self):
        return self._num_vertices

    @property
    def num_edges(self):
        return len(self._out_dst)

    @property
    def labels(self):
        """The shared label dictionary (vertex and edge labels)."""
        return self._label_dict

    def vertices(self):
        """Iterate all vertex ids."""
        return range(self._num_vertices)

    def check_vertex(self, vertex):
        if not 0 <= vertex < self._num_vertices:
            raise InvalidVertexError("vertex id out of range: %r" % (vertex,))

    def check_edge(self, edge):
        if not 0 <= edge < self.num_edges:
            raise InvalidEdgeError("edge id out of range: %r" % (edge,))

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def out_degree(self, vertex):
        return int(self._out_offsets[vertex + 1] - self._out_offsets[vertex])

    def in_degree(self, vertex):
        return int(self._in_offsets[vertex + 1] - self._in_offsets[vertex])

    def out_edges(self, vertex):
        """Return parallel arrays ``(dst, edge_ids)`` of *vertex*'s out edges.

        The returned arrays are views into graph storage; callers must not
        mutate them.
        """
        lo = self._out_offsets[vertex]
        hi = self._out_offsets[vertex + 1]
        return self._out_dst[lo:hi], self._out_edge_ids[lo:hi]

    def in_edges(self, vertex):
        """Return parallel arrays ``(src, edge_ids)`` of *vertex*'s in edges."""
        lo = self._in_offsets[vertex]
        hi = self._in_offsets[vertex + 1]
        return self._in_src[lo:hi], self._in_edge_ids[lo:hi]

    def out_neighbors(self, vertex):
        dst, _ = self.out_edges(vertex)
        return dst

    def in_neighbors(self, vertex):
        src, _ = self.in_edges(vertex)
        return src

    def edges_between(self, src, dst):
        """Return the edge ids of all parallel edges ``src -> dst``.

        Uses binary search on the dst-sorted adjacency run: O(log d + k).
        """
        lo = int(self._out_offsets[src])
        hi = int(self._out_offsets[src + 1])
        run = self._out_dst[lo:hi]
        left = bisect.bisect_left(run, dst)
        right = bisect.bisect_right(run, dst, lo=left)
        return [int(self._out_edge_ids[lo + i]) for i in range(left, right)]

    def in_edges_from(self, dst, src):
        """Edge ids of parallel edges ``src -> dst`` found via *dst*'s
        in-adjacency (binary search on the src-sorted in run).

        Unlike :meth:`edges_between`, this only touches *dst*'s adjacency,
        so a machine owning *dst* can evaluate it locally.
        """
        lo = int(self._in_offsets[dst])
        hi = int(self._in_offsets[dst + 1])
        run = self._in_src[lo:hi]
        left = bisect.bisect_left(run, src)
        right = bisect.bisect_right(run, src, lo=left)
        return [int(self._in_edge_ids[lo + i]) for i in range(left, right)]

    def adjacency_lists(self):
        """Both CSR structures as cached plain python lists.

        Returns ``(out_offsets, out_dst, out_edge_ids, in_offsets,
        in_src, in_edge_ids)``.  Built once per graph (one bulk
        ``tolist`` per array) for the compiled bulk kernels; read-only
        by convention.
        """
        lists = self._adjacency_lists
        if lists is None:
            lists = (
                self._out_offsets.tolist(),
                self._out_dst.tolist(),
                self._out_edge_ids.tolist(),
                self._in_offsets.tolist(),
                self._in_src.tolist(),
                self._in_edge_ids.tolist(),
            )
            self._adjacency_lists = lists
        return lists

    def has_edge(self, src, dst):
        lo = int(self._out_offsets[src])
        hi = int(self._out_offsets[src + 1])
        run = self._out_dst[lo:hi]
        index = bisect.bisect_left(run, dst)
        return index < len(run) and run[index] == dst

    def edge_source(self, edge):
        return int(self._edge_src[edge])

    def edge_destination(self, edge):
        return int(self._edge_dst[edge])

    def edge_endpoints(self, edge):
        """Return ``(src, dst)`` of *edge* in O(1)."""
        self.check_edge(edge)
        return int(self._edge_src[edge]), int(self._edge_dst[edge])

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def vertex_label(self, vertex):
        """Return the label id of *vertex* (``NO_LABEL`` if unlabeled)."""
        if self._vertex_labels is None:
            return NO_LABEL
        return int(self._vertex_labels[vertex])

    def edge_label(self, edge):
        """Return the label id of *edge* (``NO_LABEL`` if unlabeled)."""
        if self._edge_labels is None:
            return NO_LABEL
        return int(self._edge_labels[edge])

    def vertex_labels_list(self):
        """Vertex label ids as a cached plain list (None if unlabeled)."""
        if self._vertex_labels is None:
            return None
        labels = self._vertex_labels_list
        if labels is None:
            labels = self._vertex_labels.tolist()
            self._vertex_labels_list = labels
        return labels

    def edge_labels_list(self):
        """Edge label ids as a cached plain list (None if unlabeled)."""
        if self._edge_labels is None:
            return None
        labels = self._edge_labels_list
        if labels is None:
            labels = self._edge_labels.tolist()
            self._edge_labels_list = labels
        return labels

    def vertex_label_name(self, vertex):
        label = self.vertex_label(vertex)
        return None if label == NO_LABEL else self._label_dict.name(label)

    def edge_label_name(self, edge):
        label = self.edge_label(edge)
        return None if label == NO_LABEL else self._label_dict.name(label)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def vertex_properties(self):
        return self._vertex_props

    @property
    def edge_properties(self):
        return self._edge_props

    def vertex_prop(self, name, vertex):
        return self._vertex_props.get(name, vertex)

    def edge_prop(self, name, edge):
        return self._edge_props.get(name, edge)

    def has_vertex_prop(self, name):
        return name in self._vertex_props

    def has_edge_prop(self, name):
        return name in self._edge_props

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def vertex_label_fraction(self, label_id):
        """Fraction of vertices carrying *label_id* (selectivity input)."""
        if self._num_vertices == 0:
            return 0.0
        if self._vertex_labels is None:
            return 1.0 if label_id == NO_LABEL else 0.0
        count = int(np.count_nonzero(self._vertex_labels == label_id))
        return count / self._num_vertices

    def degree_stats(self, direction=Direction.OUT):
        """Return ``(min, max, mean)`` of one degree distribution.

        *direction* selects the side: ``Direction.OUT`` (the historical
        default) summarizes out-degrees, ``Direction.IN`` in-degrees —
        the cost model needs both to price reverse hops.
        """
        if self._num_vertices == 0:
            return (0, 0, 0.0)
        offsets = (
            self._out_offsets
            if direction is Direction.OUT
            else self._in_offsets
        )
        degrees = np.diff(offsets)
        return (int(degrees.min()), int(degrees.max()), float(degrees.mean()))

    # ------------------------------------------------------------------
    # Statistics (repro.stats collection hooks)
    # ------------------------------------------------------------------
    def degree_arrays(self):
        """Return ``(out_degrees, in_degrees)`` as numpy arrays."""
        return np.diff(self._out_offsets), np.diff(self._in_offsets)

    def vertex_labels_array(self):
        """Vertex label ids as a numpy array (None if unlabeled)."""
        return self._vertex_labels

    def edge_labels_array(self):
        """Edge label ids as a numpy array (None if unlabeled)."""
        return self._edge_labels

    def edge_endpoint_arrays(self):
        """Parallel ``(src, dst)`` arrays indexed by edge id."""
        return self._edge_src, self._edge_dst

    def statistics(self, refresh=False):
        """This graph's collected :class:`~repro.stats.GraphStatistics`.

        Computed on first use and cached (the graph is immutable, so the
        statistics never go stale); *refresh* forces recollection, e.g.
        after attaching deserialized statistics from an older snapshot.
        """
        stats = self._statistics
        if stats is None or refresh:
            from repro.stats import collect_statistics

            stats = collect_statistics(self)
            self._statistics = stats
        return stats

    def attach_statistics(self, stats):
        """Adopt pre-collected statistics (deserialized or build-time)."""
        self._statistics = stats

    def __repr__(self):
        return "PropertyGraph(vertices=%d, edges=%d)" % (
            self.num_vertices,
            self.num_edges,
        )
