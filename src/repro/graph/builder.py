"""Mutable graph builder producing immutable ``PropertyGraph`` instances.

Typical use::

    builder = GraphBuilder()
    alice = builder.add_vertex(label="person", age=31)
    bob = builder.add_vertex(label="person", age=29)
    builder.add_edge(alice, bob, label="friend", since=2015)
    graph = builder.build()

Property types are inferred from the first value seen for each property
name; later values must coerce to the same type.  Vertices and edges that
never set a property observe the type's default value (0 / 0.0 / "" /
False), mirroring how PGX materializes dense property arrays.
"""

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import PropertyGraph
from repro.graph.property_table import PropertyTable
from repro.graph.types import NO_LABEL, LabelDictionary, PropertyType


class GraphBuilder:
    """Accumulates vertices/edges and finalizes them into CSR form."""

    def __init__(self):
        self._labels = LabelDictionary()
        self._vertex_labels = []
        self._edge_src = []
        self._edge_dst = []
        self._edge_labels = []
        # property name -> (ptype, {entity index: value})
        self._vertex_prop_values = {}
        self._edge_prop_values = {}
        self._built = False

    @property
    def num_vertices(self):
        return len(self._vertex_labels)

    @property
    def num_edges(self):
        return len(self._edge_src)

    def add_vertex(self, label=None, **props):
        """Append a vertex; returns its dense id."""
        self._check_not_built()
        vertex = len(self._vertex_labels)
        label_id = NO_LABEL if label is None else self._labels.intern(label)
        self._vertex_labels.append(label_id)
        for name, value in props.items():
            self._record_prop(self._vertex_prop_values, name, vertex, value)
        return vertex

    def add_vertices(self, count, label=None):
        """Append *count* unpropertied vertices; returns a range of their ids."""
        self._check_not_built()
        start = len(self._vertex_labels)
        label_id = NO_LABEL if label is None else self._labels.intern(label)
        self._vertex_labels.extend([label_id] * count)
        return range(start, start + count)

    def set_vertex_prop(self, vertex, name, value):
        self._check_not_built()
        if not 0 <= vertex < self.num_vertices:
            raise GraphError("set_vertex_prop on unknown vertex %r" % (vertex,))
        self._record_prop(self._vertex_prop_values, name, vertex, value)

    def add_edge(self, src, dst, label=None, **props):
        """Append a directed edge ``src -> dst``; returns its pre-build index.

        Edge ids are renumbered into CSR order at build time, so the
        returned index is only valid for ``set_edge_prop`` before ``build``.
        """
        self._check_not_built()
        num_vertices = self.num_vertices
        if not 0 <= src < num_vertices or not 0 <= dst < num_vertices:
            raise GraphError("edge endpoint out of range: %r -> %r" % (src, dst))
        edge = len(self._edge_src)
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        label_id = NO_LABEL if label is None else self._labels.intern(label)
        self._edge_labels.append(label_id)
        for name, value in props.items():
            self._record_prop(self._edge_prop_values, name, edge, value)
        return edge

    def set_edge_prop(self, edge, name, value):
        self._check_not_built()
        if not 0 <= edge < self.num_edges:
            raise GraphError("set_edge_prop on unknown edge %r" % (edge,))
        self._record_prop(self._edge_prop_values, name, edge, value)

    def build(self, collect_stats=False):
        """Finalize into an immutable ``PropertyGraph``.

        The builder is single-use; calling ``build`` twice raises.
        With *collect_stats* the graph's statistics (``repro.stats``)
        are collected eagerly at build time; otherwise the first
        ``graph.statistics()`` call collects them on demand.
        """
        self._check_not_built()
        self._built = True

        num_vertices = self.num_vertices
        num_edges = self.num_edges
        src = np.asarray(self._edge_src, dtype=np.int64).reshape(num_edges)
        dst = np.asarray(self._edge_dst, dtype=np.int64).reshape(num_edges)

        # Out-CSR: stable sort edges by (src, dst); edge id == sorted position.
        out_order = np.lexsort((dst, src)) if num_edges else np.empty(0, np.int64)
        out_dst = dst[out_order]
        edge_src_sorted = src[out_order]
        out_offsets = _offsets_from_sorted(edge_src_sorted, num_vertices)
        out_edge_ids = np.arange(num_edges, dtype=np.int64)

        # In-CSR: sort the renumbered edges by (dst, src).
        in_order = (
            np.lexsort((edge_src_sorted, out_dst))
            if num_edges
            else np.empty(0, np.int64)
        )
        in_src = edge_src_sorted[in_order]
        in_offsets = _offsets_from_sorted(out_dst[in_order], num_vertices)
        in_edge_ids = in_order.astype(np.int64)

        vertex_labels = None
        if any(label != NO_LABEL for label in self._vertex_labels):
            vertex_labels = np.asarray(self._vertex_labels, dtype=np.int32)
        edge_labels = None
        if any(label != NO_LABEL for label in self._edge_labels):
            edge_labels_orig = np.asarray(self._edge_labels, dtype=np.int32)
            edge_labels = edge_labels_orig[out_order]

        vertex_props = _materialize_table("vertex", num_vertices,
                                          self._vertex_prop_values, None)
        edge_props = _materialize_table("edge", num_edges,
                                        self._edge_prop_values, out_order)

        graph = PropertyGraph(
            num_vertices=num_vertices,
            out_offsets=out_offsets,
            out_dst=out_dst,
            out_edge_ids=out_edge_ids,
            in_offsets=in_offsets,
            in_src=in_src,
            in_edge_ids=in_edge_ids,
            edge_src=edge_src_sorted,
            edge_dst=out_dst,
            vertex_labels=vertex_labels,
            edge_labels=edge_labels,
            vertex_props=vertex_props,
            edge_props=edge_props,
            label_dict=self._labels,
        )
        if collect_stats:
            graph.statistics()
        return graph

    # ------------------------------------------------------------------
    def _record_prop(self, table, name, index, value):
        entry = table.get(name)
        if entry is None:
            ptype = PropertyType.infer(value)
            entry = (ptype, {})
            table[name] = entry
        ptype, values = entry
        values[index] = ptype.coerce(value)

    def _check_not_built(self):
        if self._built:
            raise GraphError("GraphBuilder already built; create a new one")


def _offsets_from_sorted(sorted_keys, num_buckets):
    """CSR offsets (len ``num_buckets + 1``) from an ascending key array."""
    counts = np.bincount(sorted_keys, minlength=num_buckets) \
        if len(sorted_keys) else np.zeros(num_buckets, dtype=np.int64)
    offsets = np.zeros(num_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _materialize_table(kind, size, prop_values, order):
    """Turn sparse {index: value} maps into dense columns.

    *order*, when given, renumbers entities: new index i holds the value of
    original index ``order[i]`` (used for edges after CSR sorting).
    """
    table = PropertyTable(kind, size)
    inverse = None
    if order is not None and len(order):
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order), dtype=np.int64)
    for name, (ptype, values) in prop_values.items():
        column = table.add_column(name, ptype)
        for index, value in values.items():
            new_index = index if inverse is None else int(inverse[index])
            column.set(new_index, value)
    return table
