"""Vertex partitioning strategies.

The paper partitions vertices randomly "except that the system attempts to
distribute a similar number of edges to each machine".  That strategy is
implemented by :class:`EdgeBalancedRandomPartitioner` and is the default;
hash and block partitioners are provided for experiments on partitioning
sensitivity.
"""

import random

import numpy as np

from repro.errors import ClusterConfigError


class Partition:
    """An assignment of every vertex to a machine.

    Wraps a dense ``int32`` owner array; ownership lookups are O(1) and the
    array is shared, read-only knowledge on every simulated machine (as in
    PGX.D, where the vertex-to-machine mapping is globally known).
    """

    def __init__(self, owners, num_machines):
        self._owners = owners
        self._num_machines = num_machines
        self._owners_list = None

    @property
    def num_machines(self):
        return self._num_machines

    @property
    def num_vertices(self):
        return len(self._owners)

    def owner(self, vertex):
        """Machine id that owns *vertex*."""
        return int(self._owners[vertex])

    def owners_array(self):
        """The raw owner array (read-only by convention)."""
        return self._owners

    def owners_list(self):
        """The owner array as a cached plain list (read-only).

        Built once per partition; the bulk kernels index it on every
        emitted continuation, where unboxed python ints beat per-call
        numpy scalar conversion.
        """
        owners = self._owners_list
        if owners is None:
            owners = self._owners.tolist()
            self._owners_list = owners
        return owners

    def local_vertices(self, machine):
        """Numpy array of the vertex ids owned by *machine*."""
        return np.flatnonzero(self._owners == machine)

    def vertex_counts(self):
        """Vertices per machine."""
        return np.bincount(self._owners, minlength=self._num_machines)

    def edge_counts(self, graph):
        """Out-edges per machine (edges live with their source vertex)."""
        counts = np.zeros(self._num_machines, dtype=np.int64)
        for machine in range(self._num_machines):
            local = self.local_vertices(machine)
            for vertex in local:
                counts[machine] += graph.out_degree(int(vertex))
        return counts


class EdgeBalancedRandomPartitioner:
    """Random placement balanced by edge count (the paper's default).

    Vertices are shuffled with a seeded RNG and greedily assigned to the
    machine with the least accumulated edge weight, where a vertex's weight
    is ``out_degree + 1`` (the +1 keeps zero-degree vertices spread out).
    """

    def __init__(self, seed=0):
        self._seed = seed

    def partition(self, graph, num_machines):
        _check_machines(num_machines)
        rng = random.Random(self._seed)
        order = list(range(graph.num_vertices))
        rng.shuffle(order)
        owners = np.zeros(graph.num_vertices, dtype=np.int32)
        loads = [0] * num_machines
        for vertex in order:
            machine = loads.index(min(loads))
            owners[vertex] = machine
            loads[machine] += graph.out_degree(vertex) + 1
        return Partition(owners, num_machines)


class HashPartitioner:
    """Deterministic modulo placement: ``owner(v) = v % M``."""

    def partition(self, graph, num_machines):
        _check_machines(num_machines)
        owners = (
            np.arange(graph.num_vertices, dtype=np.int64) % num_machines
        ).astype(np.int32)
        return Partition(owners, num_machines)


class BlockPartitioner:
    """Contiguous id-range placement; intentionally skew-prone.

    Used by the ablation benches to create imbalanced workloads.
    """

    def partition(self, graph, num_machines):
        _check_machines(num_machines)
        block = max(1, -(-graph.num_vertices // num_machines))  # ceil div
        owners = np.minimum(
            np.arange(graph.num_vertices, dtype=np.int64) // block,
            num_machines - 1,
        ).astype(np.int32)
        return Partition(owners, num_machines)


def _check_machines(num_machines):
    if num_machines < 1:
        raise ClusterConfigError(
            "num_machines must be >= 1, got %r" % (num_machines,)
        )
