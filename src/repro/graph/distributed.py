"""Distributed view of a property graph.

A :class:`DistributedGraph` pairs a :class:`PropertyGraph` with a
:class:`Partition` and exposes one :class:`LocalPartition` per simulated
machine.  Because the whole simulation runs in a single process, the local
partitions *share* the underlying graph arrays; distribution semantics are
preserved by discipline: a ``LocalPartition`` only answers queries about
vertices it owns and raises :class:`RemoteAccessError` otherwise.  This
turns planner/runtime bugs that would require network round-trips on real
hardware into hard failures, which is exactly what the paper's planning
pipeline (inspection steps + context captures) exists to prevent.

Edge data (labels, properties) is accessible from both endpoint machines,
matching PGX.D where cross-partition edges are materialized on both sides.

**Ghost nodes.**  PGX.D replicates the data of high-degree vertices on
every machine ("ghost nodes"; the paper's experiments disable this
feature, and our benchmarks follow suit by default).  When a ghost
threshold is set, every vertex with total degree at or above it has its
*properties and label* — not its adjacency — readable from any machine,
which lets the runtime pre-filter remote hops to hub vertices before
paying for a message.
"""

from repro.errors import RemoteAccessError
from repro.graph.partition import EdgeBalancedRandomPartitioner


class DistributedGraph:
    """A property graph partitioned over M simulated machines."""

    def __init__(self, graph, partition, ghost_threshold=None):
        if partition.num_vertices != graph.num_vertices:
            raise ValueError(
                "partition covers %d vertices but graph has %d"
                % (partition.num_vertices, graph.num_vertices)
            )
        self._graph = graph
        self._partition = partition
        self._ghosts = _select_ghosts(graph, ghost_threshold)
        self._locals = [
            LocalPartition(graph, partition, machine, self._ghosts)
            for machine in range(partition.num_machines)
        ]

    @classmethod
    def create(cls, graph, num_machines, partitioner=None,
               ghost_threshold=None):
        """Partition *graph* over *num_machines* with *partitioner*.

        Defaults to the paper's edge-balanced random partitioner with
        ghost nodes disabled (the paper's experimental configuration).
        """
        if partitioner is None:
            partitioner = EdgeBalancedRandomPartitioner()
        return cls(
            graph,
            partitioner.partition(graph, num_machines),
            ghost_threshold=ghost_threshold,
        )

    @property
    def num_ghosts(self):
        return len(self._ghosts)

    @property
    def graph(self):
        """The underlying global graph (for baselines and verification)."""
        return self._graph

    @property
    def partition(self):
        return self._partition

    @property
    def num_machines(self):
        return self._partition.num_machines

    def local(self, machine):
        """The :class:`LocalPartition` for *machine*."""
        return self._locals[machine]

    def owner(self, vertex):
        return self._partition.owner(vertex)

    def __repr__(self):
        return "DistributedGraph(machines=%d, vertices=%d, edges=%d)" % (
            self.num_machines,
            self._graph.num_vertices,
            self._graph.num_edges,
        )


def _select_ghosts(graph, threshold):
    """Vertex ids whose total degree reaches *threshold* (None = none)."""
    if threshold is None:
        return frozenset()
    ghosts = set()
    for vertex in graph.vertices():
        if graph.out_degree(vertex) + graph.in_degree(vertex) >= threshold:
            ghosts.add(vertex)
    return frozenset(ghosts)


class LocalPartition:
    """The slice of the graph owned by one machine.

    All accessors check ownership; see the module docstring.
    """

    def __init__(self, graph, partition, machine, ghosts=frozenset()):
        self._graph = graph
        self._partition = partition
        self._machine = machine
        self._local_vertices = partition.local_vertices(machine)
        self._ghosts = ghosts

    @property
    def machine(self):
        return self._machine

    @property
    def num_local_vertices(self):
        return len(self._local_vertices)

    def local_vertices(self):
        """Numpy array of vertex ids owned by this machine."""
        return self._local_vertices

    def is_local(self, vertex):
        return self._partition.owner(vertex) == self._machine

    def owner(self, vertex):
        """Owner lookup is global knowledge, allowed from any machine."""
        return self._partition.owner(vertex)

    def _require_local(self, vertex, operation):
        if not self.is_local(vertex):
            raise RemoteAccessError(
                "machine %d attempted %s on vertex %d owned by machine %d"
                % (
                    self._machine,
                    operation,
                    vertex,
                    self._partition.owner(vertex),
                )
            )

    # ------------------------------------------------------------------
    # Adjacency (local vertices only)
    # ------------------------------------------------------------------
    def out_edges(self, vertex):
        self._require_local(vertex, "out_edges")
        return self._graph.out_edges(vertex)

    def in_edges(self, vertex):
        self._require_local(vertex, "in_edges")
        return self._graph.in_edges(vertex)

    def out_degree(self, vertex):
        self._require_local(vertex, "out_degree")
        return self._graph.out_degree(vertex)

    def in_degree(self, vertex):
        self._require_local(vertex, "in_degree")
        return self._graph.in_degree(vertex)

    def edges_between(self, src, dst):
        """Parallel edges ``src -> dst``; requires *src* to be local."""
        self._require_local(src, "edges_between")
        return self._graph.edges_between(src, dst)

    def in_edges_from(self, dst, src):
        """Parallel edges ``src -> dst`` via *dst*'s local in-adjacency."""
        self._require_local(dst, "in_edges_from")
        return self._graph.in_edges_from(dst, src)

    # ------------------------------------------------------------------
    # Ghost nodes
    # ------------------------------------------------------------------
    def is_ghost(self, vertex):
        """Whether *vertex*'s data is replicated on every machine."""
        return vertex in self._ghosts

    def is_readable(self, vertex):
        """Local or ghost: properties and label may be read here."""
        return self.is_local(vertex) or vertex in self._ghosts

    # ------------------------------------------------------------------
    # Labels and properties
    # ------------------------------------------------------------------
    def vertex_label(self, vertex):
        if vertex not in self._ghosts:
            self._require_local(vertex, "vertex_label")
        return self._graph.vertex_label(vertex)

    def vertex_prop(self, name, vertex):
        if vertex not in self._ghosts:
            self._require_local(vertex, "vertex_prop")
        return self._graph.vertex_prop(name, vertex)

    def edge_label(self, edge):
        # Edge data is replicated on both endpoint machines; no check.
        return self._graph.edge_label(edge)

    def edge_prop(self, name, edge):
        return self._graph.edge_prop(name, edge)

    def __repr__(self):
        return "LocalPartition(machine=%d, vertices=%d)" % (
            self._machine,
            self.num_local_vertices,
        )
