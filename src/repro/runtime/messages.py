"""Message types exchanged between simulated machines.

Work messages are *bulk* messages: the message manager packs up to
``bulk_message_size`` intermediate results (contexts) into one network
message (paper §3.2, "already-full bulk messages").  Everything else is
small control traffic that bypasses flow control: acknowledgments,
COMPLETED notifications of the termination protocol, and the quota
messages of dynamic flow-control capacity borrowing.
"""

import itertools

_SEQUENCE = itertools.count(1)


class WorkMessage:
    """A bulk of intermediate results destined for one stage.

    ``items`` are plain context tuples, except for CN_PROBE stages where
    each item is ``(ctx, candidates)`` with *candidates* a tuple of
    ``(vertex, appendix)`` pairs (see ``runtime.hops``).
    """

    __slots__ = ("stage", "items", "seq", "src", "arrived_at")

    def __init__(self, stage, items):
        self.stage = stage
        self.items = items
        self.seq = next(_SEQUENCE)
        self.src = None  # filled in on delivery
        self.arrived_at = 0  # delivery tick (inbox-wait telemetry)

    def __len__(self):
        return len(self.items)

    def __repr__(self):
        return "WorkMessage(stage=%d, items=%d, seq=%d)" % (
            self.stage, len(self.items), self.seq,
        )


class Ack:
    """Receiver finished processing *count* bulk messages of *stage*.

    Frees the sender's flow-control window (paper §3.3) and, in blocking
    mode, wakes workers waiting on specific message sequence numbers.
    """

    __slots__ = ("stage", "count", "seqs")

    def __init__(self, stage, count, seqs=()):
        self.stage = stage
        self.count = count
        self.seqs = tuple(seqs)

    def __repr__(self):
        return "Ack(stage=%d, count=%d)" % (self.stage, self.count)


class Completed:
    """Termination protocol: the sender finished processing *stage*."""

    __slots__ = ("stage",)

    def __init__(self, stage):
        self.stage = stage

    def __repr__(self):
        return "Completed(stage=%d)" % self.stage


class QuotaRequest:
    """Dynamic flow control: ask a peer for spare window capacity.

    The requester is blocked sending *stage* traffic to *dest*; the peer
    may donate part of its own unused window for the same (stage, dest).
    """

    __slots__ = ("stage", "dest")

    def __init__(self, stage, dest):
        self.stage = stage
        self.dest = dest

    def __repr__(self):
        return "QuotaRequest(stage=%d, dest=%d)" % (self.stage, self.dest)


class QuotaGrant:
    """Dynamic flow control: donate *amount* window slots."""

    __slots__ = ("stage", "dest", "amount")

    def __init__(self, stage, dest, amount):
        self.stage = stage
        self.dest = dest
        self.amount = amount

    def __repr__(self):
        return "QuotaGrant(stage=%d, dest=%d, amount=%d)" % (
            self.stage, self.dest, self.amount,
        )


class RelFrame:
    """Reliability layer: one sequenced frame of a directed channel.

    Wraps an application payload (work or control) with the per-
    ``(src, dst)`` channel sequence number the receiver uses for dedup
    and reordering (``runtime.reliability``).  ``stage`` and
    ``trace_name`` delegate to the inner payload so traces and metrics
    stay readable through the wrapper.
    """

    __slots__ = ("seq", "payload", "size")

    def __init__(self, seq, payload, size=0):
        self.seq = seq
        self.payload = payload
        self.size = size

    @property
    def stage(self):
        return getattr(self.payload, "stage", None)

    @property
    def trace_name(self):
        return "Rel[%s]" % type(self.payload).__name__

    def __repr__(self):
        return "RelFrame(seq=%d, payload=%r)" % (self.seq, self.payload)


class RelAck:
    """Reliability layer: cumulative + selective acknowledgment.

    ``cumulative`` acknowledges every frame up to and including that
    sequence number; ``sacked`` lists out-of-order frames already held
    in the receiver's reorder buffer.  Acks are idempotent and sent
    unframed, so their own loss or duplication is harmless — the next
    (re)delivery triggers a fresh one.
    """

    __slots__ = ("cumulative", "sacked")

    def __init__(self, cumulative, sacked=()):
        self.cumulative = cumulative
        self.sacked = tuple(sacked)

    def __repr__(self):
        return "RelAck(cumulative=%d, sacked=%r)" % (
            self.cumulative, self.sacked,
        )
