"""Reliable FIFO channels over an unreliable network.

The termination protocol (``runtime.termination``) and flow control
(``runtime.flow_control``) are sound only on an *ordered, reliable*
transport — the InfiniBand RC assumption the paper inherits from its
messaging library.  When the chaos subsystem makes delivery imperfect
(drops, duplicates, reordering), this module restores that abstraction
end to end, TCP-style but scaled to simulator ticks:

* the sender wraps every payload in a :class:`~repro.runtime.messages.
  RelFrame` carrying a per-``(src, dst)``-channel sequence number and
  keeps it buffered until acknowledged;
* the receiver delivers frames strictly in sequence order: duplicates
  are discarded, out-of-order frames wait in a reorder buffer;
* every received frame triggers a cumulative + selective
  :class:`~repro.runtime.messages.RelAck`; unacknowledged frames are
  retransmitted after a timeout with exponential backoff.

The transport duck-types :class:`~repro.cluster.simulator.MachineAPI`,
so the whole runtime above it (message manager, flow control,
termination) is unchanged — it simply sees the FIFO-reliable network it
was written for.  Delivered-exactly-once accounting lands in
``MachineMetrics`` (``retransmits``, ``dup_frames_dropped``,
``reordered_frames``).
"""

from repro.obs.events import DuplicateFrameDropped, FrameBuffered, Retransmit
from repro.runtime.messages import RelAck, RelFrame


class _ChannelSender:
    """Outbound half of one directed channel."""

    __slots__ = ("next_seq", "unacked")

    def __init__(self):
        self.next_seq = 0
        #: seq -> [frame, size, retransmit_at, current_rto, attempts]
        self.unacked = {}


class _ChannelReceiver:
    """Inbound half of one directed channel."""

    __slots__ = ("expected", "buffer")

    def __init__(self):
        self.expected = 0
        #: Out-of-order frames parked until the gap fills: seq -> payload.
        self.buffer = {}


class ReliableTransport:
    """Per-machine reliable channel layer wrapping a ``MachineAPI``."""

    def __init__(self, api, config, metrics, tracer=None, telemetry=None):
        self._api = api
        self._metrics = metrics
        self._trace = tracer
        self._telemetry = telemetry
        self.machine_id = api.machine_id
        rto = config.retransmit_timeout
        if not rto:
            # Auto: a round trip plus slack for NIC serialization.
            rto = 2 * config.network_latency + 8
        self._rto = rto
        self._rto_cap = 8 * rto
        self._senders = {}
        self._receivers = {}
        #: Earliest pending retransmit tick (None = nothing buffered).
        self._next_poll = None

    # ------------------------------------------------------------------
    # MachineAPI surface
    # ------------------------------------------------------------------
    @property
    def now(self):
        return self._api.now

    @property
    def num_machines(self):
        return self._api.num_machines

    def send(self, dst, payload, size=0):
        sender = self._senders.get(dst)
        if sender is None:
            sender = self._senders[dst] = _ChannelSender()
        seq = sender.next_seq
        sender.next_seq += 1
        frame = RelFrame(seq, payload, size)
        retransmit_at = self.now + self._rto
        sender.unacked[seq] = [frame, size, retransmit_at, self._rto, 1]
        if self._next_poll is None or retransmit_at < self._next_poll:
            self._next_poll = retransmit_at
        self._api.send(dst, frame, size)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, src, payload):
        """Process one delivered payload.

        Returns the ``(src, inner_payload)`` pairs now deliverable to
        the machine, in channel order — possibly none (ack, duplicate,
        out-of-order frame) or several (a frame that filled a gap).
        """
        if isinstance(payload, RelAck):
            self._on_ack(src, payload)
            return ()
        if not isinstance(payload, RelFrame):
            # Unframed traffic (defensive): pass through untouched.
            return ((src, payload),)
        receiver = self._receivers.get(src)
        if receiver is None:
            receiver = self._receivers[src] = _ChannelReceiver()
        seq = payload.seq
        deliveries = []
        if seq < receiver.expected or seq in receiver.buffer:
            self._metrics.dup_frames_dropped += 1
            if self._trace is not None:
                self._trace.emit(DuplicateFrameDropped(
                    self.now, self.machine_id, src, seq
                ))
        else:
            receiver.buffer[seq] = payload.payload
            if seq != receiver.expected:
                self._metrics.reordered_frames += 1
                if self._trace is not None:
                    self._trace.emit(FrameBuffered(
                        self.now, self.machine_id, src, seq,
                        receiver.expected,
                    ))
            while receiver.expected in receiver.buffer:
                deliveries.append(
                    (src, receiver.buffer.pop(receiver.expected))
                )
                receiver.expected += 1
        # Ack on every frame — duplicates included, so a lost ack is
        # repaired by the retransmission it failed to suppress.
        self._api.send(src, RelAck(
            receiver.expected - 1, tuple(sorted(receiver.buffer))
        ))
        self._metrics.control_messages_sent += 1
        return deliveries

    def _on_ack(self, src, ack):
        sender = self._senders.get(src)
        if sender is None:
            return
        unacked = sender.unacked
        for seq in [seq for seq in unacked if seq <= ack.cumulative]:
            del unacked[seq]
        for seq in ack.sacked:
            unacked.pop(seq, None)

    # ------------------------------------------------------------------
    # Timers (driven by the simulator's per-tick hook)
    # ------------------------------------------------------------------
    def poll(self, now):
        """Retransmit every overdue unacknowledged frame.

        Backoff is exponential per frame (doubling up to a cap), so a
        stalled peer sees decaying retransmission pressure instead of a
        storm.  Returns the number of frames resent.
        """
        if self._next_poll is None or now < self._next_poll:
            return 0
        next_poll = None
        resent = 0
        for dst, sender in self._senders.items():
            for seq, record in sender.unacked.items():
                if record[2] <= now:
                    record[4] += 1
                    record[3] = min(record[3] * 2, self._rto_cap)
                    record[2] = now + record[3]
                    self._metrics.retransmits += 1
                    if self._trace is not None:
                        self._trace.emit(Retransmit(
                            now, self.machine_id, dst, seq, record[4]
                        ))
                    if self._telemetry is not None:
                        self._telemetry.retransmit_attempts.observe(
                            record[4]
                        )
                    self._api.send(dst, record[0], record[1])
                    resent += 1
                if next_poll is None or record[2] < next_poll:
                    next_poll = record[2]
        self._next_poll = next_poll
        return resent

    def next_timer_tick(self):
        """Earliest tick a retransmission may be due, or ``None``."""
        return self._next_poll

    def unacked_frames(self):
        """Frames still awaiting acknowledgment (abort diagnostics)."""
        return sum(len(sender.unacked) for sender in self._senders.values())
