"""The PGX.D/Async engine façade (paper step iv).

``PgxdAsyncEngine`` binds a distributed graph to a cluster configuration
and executes PGQL queries end to end: plan (steps i-iii), instantiate
one :class:`QueryMachine` per simulated machine, run the simulator to
completion, and finalize the merged results.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.cluster.simulator import Simulator
from repro.errors import ClusterConfigError
from repro.graph.distributed import DistributedGraph
from repro.pgql import parse_and_validate
from repro.pgql.ast import Query, SelectItem
from repro.plan import PlannerOptions, plan_query
from repro.plan.paths import expand_quantified_paths, has_quantified_paths
from repro.runtime.aggregation import _sort_decorated, finalize, \
    finalize_grouped
from repro.runtime.machine import QueryMachine
from repro.runtime.results import ResultSet


class QueryResult:
    """The outcome of one query execution."""

    def __init__(self, result_set, metrics, plan, stage_profile=None):
        self.result_set = result_set
        self.metrics = metrics
        self.plan = plan
        #: Per-stage counters (EXPLAIN ANALYZE): list of dicts with
        #: ``visits`` (contexts entering the vertex function), ``passes``
        #: (contexts surviving its checks), and ``remote_in`` (contexts
        #: shipped to the stage over the network).  None for results that
        #: did not run on the distributed runtime (e.g. baselines).
        self.stage_profile = stage_profile

    def explain_analyze(self):
        """Stage plan annotated with runtime counters, as text."""
        if self.plan is None or self.stage_profile is None:
            return "no stage profile available"
        lines = []
        for stage, profile in zip(self.plan.stages, self.stage_profile):
            lines.append(
                "Stage %d (%s, %s)  visits=%d  passes=%d  remote_in=%d  "
                "hop=%s"
                % (
                    stage.index,
                    stage.var,
                    stage.kind.value,
                    profile["visits"],
                    profile["passes"],
                    profile["remote_in"],
                    stage.hop.kind.value,
                )
            )
        return "\n".join(lines)

    @property
    def rows(self):
        return self.result_set.rows

    @property
    def columns(self):
        return self.result_set.columns

    def __len__(self):
        return len(self.result_set)

    def __repr__(self):
        return "QueryResult(rows=%d, ticks=%d)" % (
            len(self.result_set),
            self.metrics.ticks,
        )


class PgxdAsyncEngine:
    """A distributed pattern-matching engine over a simulated cluster.

    Typical use::

        engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=8))
        result = engine.query("SELECT a, b WHERE (a)-[:friend]->(b)")
        for row in result.rows:
            ...
    """

    def __init__(self, graph, config=None, partitioner=None,
                 debug_checks=False):
        self.config = config or ClusterConfig()
        if isinstance(graph, DistributedGraph):
            if graph.num_machines != self.config.num_machines:
                raise ClusterConfigError(
                    "distributed graph has %d machines but config asks for %d"
                    % (graph.num_machines, self.config.num_machines)
                )
            self.dist_graph = graph
        else:
            self.dist_graph = DistributedGraph.create(
                graph, self.config.num_machines, partitioner=partitioner
            )
        self.graph = self.dist_graph.graph
        self.debug_checks = debug_checks

    def plan(self, query, options=None):
        """Compile *query* (steps i-iii) without executing it."""
        return plan_query(query, self.graph, options or PlannerOptions())

    def query(self, query, options=None):
        """Plan and execute *query*; returns a :class:`QueryResult`."""
        if isinstance(query, str):
            query = parse_and_validate(query)
        if has_quantified_paths(query):
            return execute_union(query, options, self.query)
        plan = self.plan(query, options)
        return self.execute_plan(plan)

    def execute_plan(self, plan):
        """Step iv: run a compiled plan on the simulated cluster."""
        simulator = Simulator(self.config)
        machines = [
            QueryMachine(
                plan,
                self.dist_graph,
                machine_id,
                simulator.api_for(machine_id),
                self.config,
                debug_checks=self.debug_checks,
            )
            for machine_id in range(self.config.num_machines)
        ]
        simulator.attach(machines)
        metrics = simulator.run()
        stage_profile = [
            {
                "visits": sum(m.stage_visits[i] for m in machines),
                "passes": sum(m.stage_passes[i] for m in machines),
                "remote_in": sum(m.stage_remote_in[i] for m in machines),
            }
            for i in range(plan.num_stages)
        ]
        if plan.output.has_aggregates:
            # Merge the machines' partial aggregation states.
            merged = machines[0].collector
            for machine in machines[1:]:
                merged.merge(machine.collector)
            result_set = finalize_grouped(plan.output, merged)
        else:
            raw_rows = [
                ctx for machine in machines for ctx in machine.collector.rows
            ]
            result_set = finalize(
                plan.output,
                raw_rows,
                plan.query.vertex_vars(),
                plan.query.edge_vars(),
            )
        return QueryResult(result_set, metrics, plan,
                           stage_profile=stage_profile)


def execute_union(query, options, run_one):
    """Execute a variable-length-path query as a union of expansions.

    *run_one* executes a single fixed-length Query (e.g. an engine's
    ``query`` method).  Each expansion runs with ORDER BY / LIMIT /
    DISTINCT stripped and the ORDER BY expressions appended as hidden
    projection columns, so the union can be globally sorted, deduped,
    and truncated here.
    """
    expansions = expand_quantified_paths(query)
    visible = len(query.select_items)
    hidden_order = list(query.order_by)

    all_rows = []
    columns = None
    combined = QueryMetrics()
    plan = None
    for expansion in expansions:
        stripped = Query(
            list(expansion.select_items)
            + [SelectItem(item.expr) for item in hidden_order],
            expansion.paths,
            expansion.constraints,
        )
        result = run_one(stripped, options)
        if columns is None:
            columns = result.columns[:visible]
            plan = result.plan
        all_rows.extend(result.rows)
        _merge_metrics(combined, result.metrics)

    decorated = [(row[visible:], row[:visible]) for row in all_rows]
    if query.distinct:
        seen = set()
        unique = []
        for key, row in decorated:
            if row in seen:
                continue
            seen.add(row)
            unique.append((key, row))
        decorated = unique
    if hidden_order:
        _sort_decorated(decorated, hidden_order)
    rows = [row for _key, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return QueryResult(ResultSet(columns, rows), combined, plan)


def _merge_metrics(total, part):
    """Accumulate *part* into *total* (expansions run back to back)."""
    total.ticks += part.ticks
    total.num_machines = max(total.num_machines, part.num_machines)
    total.total_ops += part.total_ops
    total.total_idle_ticks += part.total_idle_ticks
    total.work_messages += part.work_messages
    total.contexts_shipped += part.contexts_shipped
    total.control_messages += part.control_messages
    total.num_results += part.num_results
    total.flow_control_blocks += part.flow_control_blocks
    total.quota_requests += part.quota_requests
    total.quota_granted += part.quota_granted
    total.ghost_prunes += part.ghost_prunes
    total.wall_time_seconds += part.wall_time_seconds
    total.peak_buffered_contexts = max(
        total.peak_buffered_contexts, part.peak_buffered_contexts
    )
    total.peak_live_frames = max(
        total.peak_live_frames, part.peak_live_frames
    )


def run_query(graph, query, config=None, options=None, debug_checks=False):
    """One-shot convenience wrapper around :class:`PgxdAsyncEngine`."""
    engine = PgxdAsyncEngine(graph, config=config, debug_checks=debug_checks)
    return engine.query(query, options=options)
