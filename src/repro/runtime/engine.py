"""The PGX.D/Async engine façade (paper step iv).

``PgxdAsyncEngine`` binds a distributed graph to a cluster configuration
and executes PGQL queries end to end: plan (steps i-iii), instantiate
one :class:`QueryMachine` per simulated machine, run the simulator to
completion, and finalize the merged results.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.cluster.simulator import Simulator
from repro.context import ExecutionContext
from repro.engine_api import Engine
from repro.errors import ClusterConfigError, QueryAborted
from repro.graph.distributed import DistributedGraph
from repro.pgql import parse_and_validate
from repro.pgql.ast import Query, SelectItem
from repro.plan import PlannerOptions, plan_query
from repro.plan.paths import expand_quantified_paths, has_quantified_paths
from repro.runtime.aggregation import _sort_decorated, finalize, \
    finalize_grouped
from repro.runtime.machine import QueryMachine
from repro.runtime.results import ResultSet


class QueryResult:
    """The outcome of one query execution."""

    def __init__(self, result_set, metrics, plan, stage_profile=None,
                 trace=None, telemetry=None, profiler=None):
        self.result_set = result_set
        self.metrics = metrics
        self.plan = plan
        #: Per-stage counters (EXPLAIN ANALYZE): list of dicts with
        #: ``visits`` (contexts entering the vertex function), ``passes``
        #: (contexts surviving its checks), and ``remote_in`` (contexts
        #: shipped to the stage over the network).  None for results that
        #: did not run on the distributed runtime (e.g. baselines).
        self.stage_profile = stage_profile
        #: The :class:`repro.obs.Tracer` that recorded this execution, or
        #: None when tracing was off (the default).
        self.trace = trace
        #: The :class:`repro.obs.Telemetry` (metrics registry + per-tick
        #: time series) of this execution, or None when live telemetry
        #: was off (the default).
        self.telemetry = telemetry
        #: The :class:`repro.obs.feedback.StageProfiler` that collected
        #: per-machine actual stage cardinalities, or None when profile
        #: collection was off (the default).
        self.profiler = profiler
        self._execution_profile = None

    def execution_profile(self):
        """The plan-vs-actual :class:`~repro.obs.feedback.
        ExecutionProfile` (built once, on first use), or None when the
        run collected no profile."""
        if self.profiler is None or self.plan is None:
            return None
        if self._execution_profile is None:
            from repro.obs.feedback import build_execution_profile

            self._execution_profile = build_execution_profile(
                self.plan, self.profiler
            )
        return self._execution_profile

    def explain_analyze(self):
        """Stage plan annotated with runtime counters, as text.

        With tracing enabled the report folds in the event stream:
        time to first result, distinct ticks each stage spent refused by
        flow control, quota-borrowing traffic, and the tick each stage
        became globally complete.
        """
        if self.plan is None or self.stage_profile is None:
            return "no stage profile available"
        profile = self.trace.profile() if self.trace is not None else None
        exec_profile = self.execution_profile()
        lines = []
        if self.trace is not None and self.trace.dropped:
            lines.append(
                "WARNING: trace truncated — %d events dropped at "
                "max_events=%d; trace-derived counters under-count"
                % (self.trace.dropped, self.trace.max_events)
            )
        if profile is not None:
            ticks = profile.meta.get("ticks")
            if ticks is not None:
                lines.append("total: %d ticks" % ticks)
            if profile.first_result_tick is not None:
                lines.append(
                    "time to first result: tick %d"
                    % profile.first_result_tick
                )
        for stage, counters in zip(self.plan.stages, self.stage_profile):
            line = (
                "Stage %d (%s, %s)  visits=%d  passes=%d  remote_in=%d  "
                "hop=%s"
                % (
                    stage.index,
                    stage.var,
                    stage.kind.value,
                    counters["visits"],
                    counters["passes"],
                    counters["remote_in"],
                    stage.hop.kind.value,
                )
            )
            if exec_profile is not None \
                    and stage.index < len(exec_profile.stages):
                totals = exec_profile.stages[stage.index]
                line += "  scanned=%d  emitted=%d" % (
                    totals["scanned"], totals["emitted"]
                )
            if profile is not None:
                stats = profile.stage_stats(stage.index)
                completed = stats["completed_at"]
                line += (
                    "  blocked_ticks=%d  quota_req=%d  quota_granted=%d  "
                    "completed_at=%s"
                    % (
                        stats["blocked_ticks"],
                        stats["quota_requests"],
                        stats["quota_granted"],
                        "-" if completed is None else completed,
                    )
                )
            lines.append(line)
        if exec_profile is not None:
            extra = exec_profile.summary_lines()
            if extra:
                lines.append("")
                lines.extend(extra)
        return "\n".join(lines)

    @property
    def rows(self):
        return self.result_set.rows

    @property
    def columns(self):
        return self.result_set.columns

    def __len__(self):
        return len(self.result_set)

    def __repr__(self):
        return "QueryResult(rows=%d, ticks=%d)" % (
            len(self.result_set),
            self.metrics.ticks,
        )


class PgxdAsyncEngine(Engine):
    """A distributed pattern-matching engine over a simulated cluster.

    Typical use::

        engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=8))
        result = engine.query("SELECT a, b WHERE (a)-[:friend]->(b)")
        for row in result.rows:
            ...
    """

    def __init__(self, graph, config=None, partitioner=None,
                 debug_checks=False):
        self.config = config or ClusterConfig()
        if isinstance(graph, DistributedGraph):
            if graph.num_machines != self.config.num_machines:
                raise ClusterConfigError(
                    "distributed graph has %d machines but config asks for %d"
                    % (graph.num_machines, self.config.num_machines)
                )
            self.dist_graph = graph
        else:
            self.dist_graph = DistributedGraph.create(
                graph, self.config.num_machines, partitioner=partitioner
            )
        self.graph = self.dist_graph.graph
        self.debug_checks = debug_checks

    def plan(self, query, options=None):
        """Compile *query* (steps i-iii) without executing it."""
        return plan_query(query, self.graph, options or PlannerOptions())

    def query(self, query, options=None, context=None):
        """Plan and execute *query*; returns a :class:`QueryResult`.

        *context* is an optional :class:`~repro.context.ExecutionContext`;
        when omitted one is derived from *options* and the cluster
        config (trace/telemetry flags, ``timeout_ticks``).
        """
        if isinstance(query, str):
            query = parse_and_validate(query)
        if has_quantified_paths(query):
            return execute_union(query, options, self.query)
        plan = self.plan(query, options)
        if context is None:
            context = ExecutionContext.from_options(options, engine=self)
        return self.execute_plan(plan, context)

    def submit(self, query, options=None, priority=1, deadline=None):
        """Non-blocking submission through the multi-query service.

        Returns a :class:`~repro.engine_api.QueryHandle` scheduled on
        this engine's default :class:`~repro.service.QueryService`
        (created on first use).  Queries executed as a union of
        quantified-path expansions fall back to the synchronous default
        handle — they run as several plans and are not (yet) a single
        service scope.
        """
        from repro.plan.paths import has_quantified_paths as _has_qp

        parsed = parse_and_validate(query) if isinstance(query, str) \
            else query
        if _has_qp(parsed):
            return super().submit(parsed, options)
        return self.service().submit(
            parsed, options, priority=priority, deadline=deadline
        )

    def service(self, service_config=None):
        """This engine's lazily created default query service.

        Pass *service_config* on first call to shape admission and
        scoped budgets; later calls with a config replace the service
        only if no queries were ever submitted to the old one.
        """
        from repro.service import QueryService

        existing = getattr(self, "_service", None)
        if existing is None or (
            service_config is not None and not existing.ever_submitted
        ):
            self._service = QueryService(self, service_config)
        return self._service

    def execute_plan(self, plan, context=None, tracer=None, deadline=None,
                     telemetry=None):
        """Step iv: run a compiled plan on the simulated cluster.

        *context* carries the cross-cutting execution state (tracer,
        telemetry, deadline, query_id); see :class:`~repro.context.
        ExecutionContext`.  The ``tracer=`` / ``deadline=`` /
        ``telemetry=`` keywords are deprecated shims folded into the
        context for existing call sites.
        """
        context = _coerce_context(context, tracer, deadline, telemetry)
        simulator, machines = self.prepare_execution(plan, context)
        metrics = simulator.run()
        return self.finalize_execution(plan, machines, metrics, context)

    def prepare_execution(self, plan, context, config=None):
        """Instantiate the simulator and per-machine runtimes for *plan*.

        Returns ``(simulator, machines)`` ready to run — either via
        ``simulator.run()`` (the synchronous path) or stepped one tick
        at a time by the multi-query service.  *config* overrides the
        engine's cluster config (the service passes a scoped copy whose
        flow-control window is carved from the machine-wide limit).
        """
        if config is None:
            config = self.config
        tracer = context.tracer
        telemetry = context.telemetry
        if tracer is not None:
            tracer.meta.update(
                num_machines=config.num_machines,
                num_stages=plan.num_stages,
                workers_per_machine=config.workers_per_machine,
                ops_per_tick=config.ops_per_tick,
            )
        simulator = Simulator(config, tracer=tracer, telemetry=telemetry)
        simulator.query_id = context.query_id
        if context.deadline is not None:
            simulator.deadline = context.deadline
        profiler = context.profiler
        machines = []
        for machine_id in range(config.num_machines):
            profile_view = None
            if profiler is not None:
                profile_view = profiler.machine(machine_id, plan.num_stages)
            machines.append(QueryMachine(
                plan,
                self.dist_graph,
                machine_id,
                simulator.api_for(machine_id),
                config,
                debug_checks=self.debug_checks,
                tracer=tracer,
                telemetry=telemetry,
                profiler=profile_view,
            ))
        simulator.attach(machines)
        return simulator, machines

    def finalize_execution(self, plan, machines, metrics, context):
        """Merge per-machine state into the :class:`QueryResult`."""
        stage_profile = [
            {
                "visits": sum(m.stage_visits[i] for m in machines),
                "passes": sum(m.stage_passes[i] for m in machines),
                "remote_in": sum(m.stage_remote_in[i] for m in machines),
            }
            for i in range(plan.num_stages)
        ]
        if plan.output.has_aggregates:
            # Merge the machines' partial aggregation states.
            merged = machines[0].collector
            for machine in machines[1:]:
                merged.merge(machine.collector)
            result_set = finalize_grouped(plan.output, merged)
        else:
            raw_rows = [
                ctx for machine in machines for ctx in machine.collector.rows
            ]
            result_set = finalize(
                plan.output,
                raw_rows,
                plan.query.vertex_vars(),
                plan.query.edge_vars(),
            )
        profiler = context.profiler
        if profiler is not None:
            profiler.absorb(machines)
            if context.telemetry is not None:
                from repro.obs.feedback import (
                    build_execution_profile,
                    publish_drift,
                )

                publish_drift(context.telemetry,
                              build_execution_profile(plan, profiler))
        return QueryResult(result_set, metrics, plan,
                           stage_profile=stage_profile,
                           trace=context.tracer,
                           telemetry=context.telemetry,
                           profiler=profiler)


def _coerce_context(context, tracer, deadline, telemetry):
    """Fold the deprecated per-kwarg threading into one context."""
    if context is not None and not isinstance(context, ExecutionContext):
        raise TypeError(
            "execute_plan expects an ExecutionContext, got %r — pass "
            "tracer=/deadline=/telemetry= by keyword (deprecated) or "
            "build an ExecutionContext" % (context,)
        )
    if context is None:
        context = ExecutionContext()
    if tracer is not None:
        context = context.replace(tracer=tracer)
    if deadline is not None:
        context = context.replace(deadline=deadline)
    if telemetry is not None:
        context = context.replace(telemetry=telemetry)
    return context


def execute_union(query, options, run_one):
    """Execute a variable-length-path query as a union of expansions.

    *run_one* executes a single fixed-length Query (e.g. an engine's
    ``query`` method).  Each expansion runs with ORDER BY / LIMIT /
    DISTINCT stripped and the ORDER BY expressions appended as hidden
    projection columns, so the union can be globally sorted, deduped,
    and truncated here.
    """
    expansions = expand_quantified_paths(query)
    visible = len(query.select_items)
    hidden_order = list(query.order_by)

    all_rows = []
    columns = None
    combined = QueryMetrics()
    plan = None
    profiles = []  # (plan, stage_profile) of expansions that computed one
    merged_trace = None
    merged_telemetry = None
    for expansion in expansions:
        stripped = Query(
            list(expansion.select_items)
            + [SelectItem(item.expr) for item in hidden_order],
            expansion.paths,
            expansion.constraints,
        )
        try:
            result = run_one(stripped, options)
        except QueryAborted as aborted:
            # Fold the finished expansions' metrics into the abort so
            # the caller sees the whole union's partial progress.
            if aborted.metrics is not None:
                combined.merge(aborted.metrics)
            aborted.metrics = combined
            raise
        if columns is None:
            columns = result.columns[:visible]
            plan = result.plan
        all_rows.extend(result.rows)
        if result.stage_profile is not None:
            profiles.append((result.plan, result.stage_profile))
        if result.trace is not None:
            # Expansions run back to back: lay their traces out end to
            # end by offsetting each by the ticks accumulated so far.
            if merged_trace is None:
                from repro.obs import Tracer

                merged_trace = Tracer(max_events=result.trace.max_events)
            merged_trace.extend(result.trace, tick_offset=combined.ticks)
        if result.telemetry is not None:
            # Same end-to-end layout for the telemetry time series.
            if merged_telemetry is None:
                from repro.obs import Telemetry

                merged_telemetry = Telemetry()
            merged_telemetry.extend(
                result.telemetry, tick_offset=combined.ticks
            )
        combined.merge(result.metrics)

    stage_profile = None
    if profiles:
        # Expansions have different lengths; fold their per-stage counters
        # by stage position and report against the longest expansion's
        # plan so EXPLAIN ANALYZE covers every aggregated stage.
        plan = max(profiles, key=lambda pair: len(pair[1]))[0]
        stage_profile = [{} for _ in range(max(
            len(part) for _plan, part in profiles
        ))]
        for _plan, part in profiles:
            for index, entry in enumerate(part):
                slot = stage_profile[index]
                for key, value in entry.items():
                    slot[key] = slot.get(key, 0) + value

    decorated = [(row[visible:], row[:visible]) for row in all_rows]
    if query.distinct:
        seen = set()
        unique = []
        for key, row in decorated:
            if row in seen:
                continue
            seen.add(row)
            unique.append((key, row))
        decorated = unique
    if hidden_order:
        _sort_decorated(decorated, hidden_order)
    rows = [row for _key, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return QueryResult(ResultSet(columns, rows), combined, plan,
                       stage_profile=stage_profile, trace=merged_trace,
                       telemetry=merged_telemetry)


def run_query(graph, query, config=None, options=None, debug_checks=False,
              context=None):
    """One-shot convenience wrapper around :class:`PgxdAsyncEngine`.

    *context* is an optional :class:`~repro.context.ExecutionContext`
    passed through to :meth:`PgxdAsyncEngine.query`.
    """
    engine = PgxdAsyncEngine(graph, config=config, debug_checks=debug_checks)
    return engine.query(query, options=options, context=context)
