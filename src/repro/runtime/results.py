"""Query result container."""


class ResultSet:
    """An ordered, named-column result table.

    Rows are plain tuples in a deterministic order: the simulated
    execution is deterministic, and ``ORDER BY`` (when present) sorts
    during finalization.
    """

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = list(rows)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def column(self, name):
        """All values of the column *name*."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self):
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_rows(self):
        """Rows sorted by repr — handy for order-insensitive comparisons."""
        return sorted(self.rows, key=repr)

    def __repr__(self):
        return "ResultSet(columns=%r, rows=%d)" % (self.columns, len(self.rows))

    def pretty(self, limit=20):
        """A small fixed-width rendering for examples and debugging."""
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(value) for value in row))
        if len(self.rows) > limit:
            lines.append("... (%d more rows)" % (len(self.rows) - limit))
        return "\n".join(lines)
