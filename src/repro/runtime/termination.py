"""Incremental termination protocol (paper §3.3, after Potter et al.).

Machine *k* may declare stage *n* complete — broadcasting COMPLETED(n) —
once it can prove it will never again produce work from stage *n*:

* ``n == 0``: bootstrapping is finished; for ``n > 0``: every machine
  (including *k* itself) has completed stage ``n - 1``, so no new
  stage-*n* contexts can ever arrive;
* all received stage-*n* contexts have been fully processed
  (``stage_load[n] == 0`` — inbox items and live traversal frames); and
* all output generated *by* stage *n* (the buffers targeting stage
  ``n + 1``) has been handed to the network.

Because the network is FIFO per channel, a COMPLETED(n) can never
overtake the sender's earlier stage-(n+1) work messages, which makes the
receiver-side "inbox empty" check sound.

The query is finished on machine *k* when *k* knows every machine has
completed every stage.
"""


class TerminationTracker:
    """Per-machine bookkeeping for the COMPLETED protocol."""

    def __init__(self, num_stages, num_machines, machine_id):
        self._num_stages = num_stages
        self._num_machines = num_machines
        self._machine_id = machine_id
        #: completed[n] = set of machines known to have completed stage n.
        self._completed = [set() for _ in range(num_stages)]
        self._sent = [False] * num_stages
        #: Latched true by :meth:`all_complete`; completion sets only
        #: ever grow, so once everything is complete it stays complete.
        self._all_complete = False

    # ------------------------------------------------------------------
    def on_completed(self, stage, machine):
        self._completed[stage].add(machine)

    def sent(self, stage):
        return self._sent[stage]

    def mark_sent(self, stage):
        self._sent[stage] = True
        self._completed[stage].add(self._machine_id)

    def stage_globally_complete(self, stage):
        return len(self._completed[stage]) == self._num_machines

    def predecessor_complete(self, stage):
        """True when every machine completed every stage before *stage*."""
        if stage == 0:
            return True
        return self.stage_globally_complete(stage - 1)

    def all_complete(self):
        if self._all_complete:
            return True
        if all(
            len(done) == self._num_machines for done in self._completed
        ):
            self._all_complete = True
            return True
        return False

    def progress_summary(self):
        """Compact per-stage completion snapshot, e.g. ``"stages
        complete: 3/3, 1/3, 0/3"`` — attached to ``QueryAborted`` so an
        aborted run reports how far the termination wavefront got."""
        return "stages complete: " + ", ".join(
            "%d/%d" % (len(done), self._num_machines)
            for done in self._completed
        )

    def newly_completable(self, stage, bootstrap_done, stage_load,
                          outbuf_empty):
        """Can this machine declare *stage* complete right now?

        *stage_load* — unconsumed inbox items plus live frames at *stage*;
        *outbuf_empty* — no buffered unsent contexts targeting stage+1.
        """
        if self._sent[stage]:
            return False
        if stage == 0 and not bootstrap_done:
            return False
        if not self.predecessor_complete(stage):
            return False
        return stage_load == 0 and outbuf_empty
