"""Hop engine execution (paper §3.2).

Each stage transitions to the next through a *hop engine*.  At runtime a
hop is an incremental cursor attached to a traversal frame: every
``advance`` call performs one micro-operation (inspecting one neighbor,
emitting one continuation) so the simulator can charge costs precisely
and a worker can suspend mid-hop when flow control blocks a send.

The ``rt`` parameter is the per-machine runtime facade
(:class:`repro.runtime.machine.QueryMachine`), providing ``route`` for
continuations, the local partition, and ownership lookups.
"""

import enum

from repro.errors import RuntimeFault
from repro.plan.distributed import HopKind


class Advance(enum.Enum):
    PROGRESS = "progress"      # did one unit of work, call again
    EXHAUSTED = "exhausted"    # hop finished; pop the frame
    BLOCKED = "blocked"        # a send was refused; computation must park


class AllScanItem:
    """Work item for an ALL_VERTICES broadcast: scan local vertices."""

    __slots__ = ("ctx",)

    def __init__(self, ctx):
        self.ctx = ctx


class CNItem:
    """Work item for a CN_PROBE stage: base context plus candidates.

    ``candidates`` is a tuple of ``(vertex, appendix)`` pairs where the
    appendix carries the collected left-edge captures for that candidate.
    """

    __slots__ = ("ctx", "candidates")

    def __init__(self, ctx, candidates):
        self.ctx = ctx
        self.candidates = candidates

    def __len__(self):
        return 1 + len(self.candidates)


def make_cursor(stage, frame, rt):
    """Instantiate the hop cursor for *frame* at *stage*."""
    hop = stage.hop
    kind = hop.kind
    if kind is HopKind.OUTPUT:
        return _OutputCursor()
    if kind is HopKind.NEIGHBOR:
        return _NeighborCursor(stage, frame, rt)
    if kind is HopKind.VERTEX:
        return _VertexCursor(stage, frame, rt)
    if kind is HopKind.ALL_VERTICES:
        return _AllVerticesCursor(rt)
    if kind is HopKind.CN_COLLECT:
        return _CNCollectCursor(stage, frame, rt)
    if kind is HopKind.CN_PROBE:
        return _CNProbeCursor(stage, frame)
    raise RuntimeFault("unknown hop kind: %r" % (kind,))


def _edge_accepted(hop, ctx, vertex, eid, rt):
    """Shared edge admission test: label, isomorphism, filter."""
    if hop.edge_label_id is not None:
        if rt.graph.edge_label(eid) != hop.edge_label_id:
            return False
    for slot in hop.iso_edge_slots:
        if ctx[slot] == eid:
            return False
    if hop.edge_filter is not None and not hop.edge_filter(ctx, vertex, eid):
        return False
    return True


def _extend(hop, ctx, eid, target=None):
    """Append the hop's edge captures (and optionally the target id)."""
    if hop.edge_captures:
        ctx = ctx + tuple(capture(eid) for capture in hop.edge_captures)
    if target is not None:
        ctx = ctx + (target,)
    return ctx


class _OutputCursor:
    """Deliver the completed context to the machine-local collector."""

    __slots__ = ("_done",)

    def __init__(self):
        self._done = False

    def advance(self, rt, comp, frame):
        if self._done:
            return Advance.EXHAUSTED
        self._done = True
        rt.emit_result(frame.ctx)
        return Advance.PROGRESS


class _NeighborCursor:
    """Out- or in-neighbor hop over the current vertex's adjacency."""

    __slots__ = ("_neighbors", "_edge_ids", "_pos")

    def __init__(self, stage, frame, rt):
        from repro.graph.types import Direction

        if stage.hop.direction is Direction.OUT:
            self._neighbors, self._edge_ids = rt.local.out_edges(frame.vertex)
        else:
            self._neighbors, self._edge_ids = rt.local.in_edges(frame.vertex)
        self._pos = 0

    def advance(self, rt, comp, frame):
        if self._pos >= len(self._neighbors):
            return Advance.EXHAUSTED
        hop = rt.plan.stages[frame.stage_index].hop
        target = int(self._neighbors[self._pos])
        eid = int(self._edge_ids[self._pos])
        self._pos += 1
        if rt.profiler is not None:
            rt.profiler.scanned[frame.stage_index] += 1
        if not _edge_accepted(hop, frame.ctx, frame.vertex, eid, rt):
            return Advance.PROGRESS
        out_ctx = _extend(
            hop, frame.ctx, eid,
            target=target if hop.appends_target_id else None,
        )
        dest = rt.owner(target)
        if dest != rt.machine_id and hop.appends_target_id and \
                not rt.ghost_admits(frame.stage_index + 1, out_ctx, target):
            # Ghost-node pre-filter: the target's replicated data already
            # fails the next stage — skip the message entirely.
            return Advance.PROGRESS
        if rt.route(comp, frame.stage_index + 1, dest, out_ctx):
            return Advance.PROGRESS
        self._pos -= 1  # replay this neighbor when the send resumes
        return Advance.BLOCKED


class _VertexCursor:
    """Hop to one bound vertex, optionally checking an edge to/from it.

    Without an edge requirement this is a pure inspection step (one
    continuation).  With one, each matching parallel edge produces its
    own continuation so that a bound edge variable enumerates them all.
    """

    __slots__ = ("_target", "_edge_ids", "_pos")

    def __init__(self, stage, frame, rt):
        hop = stage.hop
        self._target = frame.ctx[hop.target_slot]
        if hop.edge_req_orientation is None:
            self._edge_ids = None
            self._pos = 0
        elif hop.edge_req_orientation == "current_to_target":
            self._edge_ids = rt.local.edges_between(frame.vertex, self._target)
            self._pos = 0
        else:  # target_to_current: scan the current vertex's in-adjacency
            self._edge_ids = rt.local.in_edges_from(frame.vertex, self._target)
            self._pos = 0

    def advance(self, rt, comp, frame):
        hop = rt.plan.stages[frame.stage_index].hop
        if self._edge_ids is None:
            # Pure inspection: a single unconditional continuation.
            self._edge_ids = []
            if rt.route(comp, frame.stage_index + 1, rt.owner(self._target),
                        frame.ctx):
                return Advance.PROGRESS
            self._edge_ids = None  # replay on resume
            return Advance.BLOCKED
        if self._pos >= len(self._edge_ids):
            return Advance.EXHAUSTED
        eid = self._edge_ids[self._pos]
        self._pos += 1
        if rt.profiler is not None:
            rt.profiler.scanned[frame.stage_index] += 1
        if not _edge_accepted(hop, frame.ctx, frame.vertex, eid, rt):
            return Advance.PROGRESS
        out_ctx = _extend(hop, frame.ctx, eid)
        if rt.route(comp, frame.stage_index + 1, rt.owner(self._target),
                    out_ctx):
            return Advance.PROGRESS
        self._pos -= 1
        return Advance.BLOCKED


class _AllVerticesCursor:
    """Cartesian restart: broadcast the context to every machine."""

    __slots__ = ("_machines", "_pos")

    def __init__(self, rt):
        self._machines = rt.num_machines
        self._pos = 0

    def advance(self, rt, comp, frame):
        if self._pos >= self._machines:
            return Advance.EXHAUSTED
        dest = self._pos
        self._pos += 1
        item = AllScanItem(frame.ctx)
        if rt.route(comp, frame.stage_index + 1, dest, item):
            return Advance.PROGRESS
        self._pos -= 1
        return Advance.BLOCKED


class _CNCollectCursor:
    """Phase one of the specialized common-neighbor hop (paper §5).

    Collects the current vertex's qualifying out-neighbors into a
    candidate list, then ships (context, candidates) to the machine of
    the *other* bound source vertex, which probes them against its own
    out-adjacency.  This "exchanges the edges of one another" instead of
    routing one message per neighbor.
    """

    __slots__ = ("_neighbors", "_edge_ids", "_pos", "_candidates", "_sentout")

    def __init__(self, stage, frame, rt):
        self._neighbors, self._edge_ids = rt.local.out_edges(frame.vertex)
        self._pos = 0
        self._candidates = []
        self._sentout = False

    def advance(self, rt, comp, frame):
        hop = rt.plan.stages[frame.stage_index].hop
        if self._pos < len(self._neighbors):
            target = int(self._neighbors[self._pos])
            eid = int(self._edge_ids[self._pos])
            self._pos += 1
            if rt.profiler is not None:
                rt.profiler.scanned[frame.stage_index] += 1
            if _edge_accepted(hop, frame.ctx, frame.vertex, eid, rt):
                appendix = tuple(
                    capture(eid) for capture in hop.edge_captures
                )
                self._candidates.append((target, appendix))
            return Advance.PROGRESS
        if self._sentout:
            return Advance.EXHAUSTED
        if not self._candidates:
            return Advance.EXHAUSTED
        other = frame.ctx[hop.target_slot]
        item = CNItem(frame.ctx, tuple(self._candidates))
        if rt.route(comp, frame.stage_index + 1, rt.owner(other), item):
            self._sentout = True
            return Advance.PROGRESS
        return Advance.BLOCKED


class _CNProbeCursor:
    """Phase two: intersect candidates with the probing vertex's edges."""

    __slots__ = ("_candidates", "_pos", "_edge_ids", "_edge_pos", "_appendix",
                 "_target")

    def __init__(self, stage, frame):
        self._candidates = frame.cn_payload or ()
        self._pos = 0
        self._edge_ids = None
        self._edge_pos = 0
        self._appendix = None
        self._target = None

    def advance(self, rt, comp, frame):
        hop = rt.plan.stages[frame.stage_index].hop
        while True:
            if self._edge_ids is None:
                if self._pos >= len(self._candidates):
                    return Advance.EXHAUSTED
                self._target, self._appendix = self._candidates[self._pos]
                self._pos += 1
                self._edge_ids = rt.local.edges_between(
                    frame.vertex, self._target
                )
                self._edge_pos = 0
                return Advance.PROGRESS
            if self._edge_pos >= len(self._edge_ids):
                self._edge_ids = None
                continue
            eid = self._edge_ids[self._edge_pos]
            self._edge_pos += 1
            if rt.profiler is not None:
                rt.profiler.scanned[frame.stage_index] += 1
            base_ctx = frame.ctx + self._appendix
            if not _edge_accepted(hop, base_ctx, frame.vertex, eid, rt):
                return Advance.PROGRESS
            out_ctx = _extend(hop, base_ctx, eid, target=self._target)
            if rt.route(comp, frame.stage_index + 1, rt.owner(self._target),
                        out_ctx):
                return Advance.PROGRESS
            self._edge_pos -= 1
            return Advance.BLOCKED
