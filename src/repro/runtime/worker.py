"""Traversal frames, computations, and the worker DOWORK loop.

A *computation* is the in-place depth-first traversal of the graph
within one machine by one or more stages (paper §3.3): an explicit stack
of frames, rooted either at the bootstrap scan (stage 0) or at a
received work message.  Workers keep at most one parked computation per
root stage — the paper's ``State[n, w]`` — and the DOWORK loop services
stages in descending order so that later-stage work (which produces less
net future work) drains first, relieving memory pressure.
"""

import enum

from repro.errors import RuntimeFault
from repro.obs.events import FlowUnblock, WorkerSpan
from repro.runtime.hops import Advance, AllScanItem, CNItem, make_cursor


class StageFrame:
    """The traversal positioned at one vertex of one stage."""

    __slots__ = ("stage_index", "ctx", "vertex", "phase", "cursor",
                 "cn_payload")

    def __init__(self, stage_index, ctx, vertex, cn_payload=None):
        self.stage_index = stage_index
        self.ctx = ctx
        self.vertex = vertex
        self.phase = 0  # 0 = vertex function pending, 1 = hopping
        self.cursor = None
        self.cn_payload = cn_payload


class ScanFrame:
    """Iterates a set of vertices, spawning a StageFrame for each.

    Used for bootstrapping stage 0 (all local vertices, or the single
    origin vertex) and for ALL_VERTICES cartesian restarts.
    """

    __slots__ = ("stage_index", "base_ctx", "vertices", "pos")

    def __init__(self, stage_index, base_ctx, vertices):
        self.stage_index = stage_index
        self.base_ctx = base_ctx
        # Convert numpy vertex arrays to plain ints once per frame:
        # the scan loop then indexes python ints directly instead of
        # boxing one numpy scalar per element.
        tolist = getattr(vertices, "tolist", None)
        self.vertices = vertices if tolist is None else tolist()
        self.pos = 0


class RunStatus(enum.Enum):
    DONE = "done"          # computation finished (and acked, if a message)
    BLOCKED = "blocked"    # parked on a refused send
    BUDGET = "budget"      # out of micro-ops this step


class Computation:
    """A depth-first traversal rooted at one stage on one machine."""

    __slots__ = ("root_stage", "stack", "message", "item_pos", "blocked_on")

    def __init__(self, root_stage, message=None):
        self.root_stage = root_stage
        self.stack = []
        self.message = message
        self.item_pos = 0
        #: (stage, dest) of the refused send while parked, else None.
        self.blocked_on = None

    @classmethod
    def from_message(cls, message):
        return cls(message.stage, message=message)

    @classmethod
    def bootstrap(cls, frame):
        comp = cls(0)
        comp.stack.append(frame)
        return comp

    def has_work(self):
        if self.stack:
            return True
        return (
            self.message is not None
            and self.item_pos < len(self.message.items)
        )


def frame_for_item(rt, stage_index, item):
    """Materialize a work item (local push or message item) as a frame."""
    if isinstance(item, AllScanItem):
        return ScanFrame(stage_index, item.ctx, rt.local.local_vertices())
    if isinstance(item, CNItem):
        stage = rt.plan.stages[stage_index]
        vertex = item.ctx[stage.vertex_slot]
        return StageFrame(stage_index, item.ctx, vertex,
                          cn_payload=item.candidates)
    stage = rt.plan.stages[stage_index]
    return StageFrame(stage_index, item, item[stage.vertex_slot])


def run_computation(rt, comp, budget):
    """Advance *comp* by up to *budget* micro-ops.

    Returns ``(ops_used, RunStatus)``.  The computation only reports
    DONE once its stack is empty and, for message computations, every
    item has been consumed — at which point the ack has been sent.

    With bulk kernels enabled (``ClusterConfig.bulk_kernels``, the
    default outside blocking mode) execution delegates to the compiled
    fast path, which charges identical op counts at identical points;
    the loop below is the reference micro-stepped semantics.
    """
    kernels = rt.kernels
    if kernels is not None:
        return kernels.run(rt, comp, budget)
    ops = 0
    while True:
        if not comp.stack:
            # Resolve completion before the budget check so a computation
            # that drains its stack exactly at the budget boundary reports
            # DONE instead of lingering as a zero-op slot occupant.
            message = comp.message
            if message is None or comp.item_pos >= len(message.items):
                if message is not None:
                    rt.send_ack(message)
                return ops, RunStatus.DONE
            if ops >= budget or rt.sync_wait_flagged():
                return ops, RunStatus.BUDGET
            item = message.items[comp.item_pos]
            comp.item_pos += 1
            rt.note_item_consumed(comp.root_stage, item)
            rt.push_frame(comp, frame_for_item(rt, comp.root_stage, item))
            ops += 1
            continue
        if ops >= budget or rt.sync_wait_flagged():
            return ops, RunStatus.BUDGET

        frame = comp.stack[-1]
        if isinstance(frame, ScanFrame):
            ops += 1
            if frame.pos < len(frame.vertices):
                vertex = frame.vertices[frame.pos]
                frame.pos += 1
                child = StageFrame(
                    frame.stage_index, frame.base_ctx + (vertex,), vertex
                )
                rt.push_frame(comp, child)
            else:
                rt.pop_frame(comp)
            continue

        stage = rt.plan.stages[frame.stage_index]
        if frame.phase == 0:
            ops += stage.work_cost
            if not _vertex_function(rt, stage, frame):
                rt.pop_frame(comp)
                continue
            frame.phase = 1
            frame.cursor = make_cursor(stage, frame, rt)
            continue

        result = frame.cursor.advance(rt, comp, frame)
        ops += stage.hop.work_cost
        if result is Advance.EXHAUSTED:
            rt.pop_frame(comp)
        elif result is Advance.BLOCKED:
            return ops, RunStatus.BLOCKED
        # PROGRESS: loop


def vertex_admissible(rt, stage, ctx, vertex):
    """The adjacency-free part of the vertex function: label check,
    vertex-distinctness, compiled filters.

    Shared between the vertex function proper (on the owner machine) and
    the ghost-node pre-filter, which runs these same checks on the
    *sending* machine when the target's data is replicated there.
    """
    if stage.label_id is not None and \
            rt.graph.vertex_label(vertex) != stage.label_id:
        return False
    for slot in stage.iso_vertex_slots:
        if ctx[slot] == vertex:
            return False
    if stage.filter is not None and not stage.filter(ctx, vertex, -1):
        return False
    return True


def _vertex_function(rt, stage, frame):
    """Label check, isomorphism check, filters, induced check, captures.

    Returns False when the vertex fails; True after extending the
    context with this stage's captures.
    """
    vertex = frame.vertex
    ctx = frame.ctx

    if rt.debug_checks and not rt.local.is_local(vertex):
        raise RuntimeFault(
            "stage %d executed on machine %d for remote vertex %d"
            % (stage.index, rt.machine_id, vertex)
        )

    rt.stage_visits[stage.index] += 1
    if not vertex_admissible(rt, stage, ctx, vertex):
        return False
    for slot in stage.forbidden_slots:
        if rt.local.edges_between(vertex, ctx[slot]):
            return False
    rt.stage_passes[stage.index] += 1
    if stage.captures:
        frame.ctx = ctx + tuple(capture(vertex) for capture in stage.captures)
    return True


class Worker:
    """One simulated worker thread: per-root-stage computation slots plus
    the descending-stage DOWORK loop of paper Figure 4."""

    __slots__ = ("rt", "index", "slots", "waiting_for_seq", "debt")

    def __init__(self, rt, index):
        self.rt = rt
        self.index = index
        self.slots = [None] * rt.plan.num_stages
        #: Blocking mode (ABL4): sequence number of the un-acked message
        #: this worker is synchronously waiting for.
        self.waiting_for_seq = None
        #: Micro-ops consumed beyond a previous tick's budget (an
        #: indivisible operation may overshoot); repaid before new work so
        #: the long-run rate never exceeds ``ops_per_tick``.
        self.debt = 0

    def step(self, budget):
        """Run up to *budget* micro-op time units; returns time consumed.

        Real ops are accounted into the machine metrics here; the return
        value is the slice of the tick spent (0 = fully idle).
        """
        rt = self.rt
        if self.debt >= budget:
            self.debt -= budget
            return budget  # the whole slice repays earlier overshoot
        effective = budget - self.debt
        paid = self.debt
        self.debt = 0

        if self.waiting_for_seq is not None:
            if rt.is_acked(self.waiting_for_seq):
                self.waiting_for_seq = None
            else:
                return paid  # synchronous wait burns the slice

        used = 0
        while used < effective:
            if rt._sync_wait is not None:
                break  # blocking mode: stop right after a remote send
            progressed = self._dowork_once(effective - used, paid + used)
            if progressed == 0:
                break
            used += progressed
        if used == 0:
            used += rt.idle_progress()
            if used and rt.trace is not None:
                rt.trace.emit(WorkerSpan(
                    rt.api.now, rt.machine_id, self.index, -1, used, paid
                ))
        rt.metrics.ops += used
        if used > effective:
            self.debt = used - effective
            return budget
        return paid + used

    def _dowork_once(self, budget, trace_offset=0):
        """One DOWORK scan: prefer the latest stage with runnable work.

        *trace_offset* — micro-ops this worker already consumed earlier
        in the current tick; only used to place trace spans sub-tick.
        """
        rt = self.rt
        slots = self.slots
        inbox = rt._inbox
        local_inbox = rt._local_inbox
        for stage_index in range(len(slots) - 1, -1, -1):
            comp = slots[stage_index]
            if comp is None:
                # Cheap pre-check before _acquire: the DOWORK scan visits
                # every stage per call, and on most visits all three work
                # sources are empty.
                if (
                    not inbox[stage_index]
                    and not local_inbox[stage_index]
                    and (stage_index != 0 or not rt._bootstrap_chunks)
                ):
                    continue
                comp = self._acquire(stage_index)
                if comp is None:
                    continue
                self.slots[stage_index] = comp
            elif comp.blocked_on is not None:
                stage, dest = comp.blocked_on
                if not rt.can_enqueue(stage, dest):
                    rt.maybe_request_quota(stage, dest)
                    continue  # still blocked; try earlier stages
                comp.blocked_on = None
                if rt.trace is not None:
                    rt.trace.emit(FlowUnblock(
                        rt.api.now, rt.machine_id, stage, dest
                    ))

            ops, status = run_computation(rt, comp, budget)
            if status is RunStatus.DONE:
                self.slots[stage_index] = None
            elif status is RunStatus.BLOCKED:
                comp.blocked_on = rt.last_refused
            if ops:
                if rt.trace is not None:
                    rt.trace.emit(WorkerSpan(
                        rt.api.now, rt.machine_id, self.index,
                        stage_index, ops, trace_offset,
                    ))
                return ops
        return 0

    def _acquire(self, stage_index):
        """New work for *stage_index*: a remote message, a work-shared
        local continuation, or (stage 0) the next bootstrap chunk."""
        rt = self.rt
        message = rt.pop_message(stage_index)
        if message is not None:
            return Computation.from_message(message)
        item = rt.pop_local_item(stage_index)
        if item is not None:
            comp = Computation(stage_index)
            rt.push_frame(comp, frame_for_item(rt, stage_index, item))
            return comp
        if stage_index == 0:
            frame = rt.next_bootstrap_frame()
            if frame is not None:
                return Computation.bootstrap(frame)
        return None
