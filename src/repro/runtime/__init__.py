"""PGX.D/Async runtime: stages, hop engines, flow control, termination."""

from repro.runtime.aggregation import AggregateState, finalize
from repro.runtime.engine import PgxdAsyncEngine, QueryResult, run_query
from repro.runtime.flow_control import FlowControl
from repro.runtime.hops import AllScanItem, CNItem
from repro.runtime.machine import QueryMachine
from repro.runtime.messages import (
    Ack,
    Completed,
    QuotaGrant,
    QuotaRequest,
    RelAck,
    RelFrame,
    WorkMessage,
)
from repro.runtime.reliability import ReliableTransport
from repro.runtime.results import ResultSet
from repro.runtime.termination import TerminationTracker
from repro.runtime.worker import (
    Computation,
    RunStatus,
    ScanFrame,
    StageFrame,
    Worker,
)

__all__ = [
    "PgxdAsyncEngine",
    "QueryResult",
    "run_query",
    "ResultSet",
    "QueryMachine",
    "FlowControl",
    "TerminationTracker",
    "WorkMessage",
    "Ack",
    "Completed",
    "QuotaRequest",
    "QuotaGrant",
    "RelFrame",
    "RelAck",
    "ReliableTransport",
    "AllScanItem",
    "CNItem",
    "Worker",
    "Computation",
    "RunStatus",
    "StageFrame",
    "ScanFrame",
    "finalize",
    "AggregateState",
]
