"""Strict, precise flow control (paper §3.3).

Each sending machine keeps, per (stage *n*, destination machine *m*), a
counter of unacknowledged bulk messages in flight and a window limit
``b[n][m]``.  A message may be sent only while the counter is below the
limit; acknowledgments decrement it.  With ``M`` machines, ``N`` stages,
window ``b`` and bulk size ``B``, any machine therefore stores at most
``N * (M-1) * b * B`` unprocessed remote contexts — the deterministic
memory bound the paper claims.

The *dynamic memory management* refinements are implemented here too:

1. when the termination protocol reports stage *n* globally complete,
   its windows are redistributed among the later stages;
2. a sender exhausting its window for (n, m) may request spare capacity
   from a peer's window for the same (n, m); the peer donates half of
   its unused slots.  The total inbound allowance of machine *m* for
   stage *n* is preserved, so the receiver-side memory bound still holds.
"""

from repro.errors import FlowControlError


class FlowControl:
    """Sender-side window accounting for one machine."""

    def __init__(self, num_stages, num_machines, machine_id, window,
                 dynamic=True):
        self._num_stages = num_stages
        self._num_machines = num_machines
        self._machine_id = machine_id
        self._dynamic = dynamic
        #: limit[n][m] — max in-flight bulk messages for stage n to machine m.
        self._limit = [
            [window] * num_machines for _ in range(num_stages)
        ]
        #: inflight[n][m] — currently unacknowledged bulk messages.
        self._inflight = [
            [0] * num_machines for _ in range(num_stages)
        ]
        #: reserved[n][m] — window slots pre-reserved by an in-progress
        #: bulk kernel (runtime.kernels).  Reservations are transient:
        #: the kernel releases them before returning, so between worker
        #: slices this is all zeros and every legacy code path behaves
        #: exactly as before.  Invariant: inflight + reserved <= limit.
        self._reserved = [
            [0] * num_machines for _ in range(num_stages)
        ]
        #: Stages already redistributed (guards double redistribution).
        self._redistributed = [False] * num_stages
        #: Outstanding quota request per (stage, dest) to avoid spamming.
        self._quota_pending = set()

    # ------------------------------------------------------------------
    # Window operations
    # ------------------------------------------------------------------
    def can_send(self, stage, dest):
        return (
            self._inflight[stage][dest] + self._reserved[stage][dest]
            < self._limit[stage][dest]
        )

    def can_flush(self, stage, dest):
        """A flush may proceed: on a held reservation or a free slot.

        Identical to :meth:`can_send` whenever no reservation is held,
        i.e. everywhere outside an in-progress bulk kernel.
        """
        return self._reserved[stage][dest] > 0 or self.can_send(stage, dest)

    def on_send(self, stage, dest):
        reserved = self._reserved[stage]
        if reserved[dest] > 0:
            # Consume a batch reservation: admission was decided when
            # the kernel reserved, no re-check needed.
            reserved[dest] -= 1
            self._inflight[stage][dest] += 1
            return
        if not self.can_send(stage, dest):
            raise FlowControlError(
                "send without window: stage=%d dest=%d" % (stage, dest)
            )
        self._inflight[stage][dest] += 1

    # ------------------------------------------------------------------
    # Batch admission (runtime.kernels)
    # ------------------------------------------------------------------
    def reserve(self, stage, dest, n):
        """Reserve up to *n* window slots for a bulk sender.

        Returns the granted count (0..n); the grant can never push
        ``inflight + reserved`` past the (stage, dest) limit, even while
        quota borrowing is raising or lowering that limit.
        """
        if n <= 0:
            return 0
        spare = (
            self._limit[stage][dest] - self._inflight[stage][dest]
            - self._reserved[stage][dest]
        )
        if spare <= 0:
            return 0
        take = n if n < spare else spare
        self._reserved[stage][dest] += take
        return take

    def release(self, stage, dest):
        """Return every reservation for (stage, dest) to the window."""
        self._reserved[stage][dest] = 0

    def reserved(self, stage, dest):
        return self._reserved[stage][dest]

    def on_ack(self, stage, count):
        """An ack from *some* destination; the wire carries the stage only.

        The receiver acks each message exactly once, so attributing the
        decrement requires the destination; see :meth:`on_ack_from`.
        """
        raise NotImplementedError("use on_ack_from")

    def on_ack_from(self, stage, src, count):
        self._inflight[stage][src] -= count
        if self._inflight[stage][src] < 0:
            raise FlowControlError(
                "negative in-flight count: stage=%d machine=%d"
                % (stage, src)
            )

    def inflight_total(self):
        return sum(sum(row) for row in self._inflight)

    def occupancy(self):
        """Nonzero in-flight counts as ``(stage, dest) -> count``.

        Diagnostic snapshot for abort reports and the chaos CLI: which
        windows were still awaiting acknowledgments when a run stopped.
        """
        return {
            (stage, dest): inflight
            for stage, row in enumerate(self._inflight)
            for dest, inflight in enumerate(row)
            if inflight
        }

    def occupancy_count(self):
        """Number of (stage, dest) windows with traffic in flight.

        Cheaper than ``len(occupancy())`` — sampled every tick by the
        telemetry time series.
        """
        return sum(
            1 for row in self._inflight for inflight in row if inflight
        )

    def limit(self, stage, dest):
        return self._limit[stage][dest]

    def inflight(self, stage, dest):
        return self._inflight[stage][dest]

    # ------------------------------------------------------------------
    # Dynamic refinement 1: redistribute completed stages' windows
    # ------------------------------------------------------------------
    def redistribute_completed_stage(self, stage):
        """Move stage *stage*'s window capacity to the later stages.

        Called when the termination protocol learns that *stage* is
        complete on every machine — no more messages for ``stage + 1``
        will be produced by it, but the capacity can still serve stages
        ``stage + 2 .. N``; it is split evenly among them.
        """
        if not self._dynamic or self._redistributed[stage]:
            return
        self._redistributed[stage] = True
        later = range(stage + 1, self._num_stages)
        if not later:
            return
        count = len(later)
        for dest in range(self._num_machines):
            capacity = self._limit[stage][dest]
            self._limit[stage][dest] = 0
            share, remainder = divmod(capacity, count)
            for offset, target in enumerate(later):
                bonus = 1 if offset < remainder else 0
                self._limit[target][dest] += share + bonus

    # ------------------------------------------------------------------
    # Dynamic refinement 2: capacity borrowing between machines
    # ------------------------------------------------------------------
    def wants_quota(self, stage, dest):
        """Should we ask a peer for capacity for (stage, dest)?"""
        if not self._dynamic:
            return False
        if (stage, dest) in self._quota_pending:
            return False
        return not self.can_send(stage, dest)

    def note_quota_requested(self, stage, dest):
        self._quota_pending.add((stage, dest))

    def on_quota_grant(self, stage, dest, amount):
        self._quota_pending.discard((stage, dest))
        self._limit[stage][dest] += amount

    def donate_quota(self, stage, dest):
        """Give away half of the unused window for (stage, dest).

        Returns the donated amount (possibly 0).  Keeps at least one slot
        so this machine can still make progress on that channel.
        """
        if not self._dynamic:
            return 0
        spare = (
            self._limit[stage][dest] - self._inflight[stage][dest]
            - self._reserved[stage][dest]
        )
        donation = max(0, min(spare // 2, self._limit[stage][dest] - 1))
        if donation > 0:
            self._limit[stage][dest] -= donation
        return donation
