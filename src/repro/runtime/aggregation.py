"""Result finalization: projection, aggregation, grouping, ordering.

The output hop delivers raw context tuples to a machine-local
*collector*; this module turns the merged collections into the final
:class:`ResultSet`.  It covers the PGQL features the paper lists as
future work (§5): ``COUNT`` / ``SUM`` / ``AVG`` / ``MIN`` / ``MAX``
(with ``DISTINCT``), ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``,
and ``SELECT DISTINCT``.

Aggregating queries use **partial aggregation**: each machine folds its
matches into per-group aggregate states as they are produced (the
:class:`GroupAccumulator` collector) and the engine merges the partial
states at the end — the memory-frugal strategy a multi-tenant system
like PGX.D needs, since no machine ever materializes its raw match
list.
"""

from repro.errors import PgqlValidationError
from repro.pgql.ast import Aggregate, AggregateFunc, Binary, Unary
from repro.pgql.expressions import apply_binary, apply_unary, evaluate
from repro.plan.execution import ContextRowEnv
from repro.runtime.results import ResultSet


class AggregateState:
    """Streaming, mergeable state of one aggregate function."""

    __slots__ = ("func", "distinct", "_seen", "_count", "_sum", "_min", "_max")

    def __init__(self, func, distinct):
        self.func = func
        self.distinct = distinct
        self._seen = set() if distinct else None
        self._count = 0
        self._sum = 0
        self._min = None
        self._max = None

    def update(self, value):
        if self.distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._apply(value)

    def _apply(self, value):
        self._count += 1
        if self.func in (AggregateFunc.SUM, AggregateFunc.AVG):
            self._sum += value
        elif self.func is AggregateFunc.MIN:
            self._min = value if self._min is None else min(self._min, value)
        elif self.func is AggregateFunc.MAX:
            self._max = value if self._max is None else max(self._max, value)

    def merge(self, other):
        """Fold another machine's partial state into this one."""
        if self.distinct:
            for value in other._seen:
                self.update(value)
            return
        self._count += other._count
        self._sum += other._sum
        for candidate in (other._min,):
            if candidate is not None:
                self._min = candidate if self._min is None \
                    else min(self._min, candidate)
        for candidate in (other._max,):
            if candidate is not None:
                self._max = candidate if self._max is None \
                    else max(self._max, candidate)

    def result(self):
        if self.func is AggregateFunc.COUNT:
            return self._count
        if self.func is AggregateFunc.SUM:
            return self._sum
        if self.func is AggregateFunc.AVG:
            return self._sum / self._count if self._count else None
        if self.func is AggregateFunc.MIN:
            return self._min
        return self._max


def _aggregate_key(node):
    """Structural identity of an aggregate occurrence."""
    return (node.func, repr(node.arg), node.distinct)


def _collect_aggregates(exprs):
    """Unique aggregates across *exprs*, keyed structurally."""
    found = {}
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, Aggregate):
                found.setdefault(_aggregate_key(node), node)
    return found


def _zone_expressions(spec):
    zone = [item.expr for item in spec.select_items]
    if spec.having is not None:
        zone.append(spec.having)
    zone.extend(item.expr for item in spec.order_by)
    return zone


def _evaluate_with_aggregates(expr, env, agg_values):
    """Evaluate *expr* substituting aggregate nodes with computed values."""
    if isinstance(expr, Aggregate):
        return agg_values[_aggregate_key(expr)]
    if isinstance(expr, Binary):
        if expr.op == "AND":
            return bool(_evaluate_with_aggregates(expr.lhs, env, agg_values)) \
                and bool(_evaluate_with_aggregates(expr.rhs, env, agg_values))
        if expr.op == "OR":
            return bool(_evaluate_with_aggregates(expr.lhs, env, agg_values)) \
                or bool(_evaluate_with_aggregates(expr.rhs, env, agg_values))
        return apply_binary(
            expr.op,
            _evaluate_with_aggregates(expr.lhs, env, agg_values),
            _evaluate_with_aggregates(expr.rhs, env, agg_values),
        )
    if isinstance(expr, Unary):
        return apply_unary(
            expr.op, _evaluate_with_aggregates(expr.operand, env, agg_values)
        )
    return evaluate(expr, env)


# ----------------------------------------------------------------------
# Collectors (machine-local)
# ----------------------------------------------------------------------
class RowCollector:
    """Plain collector: keeps the raw output contexts."""

    __slots__ = ("rows",)

    def __init__(self):
        self.rows = []

    def add(self, ctx):
        self.rows.append(ctx)

    def __len__(self):
        return len(self.rows)


class GroupAccumulator:
    """Partial-aggregation collector for one machine.

    Folds every emitted context into per-group aggregate states; the
    engine merges accumulators from all machines with :meth:`merge`.
    """

    def __init__(self, spec, vertex_vars, edge_vars):
        self._spec = spec
        self._env = ContextRowEnv(
            spec.layout, set(vertex_vars), set(edge_vars)
        )
        self._aggregates = _collect_aggregates(_zone_expressions(spec))
        #: group key -> (representative ctx, {agg key: AggregateState}).
        self.groups = {}
        self.count = 0

    def add(self, ctx):
        env = self._env.bind(ctx)
        self.count += 1
        key = tuple(evaluate(expr, env) for expr in self._spec.group_by)
        group = self.groups.get(key)
        if group is None:
            group = (
                ctx,
                {
                    agg_key: AggregateState(node.func, node.distinct)
                    for agg_key, node in self._aggregates.items()
                },
            )
            self.groups[key] = group
        _repr_ctx, states = group
        for agg_key, node in self._aggregates.items():
            if node.arg is None:  # COUNT(*)
                states[agg_key].update(1 if not node.distinct else ctx)
            else:
                states[agg_key].update(evaluate(node.arg, env))

    def merge(self, other):
        """Fold another machine's accumulator into this one."""
        self.count += other.count
        for key, (repr_ctx, other_states) in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = (repr_ctx, other_states)
                continue
            _ctx, states = mine
            for agg_key, state in other_states.items():
                states[agg_key].merge(state)

    def __len__(self):
        return self.count


def make_collector(spec, vertex_vars, edge_vars):
    """The collector appropriate for *spec* (partial-agg or raw rows)."""
    if spec.has_aggregates:
        return GroupAccumulator(spec, vertex_vars, edge_vars)
    return RowCollector()


# ----------------------------------------------------------------------
# Finalization
# ----------------------------------------------------------------------
def finalize(output_spec, raw_rows, vertex_vars, edge_vars):
    """Turn raw output contexts into the final :class:`ResultSet`.

    Convenience entry point used by the baselines (and by the engine's
    non-aggregating path); aggregating queries are routed through a
    :class:`GroupAccumulator`.
    """
    env = ContextRowEnv(output_spec.layout, set(vertex_vars), set(edge_vars))
    if output_spec.has_aggregates:
        accumulator = GroupAccumulator(output_spec, vertex_vars, edge_vars)
        for ctx in raw_rows:
            accumulator.add(ctx)
        return finalize_grouped(output_spec, accumulator, env)
    rows = _finalize_plain(output_spec, raw_rows, env)
    return _wrap(output_spec, rows)


def finalize_grouped(spec, accumulator, env=None):
    """Build the ResultSet from a (merged) :class:`GroupAccumulator`."""
    if env is None:
        env = accumulator._env
    decorated = []
    for _key, (repr_ctx, states) in accumulator.groups.items():
        env.bind(repr_ctx)
        agg_values = {
            agg_key: state.result() for agg_key, state in states.items()
        }
        if spec.having is not None:
            if not _evaluate_with_aggregates(spec.having, env, agg_values):
                continue
        row = tuple(
            _evaluate_with_aggregates(item.expr, env, agg_values)
            for item in spec.select_items
        )
        if spec.order_by:
            sort_key = tuple(
                _evaluate_with_aggregates(item.expr, env, agg_values)
                for item in spec.order_by
            )
        else:
            sort_key = ()
        decorated.append((sort_key, row))
    if spec.distinct:
        # SELECT DISTINCT with GROUP BY: groups are unique by key, but
        # the projected rows may still collide (e.g. the key is not
        # selected); SQL semantics deduplicate them.
        seen = set()
        unique = []
        for key, row in decorated:
            if row in seen:
                continue
            seen.add(row)
            unique.append((key, row))
        decorated = unique
    if spec.order_by:
        _sort_decorated(decorated, spec.order_by)
    return _wrap(spec, [row for _key, row in decorated])


def _finalize_plain(spec, raw_rows, env):
    selects = [item.expr for item in spec.select_items]
    order_items = spec.order_by
    decorated = _project_rows(selects, order_items, raw_rows, env)
    if spec.distinct:
        seen = set()
        unique = []
        for key, row in decorated:
            if row in seen:
                continue
            seen.add(row)
            unique.append((key, row))
        decorated = unique
    if order_items:
        _sort_decorated(decorated, order_items)
    return [row for _key, row in decorated]


def _project_rows(selects, order_items, raw_rows, env):
    """Project raw contexts into ``(sort_key, row)`` pairs.

    Slot-only select/order lists (the common case) go through a compiled
    projector — one tuple build per row instead of one interpreted
    ``evaluate`` per column; anything else falls back to the evaluator.
    Values are identical either way: the projector is just the unrolled
    slot lookups.
    """
    project = env.row_projector(selects)
    if project is not None:
        if not order_items:
            return [((), project(ctx)) for ctx in raw_rows]
        key_project = env.row_projector(
            [item.expr for item in order_items]
        )
        if key_project is not None:
            return [(key_project(ctx), project(ctx)) for ctx in raw_rows]
    decorated = []
    for ctx in raw_rows:
        env.bind(ctx)
        row = tuple(evaluate(expr, env) for expr in selects)
        if order_items:
            key = tuple(evaluate(item.expr, env) for item in order_items)
            decorated.append((key, row))
        else:
            decorated.append(((), row))
    return decorated


def _wrap(spec, rows):
    if spec.limit is not None:
        rows = rows[: spec.limit]
    return ResultSet(spec.column_names, rows)


def _sort_decorated(decorated, order_items):
    """Stable multi-key sort honoring per-key ASC/DESC."""
    for position in range(len(order_items) - 1, -1, -1):
        ascending = order_items[position].ascending
        try:
            decorated.sort(key=lambda pair: pair[0][position],
                           reverse=not ascending)
        except TypeError:
            raise PgqlValidationError(
                "ORDER BY key %d mixes incomparable types" % position
            )
