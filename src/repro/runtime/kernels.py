"""Compiled bulk hop kernels — the non-blocking fast path.

``run_computation`` (runtime.worker) advances a traversal one micro-op
per loop iteration: an isinstance check, a budget compare, a virtual
``cursor.advance`` dispatch, and a re-read of ``stage.hop`` for every
single neighbor.  That precision is what lets the simulator charge
costs exactly, but nearly all of the interpreter work is identical from
one neighbor to the next.

This module removes the per-neighbor overhead without changing a single
observable number.  At plan-finalize time each stage gets a *kernel*: a
function specialized to exactly the checks that stage performs
(edge-label compare, iso-slot compares, compiled filter, captures — no
dead branches), processing an entire CSR adjacency run in one tight
loop.  Kernels charge the identical aggregate op count at the identical
points, so ``ticks``, ``total_ops``, ``visits``, ``passes``, result
rows, message/flush boundaries, and BLOCKED-parking are **bit-identical**
to micro-stepped execution; ``tests/test_kernels.py`` enforces this
differentially.

Remote continuations use the batch-admission API of
``runtime.flow_control``: a kernel pre-reserves window capacity for the
rest of its adjacency run (``QueryMachine.reserve_items``) and emits
into the bulk buffers without per-item admission checks.  The moment a
reservation is refused it falls back to the existing
``QueryMachine.route`` micro-step admission, which refuses at exactly
the same item as cursor execution would — preserving strict flow
control, chaos/reliability behavior, and parking semantics.  All
reservations are released before the kernel returns, so outside a
kernel invocation the window state is indistinguishable from the
micro-stepped engine's.

Cost-parity contract (see docs/performance.md):

* every neighbor inspected charges ``hop.work_cost``, including the
  extra charge that discovers exhaustion and the charge of a BLOCKED
  attempt (which rolls the position back for replay);
* the vertex function charges ``stage.work_cost`` exactly once;
* a kernel only runs while ``ops < budget`` and re-checks the budget
  after every charge, at the same points the micro loop does.

Kernels are disabled in ``blocking_remote`` mode (the ABL4 ablation is
precisely about per-message synchronous behavior) and by
``ClusterConfig(bulk_kernels=False)``, which runs today's cursor path
unchanged.
"""

from repro.errors import RuntimeFault
from repro.graph.types import Direction, NO_LABEL
from repro.obs.events import ResultEmitted
from repro.plan.distributed import HopKind
from repro.runtime.hops import Advance, make_cursor
from repro.runtime.worker import (
    RunStatus,
    ScanFrame,
    StageFrame,
    _vertex_function,
    frame_for_item,
)

#: Kernel exit signals (plain ints: compared on the hottest path).
K_CONTINUE = 0   # frame popped or a child frame pushed; caller loops
K_BLOCKED = 1    # a send was refused; computation must park
K_BUDGET = 2     # out of micro-ops this slice


class _RunState:
    """Cursor state of an in-progress NEIGHBOR kernel.

    ``pos``/``end`` index the graph's flat CSR adjacency lists directly,
    so resuming a partially processed run costs two attribute loads.
    """

    __slots__ = ("pos", "end")

    def __init__(self, pos, end):
        self.pos = pos
        self.end = end


class _EdgeRun:
    """Cursor state of an in-progress VERTEX kernel (edge-checked form):
    the matching parallel-edge ids plus the replay position."""

    __slots__ = ("eids", "pos", "end")

    def __init__(self, eids):
        self.eids = eids
        self.pos = 0
        self.end = len(eids)


class _ConstList:
    """A read-only 'column' returning one value for every index.

    Stands in for the label arrays of unlabeled graphs so generated
    kernels can index unconditionally.
    """

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def __getitem__(self, index):
        return self._value


class PlanKernels:
    """The compiled per-stage kernels of one execution plan."""

    __slots__ = ("stage_kernels",)

    def __init__(self, stage_kernels):
        self.stage_kernels = stage_kernels

    def run(self, rt, comp, budget):
        return run_bulk(rt, comp, budget, self.stage_kernels)


def compile_plan_kernels(plan, profiled=False):
    """Build one kernel per stage of *plan* (at plan-finalize time).

    NEIGHBOR and OUTPUT stages — the hot path — get textually generated
    specialized kernels; the remaining hop kinds run their existing
    cursors through a generic batched driver with identical semantics.

    With ``profiled=True`` the generated kernels additionally maintain
    the per-machine ``scanned``/``emitted`` profile counters
    (``repro.obs.feedback``) at exactly the points the hop cursors do.
    The default variant contains literally no profiling instructions, so
    profiling off costs nothing on the kernel fast path; machines pick
    the variant from whether a profiler view is attached.
    """
    kernels = []
    for stage in plan.stages:
        kind = stage.hop.kind
        if kind is HopKind.NEIGHBOR:
            kernels.append(_compile_neighbor_kernel(plan, stage, profiled))
        elif kind is HopKind.VERTEX:
            kernels.append(_compile_vertex_kernel(plan, stage, profiled))
        elif kind is HopKind.OUTPUT:
            kernels.append(_compile_output_kernel(plan, stage, profiled))
        else:
            # Cursor-driven stages carry their own (guarded)
            # instrumentation; one generic kernel serves both variants.
            kernels.append(_generic_kernel(stage))
    return PlanKernels(kernels)


# ----------------------------------------------------------------------
# The bulk computation driver (replaces run_computation's outer loop)
# ----------------------------------------------------------------------
def run_bulk(rt, comp, budget, kernels):
    """Advance *comp* by up to *budget* micro-ops through its kernels.

    Mirrors ``worker.run_computation`` exactly: same consumption order,
    same per-item/per-frame charges, same DONE/BLOCKED/BUDGET
    resolution.  ``sync_wait_flagged`` is never consulted because
    kernels are disabled in blocking_remote mode.
    """
    ops = 0
    dispatches = 0
    stack = comp.stack
    metrics = rt.metrics
    stage_load = rt.stage_load
    root = comp.root_stage
    message = comp.message
    if message is not None:
        items = message.items
        n_items = len(items)
        root_vslot = rt.plan.stages[root].vertex_slot
    while True:
        if not stack:
            # Resolve completion before the budget check so a computation
            # that drains its stack exactly at the budget boundary reports
            # DONE instead of lingering as a zero-op slot occupant.
            if message is None or comp.item_pos >= n_items:
                if message is not None:
                    rt.send_ack(message)
                status = RunStatus.DONE
                break
            if ops >= budget:
                status = RunStatus.BUDGET
                break
            item = items[comp.item_pos]
            comp.item_pos += 1
            if type(item) is tuple:
                # note_item_consumed + push_frame, fused: the stage_load
                # delta cancels (same stage), a weight-1 buffered
                # decrement can't move the peak, a frame increment can.
                metrics.cur_buffered_contexts -= 1
                clf = metrics.cur_live_frames + 1
                metrics.cur_live_frames = clf
                if clf > metrics.peak_live_frames:
                    metrics.peak_live_frames = clf
                stack.append(StageFrame(root, item, item[root_vslot]))
            else:
                rt.note_item_consumed(root, item)
                rt.push_frame(comp, frame_for_item(rt, root, item))
            ops += 1
            continue
        if ops >= budget:
            status = RunStatus.BUDGET
            break
        frame = stack[-1]
        if frame.__class__ is ScanFrame:
            ops += 1
            pos = frame.pos
            if pos < len(frame.vertices):
                vertex = frame.vertices[pos]
                frame.pos = pos + 1
                stack.append(StageFrame(
                    frame.stage_index, frame.base_ctx + (vertex,), vertex
                ))
                stage_load[frame.stage_index] += 1
                clf = metrics.cur_live_frames + 1
                metrics.cur_live_frames = clf
                if clf > metrics.peak_live_frames:
                    metrics.peak_live_frames = clf
            else:
                stack.pop()
                stage_load[frame.stage_index] -= 1
                metrics.cur_live_frames -= 1
            continue
        dispatches += 1
        ops, signal = kernels[frame.stage_index](rt, comp, frame, ops, budget)
        if signal == K_CONTINUE:
            continue
        status = RunStatus.BLOCKED if signal == K_BLOCKED \
            else RunStatus.BUDGET
        break
    if dispatches:
        metrics = rt.metrics
        metrics.kernel_batches += dispatches
        metrics.kernel_ops += ops
        telemetry = rt.telemetry
        if telemetry is not None:
            telemetry.kernel_batch_ops.observe(ops)
    return ops, status


# ----------------------------------------------------------------------
# Generic kernel: batched driver over the existing hop cursors
# ----------------------------------------------------------------------
def _generic_kernel(stage):
    """Kernel for VERTEX/ALL_VERTICES/CN_* stages.

    Runs the stage's existing cursor, batching only the dispatch: the
    stage and its costs are bound once instead of re-read per micro-op.
    Every advance charges and budget-checks exactly like the micro loop.
    """
    wc_v = stage.work_cost
    wc_h = stage.hop.work_cost
    progress = Advance.PROGRESS
    exhausted = Advance.EXHAUSTED

    def kernel(rt, comp, frame, ops, budget):
        if frame.phase == 0:
            ops += wc_v
            if not _vertex_function(rt, stage, frame):
                rt.pop_frame(comp)
                return ops, K_CONTINUE
            frame.phase = 1
            frame.cursor = make_cursor(stage, frame, rt)
            if ops >= budget:
                return ops, K_BUDGET
        advance = frame.cursor.advance
        stack = comp.stack
        while True:
            result = advance(rt, comp, frame)
            ops += wc_h
            if result is progress:
                if ops >= budget:
                    return ops, K_BUDGET
                if stack[-1] is not frame:
                    return ops, K_CONTINUE  # descended into a local child
                continue
            if result is exhausted:
                rt.pop_frame(comp)
                return ops, K_CONTINUE
            return ops, K_BLOCKED

    return kernel


# ----------------------------------------------------------------------
# Code generation helpers
# ----------------------------------------------------------------------
def _vertex_labels(graph):
    labels = graph.vertex_labels_list()
    return _ConstList(NO_LABEL) if labels is None else labels


def _edge_labels(graph):
    labels = graph.edge_labels_list()
    return _ConstList(NO_LABEL) if labels is None else labels


def _emit_vertex_function(stage, graph, ns, lines, ind):
    """Emit the specialized vertex function into *lines*.

    Expects ``vertex``, ``ctx``, ``M`` (metrics) and ``SL``
    (stage_load) bound; on failure pops the frame inline — the exact
    body of ``QueryMachine.pop_frame`` (a negative frames delta can
    never move the peak) — and returns.  Mirrors
    ``worker._vertex_function`` check for check.
    """
    fail = (ind + "    comp.stack.pop()",
            ind + "    SL[%d] -= 1" % stage.index,
            ind + "    M.cur_live_frames -= 1",
            ind + "    return ops, K_CONTINUE")
    lines.append(ind + "if rt.debug_checks and not rt.local.is_local(vertex):")
    lines.append(ind + "    raise RuntimeFault(")
    lines.append(ind + "        'stage %d executed on machine %%d for "
                       "remote vertex %%d'" % stage.index)
    lines.append(ind + "        % (rt.machine_id, vertex))")
    lines.append(ind + "rt.stage_visits[%d] += 1" % stage.index)
    lines.append(ind + "ops += %d" % stage.work_cost)
    if stage.label_id is not None:
        ns["VLABELS"] = _vertex_labels(graph)
        lines.append(ind + "if VLABELS[vertex] != %d:" % stage.label_id)
        lines.extend(fail)
    if stage.iso_vertex_slots:
        cond = " or ".join(
            "ctx[%d] == vertex" % slot for slot in stage.iso_vertex_slots
        )
        lines.append(ind + "if %s:" % cond)
        lines.extend(fail)
    if stage.filter is not None:
        ns["FILT"] = stage.filter
        lines.append(ind + "if not FILT(ctx, vertex, -1):")
        lines.extend(fail)
    for slot in stage.forbidden_slots:
        lines.append(ind + "if rt.local.edges_between(vertex, ctx[%d]):"
                     % slot)
        lines.extend(fail)
    lines.append(ind + "rt.stage_passes[%d] += 1" % stage.index)
    if stage.captures:
        for i, capture in enumerate(stage.captures):
            ns["CAP%d" % i] = capture
        caps = ", ".join(
            "CAP%d(vertex)" % i for i in range(len(stage.captures))
        )
        lines.append(ind + "ctx = ctx + (%s,)" % caps)
        lines.append(ind + "frame.ctx = ctx")


def _edge_accept_condition(hop, ns):
    """The compile-time conjunction of ``hops._edge_accepted``."""
    conds = []
    if hop.edge_label_id is not None:
        conds.append("ELABELS[eid] == %d" % hop.edge_label_id)
    for slot in hop.iso_edge_slots:
        conds.append("ctx[%d] != eid" % slot)
    if hop.edge_filter is not None:
        ns["EFILT"] = hop.edge_filter
        conds.append("EFILT(ctx, vertex, eid)")
    return " and ".join(conds)


def _out_ctx_expression(hop, ns):
    """The compile-time form of ``hops._extend``."""
    parts = []
    for i, capture in enumerate(hop.edge_captures):
        ns["ECAP%d" % i] = capture
        parts.append("ECAP%d(eid)" % i)
    if hop.appends_target_id:
        parts.append("target")
    if not parts:
        return "ctx"
    return "ctx + (%s,)" % ", ".join(parts)


def _finish_kernel(lines, ns, stage):
    source = "\n".join(lines) + "\n"
    code = compile(
        source,
        "<repro-kernel:stage%d:%s>" % (stage.index, stage.hop.kind.value),
        "exec",
    )
    exec(code, ns)
    kernel = ns["kernel"]
    kernel.__source__ = source  # introspection / debugging aid
    return kernel


def _compile_neighbor_kernel(plan, stage, profiled=False):
    """Generate the specialized NEIGHBOR kernel for *stage*.

    The adjacency run is walked over the graph's flat python-list CSR
    (converted once per graph) between absolute ``pos``/``end`` bounds;
    remote continuations go through batch reservations with a
    ``rt.route`` fallback whose refusal point matches the cursor path.
    """
    graph = plan.graph
    hop = stage.hop
    s = stage.index
    s_next = s + 1
    wc_h = hop.work_cost
    (out_off, out_dst, out_eid,
     in_off, in_src, in_eid) = graph.adjacency_lists()
    ns = {
        "K_CONTINUE": K_CONTINUE,
        "K_BLOCKED": K_BLOCKED,
        "K_BUDGET": K_BUDGET,
        "RuntimeFault": RuntimeFault,
        "_RunState": _RunState,
        "StageFrame": StageFrame,
        "ELABELS": _edge_labels(graph),
    }
    if hop.direction is Direction.OUT:
        ns["OFF"], ns["DST"], ns["EIDS"] = out_off, out_dst, out_eid
    else:
        ns["OFF"], ns["DST"], ns["EIDS"] = in_off, in_src, in_eid

    w = []
    w.append("def kernel(rt, comp, frame, ops, budget):")
    w.append("    ctx = frame.ctx")
    w.append("    M = rt.metrics")
    w.append("    SL = rt.stage_load")
    w.append("    state = frame.cursor")
    w.append("    if state is None:")
    w.append("        vertex = frame.vertex")
    _emit_vertex_function(stage, graph, ns, w, "        ")
    # Ownership discipline: reading a remote vertex's adjacency must
    # hard-fail exactly like LocalPartition does on the cursor path.
    w.append("        if rt.owner_list[vertex] != rt.machine_id:")
    w.append("            rt.local.out_edges(vertex)"
             "  # raises RemoteAccessError")
    w.append("        state = _RunState(OFF[vertex], OFF[vertex + 1])")
    w.append("        frame.cursor = state")
    w.append("        frame.phase = 1")
    w.append("        if ops >= budget:")
    w.append("            return ops, K_BUDGET")
    w.append("    else:")
    w.append("        vertex = frame.vertex")
    w.append("    pos = state.pos")
    w.append("    end = state.end")
    w.append("    if pos >= end:")
    w.append("        comp.stack.pop()")
    w.append("        SL[%d] -= 1" % s)
    w.append("        M.cur_live_frames -= 1")
    w.append("        return ops + %d, K_CONTINUE" % wc_h)
    # Per-invocation prebinds, amortized over the whole adjacency run.
    w.append("    mid = rt.machine_id")
    w.append("    owners = rt.owner_list")
    w.append("    remote_in = rt.stage_remote_in")
    w.append("    local_q = rt._local_inbox[%d]" % s_next)
    w.append("    cap = rt._local_share_cap")
    w.append("    reserve = rt.reserve_items")
    w.append("    get_buffer = rt._buffer")
    w.append("    flush = rt._flush_buffer")
    w.append("    bulk = rt.config.bulk_message_size")
    if hop.appends_target_id:
        w.append("    ghosted = rt.ghosts_enabled")
    w.append("    resv = {}")
    # Flushed buffers are emptied in place, never replaced, so a list
    # looked up once stays the live (stage, dest) buffer all run long.
    w.append("    bufs = {}")
    if profiled:
        # Profiled variant only: the machine installs these kernels iff
        # a profiler view is attached, so no None guard is needed here.
        w.append("    PSC = rt.profiler.scanned")
        w.append("    PEM = rt.profiler.emitted")
    w.append("    while True:")
    w.append("        if pos >= end:")
    w.append("            ops += %d" % wc_h)
    w.append("            comp.stack.pop()")
    w.append("            SL[%d] -= 1" % s)
    w.append("            M.cur_live_frames -= 1")
    w.append("            if resv: rt.end_batch(%d, resv)" % s_next)
    w.append("            return ops, K_CONTINUE")
    w.append("        target = DST[pos]")
    w.append("        eid = EIDS[pos]")
    w.append("        pos += 1")
    w.append("        ops += %d" % wc_h)
    if profiled:
        # Same counting point as _NeighborCursor.advance: every neighbor
        # inspected, blocked-then-replayed attempts included.
        w.append("        PSC[%d] += 1" % s)
    cond = _edge_accept_condition(hop, ns)
    if cond:
        w.append("        if %s:" % cond)
        body_ind = "            "
    else:
        body_ind = "        "
    out_ctx = _out_ctx_expression(hop, ns)
    w.append(body_ind + "out_ctx = %s" % out_ctx)
    w.append(body_ind + "dest = owners[target]")
    w.append(body_ind + "if dest == mid:")
    if profiled:
        # route() counts an emission on either local delivery form.
        w.append(body_ind + "    PEM[%d] += 1" % s)
    w.append(body_ind + "    if len(local_q) < cap:")
    w.append(body_ind + "        local_q.append(out_ctx)")
    w.append(body_ind + "        SL[%d] += 1" % s_next)
    # Inline buffered_delta(1): a positive delta can move the peak.
    w.append(body_ind + "        cbc = M.cur_buffered_contexts + 1")
    w.append(body_ind + "        M.cur_buffered_contexts = cbc")
    w.append(body_ind + "        if cbc > M.peak_buffered_contexts:")
    w.append(body_ind + "            M.peak_buffered_contexts = cbc")
    w.append(body_ind + "    else:")
    w.append(body_ind + "        state.pos = pos")
    w.append(body_ind + "        if resv: rt.end_batch(%d, resv)" % s_next)
    # Inline push_frame (a positive frames delta can move the peak).
    w.append(body_ind + "        comp.stack.append(StageFrame("
             "%d, out_ctx, target))" % s_next)
    w.append(body_ind + "        SL[%d] += 1" % s_next)
    w.append(body_ind + "        clf = M.cur_live_frames + 1")
    w.append(body_ind + "        M.cur_live_frames = clf")
    w.append(body_ind + "        if clf > M.peak_live_frames:")
    w.append(body_ind + "            M.peak_live_frames = clf")
    w.append(body_ind + "        return ops, K_CONTINUE")
    if hop.appends_target_id:
        # Ghost-node pre-filter, evaluated only when ghosts exist (the
        # cursor path's call is a no-op without them).
        w.append(body_ind + "elif ghosted and not rt.ghost_admits("
                 "%d, out_ctx, target):" % s_next)
        w.append(body_ind + "    pass")
    w.append(body_ind + "else:")
    w.append(body_ind + "    rem = resv.get(dest, 0)")
    w.append(body_ind + "    if rem <= 0:")
    w.append(body_ind + "        rem = reserve(%d, dest, end - pos + 1)"
             % s_next)
    w.append(body_ind + "    if rem > 0:")
    w.append(body_ind + "        resv[dest] = rem - 1")
    w.append(body_ind + "        buf = bufs.get(dest)")
    w.append(body_ind + "        if buf is None:")
    w.append(body_ind + "            buf = get_buffer(%d, dest)" % s_next)
    w.append(body_ind + "            bufs[dest] = buf")
    w.append(body_ind + "        buf.append(out_ctx)")
    w.append(body_ind + "        cbc = M.cur_buffered_contexts + 1")
    w.append(body_ind + "        M.cur_buffered_contexts = cbc")
    w.append(body_ind + "        if cbc > M.peak_buffered_contexts:")
    w.append(body_ind + "            M.peak_buffered_contexts = cbc")
    w.append(body_ind + "        remote_in[%d] += 1" % s_next)
    if profiled:
        w.append(body_ind + "        PEM[%d] += 1" % s)
    w.append(body_ind + "        if len(buf) >= bulk:")
    w.append(body_ind + "            flush(%d, dest, buf)" % s_next)
    w.append(body_ind + "    elif rt.route(comp, %d, dest, out_ctx):"
             % s_next)
    w.append(body_ind + "        remote_in[%d] += 1" % s_next)
    w.append(body_ind + "    else:")
    w.append(body_ind + "        state.pos = pos - 1"
             "  # replay this neighbor on resume")
    w.append(body_ind + "        if resv: rt.end_batch(%d, resv)" % s_next)
    w.append(body_ind + "        return ops, K_BLOCKED")
    w.append("        if ops >= budget:")
    w.append("            state.pos = pos")
    w.append("            if resv: rt.end_batch(%d, resv)" % s_next)
    w.append("            return ops, K_BUDGET")
    return _finish_kernel(w, ns, stage)


def _compile_vertex_kernel(plan, stage, profiled=False):
    """Generate the specialized VERTEX kernel for *stage*.

    Mirrors ``_VertexCursor``: without an edge requirement the hop is
    one unconditional continuation plus the exhaustion charge; with one,
    each matching parallel edge is charged and routed individually.
    Parallel-edge runs are tiny, so emission goes through ``rt.route``
    (identical refusal points by construction) — the saving here is the
    cursor object, the enum compares, and the per-advance re-reads.
    """
    hop = stage.hop
    s_next = stage.index + 1
    wc_h = hop.work_cost
    ns = {
        "K_CONTINUE": K_CONTINUE,
        "K_BLOCKED": K_BLOCKED,
        "K_BUDGET": K_BUDGET,
        "RuntimeFault": RuntimeFault,
        "_EdgeRun": _EdgeRun,
        "ELABELS": _edge_labels(plan.graph),
    }
    w = []
    w.append("def kernel(rt, comp, frame, ops, budget):")
    w.append("    vertex = frame.vertex")
    w.append("    ctx = frame.ctx")
    w.append("    M = rt.metrics")
    w.append("    SL = rt.stage_load")
    w.append("    if frame.phase == 0:")
    _emit_vertex_function(stage, plan.graph, ns, w, "        ")
    w.append("        frame.phase = 1")
    if hop.edge_req_orientation == "current_to_target":
        w.append("        frame.cursor = _EdgeRun(rt.local.edges_between("
                 "vertex, ctx[%d]))" % hop.target_slot)
    elif hop.edge_req_orientation is not None:
        w.append("        frame.cursor = _EdgeRun(rt.local.in_edges_from("
                 "vertex, ctx[%d]))" % hop.target_slot)
    w.append("        if ops >= budget:")
    w.append("            return ops, K_BUDGET")
    w.append("    stack = comp.stack")
    if hop.edge_req_orientation is None:
        # Pure inspection: one routed continuation (frame.cursor doubles
        # as the sent flag), then the exhaustion-discovery charge.
        w.append("    if frame.cursor is None:")
        w.append("        ops += %d" % wc_h)
        w.append("        if not rt.route(comp, %d, "
                 "rt.owner_list[ctx[%d]], ctx):" % (s_next, hop.target_slot))
        w.append("            return ops, K_BLOCKED")
        w.append("        frame.cursor = True")
        w.append("        if ops >= budget:")
        w.append("            return ops, K_BUDGET")
        w.append("        if stack[-1] is not frame:")
        w.append("            return ops, K_CONTINUE")
        w.append("    ops += %d" % wc_h)
        w.append("    stack.pop()")
        w.append("    SL[%d] -= 1" % stage.index)
        w.append("    M.cur_live_frames -= 1")
        w.append("    return ops, K_CONTINUE")
        return _finish_kernel(w, ns, stage)
    w.append("    state = frame.cursor")
    w.append("    eids = state.eids")
    w.append("    pos = state.pos")
    w.append("    end = state.end")
    w.append("    dest = rt.owner_list[ctx[%d]]" % hop.target_slot)
    if profiled:
        w.append("    PSC = rt.profiler.scanned")
    w.append("    while True:")
    w.append("        if pos >= end:")
    w.append("            ops += %d" % wc_h)
    w.append("            stack.pop()")
    w.append("            SL[%d] -= 1" % stage.index)
    w.append("            M.cur_live_frames -= 1")
    w.append("            return ops, K_CONTINUE")
    w.append("        eid = eids[pos]")
    w.append("        pos += 1")
    w.append("        ops += %d" % wc_h)
    if profiled:
        # Same counting point as _VertexCursor.advance (edge-checked
        # form); the pure-inspection form scans nothing on either path.
        w.append("        PSC[%d] += 1" % stage.index)
    cond = _edge_accept_condition(hop, ns)
    if cond:
        w.append("        if %s:" % cond)
        body_ind = "            "
    else:
        body_ind = "        "
    w.append(body_ind + "out_ctx = %s" % _out_ctx_expression(hop, ns))
    w.append(body_ind + "if not rt.route(comp, %d, dest, out_ctx):" % s_next)
    w.append(body_ind + "    state.pos = pos - 1"
             "  # replay this edge on resume")
    w.append(body_ind + "    return ops, K_BLOCKED")
    w.append(body_ind + "if stack[-1] is not frame:")
    w.append(body_ind + "    state.pos = pos")
    w.append(body_ind + "    if ops >= budget:")
    w.append(body_ind + "        return ops, K_BUDGET")
    w.append(body_ind + "    return ops, K_CONTINUE")
    w.append("        if ops >= budget:")
    w.append("            state.pos = pos")
    w.append("            return ops, K_BUDGET")
    return _finish_kernel(w, ns, stage)


def _compile_output_kernel(plan, stage, profiled=False):
    """Generate the specialized OUTPUT kernel for *stage*.

    Two charged steps after the vertex function — emit, then the
    exhaustion discovery — matching ``_OutputCursor`` advance for
    advance.  ``frame.cursor`` doubles as the emitted flag.
    """
    wc_h = stage.hop.work_cost
    ns = {
        "K_CONTINUE": K_CONTINUE,
        "K_BUDGET": K_BUDGET,
        "RuntimeFault": RuntimeFault,
        "ResultEmitted": ResultEmitted,
    }
    w = []
    w.append("def kernel(rt, comp, frame, ops, budget):")
    w.append("    ctx = frame.ctx")
    w.append("    M = rt.metrics")
    w.append("    SL = rt.stage_load")
    w.append("    if frame.phase == 0:")
    w.append("        vertex = frame.vertex")
    _emit_vertex_function(stage, plan.graph, ns, w, "        ")
    w.append("        frame.phase = 1")
    w.append("        if ops >= budget:")
    w.append("            return ops, K_BUDGET")
    w.append("    if frame.cursor is None:")
    w.append("        frame.cursor = True")
    # Inline emit_result (machine.py): collector, counter, trace event.
    w.append("        rt.collector.add(ctx)")
    w.append("        M.results_emitted += 1")
    if profiled:
        w.append("        rt.profiler.emitted[-1] += 1")
    w.append("        trace = rt.trace")
    w.append("        if trace is not None:")
    w.append("            trace.emit(ResultEmitted(rt.api.now, "
             "rt.machine_id))")
    w.append("        ops += %d" % wc_h)
    w.append("        if ops >= budget:")
    w.append("            return ops, K_BUDGET")
    w.append("    ops += %d" % wc_h)
    w.append("    comp.stack.pop()")
    w.append("    SL[%d] -= 1" % stage.index)
    w.append("    M.cur_live_frames -= 1")
    w.append("    return ops, K_CONTINUE")
    return _finish_kernel(w, ns, stage)
