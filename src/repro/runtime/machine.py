"""Per-machine runtime: message manager, flow control, termination, results.

``QueryMachine`` implements the simulator's machine interface and acts
as the runtime facade (``rt``) that workers and hop cursors call into.
It owns:

* the machine's :class:`LocalPartition` of the distributed graph;
* the **message manager** — per-(stage, destination) outgoing bulk
  buffers and per-stage inboxes (paper §3.2);
* the **flow control manager** (paper §3.3, ``runtime.flow_control``);
* the **termination tracker** (``runtime.termination``);
* the machine-local result collector.
"""

from collections import deque

from repro.cluster.metrics import MachineMetrics
from repro.cluster.tasks import CallbackTask, TaskQueue
from repro.errors import RuntimeFault
from repro.obs.events import (
    FlowBlock,
    GhostPrune,
    QuotaGranted,
    QuotaRequested,
    ResultEmitted,
    StageCompleted,
)
from repro.runtime.flow_control import FlowControl
from repro.runtime.hops import CNItem
from repro.runtime.messages import (
    Ack,
    Completed,
    QuotaGrant,
    QuotaRequest,
    WorkMessage,
)
from repro.runtime.termination import TerminationTracker
from repro.runtime.worker import ScanFrame, Worker, frame_for_item


def _item_weight(item):
    """Contexts an item accounts for in memory metrics."""
    return len(item) if isinstance(item, CNItem) else 1


class QueryMachine:
    """One simulated machine executing its share of a query."""

    def __init__(self, plan, dist_graph, machine_id, api, config,
                 debug_checks=False, tracer=None, telemetry=None,
                 profiler=None):
        self.plan = plan
        self.graph = plan.graph
        self.local = dist_graph.local(machine_id)
        self.machine_id = machine_id
        self.config = config
        self.debug_checks = debug_checks
        self.metrics = MachineMetrics()
        #: With reliability enabled the raw MachineAPI is wrapped in the
        #: reliable-channel transport; everything below (message
        #: manager, flow control, termination) sends through ``self.api``
        #: either way and sees a FIFO-reliable network.
        self._reliable = config.reliability
        if self._reliable:
            from repro.runtime.reliability import ReliableTransport

            api = ReliableTransport(api, config, self.metrics,
                                    tracer=tracer, telemetry=telemetry)
        self.api = api
        #: Simulator hook: reliability retransmission timers need a
        #: per-tick callback and participate in idle fast-forwarding.
        self.uses_tick_hook = self._reliable
        #: Optional repro.obs.Tracer shared by every machine of the run;
        #: None (the default) keeps all instrumentation sites to a single
        #: pointer comparison.
        self.trace = tracer
        #: Optional repro.obs.Telemetry shared by every machine; None
        #: (the default) costs the same single pointer comparison.
        self.telemetry = telemetry
        #: Optional per-machine MachineStageProfile view (plan-vs-actual
        #: profiling, ``repro.obs.feedback``); None keeps every counting
        #: site behind the same single pointer comparison.
        self.profiler = profiler

        num_stages = plan.num_stages
        num_machines = config.num_machines
        self.flow = FlowControl(
            num_stages,
            num_machines,
            machine_id,
            config.flow_control_window,
            dynamic=config.dynamic_flow_control,
        )
        self.termination = TerminationTracker(
            num_stages, num_machines, machine_id
        )

        #: Outgoing bulk buffers: (stage, dest) -> list of items.
        self._outgoing = {}
        #: The same buffers grouped by target stage, as (dest, buffer)
        #: pairs in creation order — lets the per-step completion scan
        #: look at one stage's buffers instead of the whole dict.
        #: Buffer lists are emptied in place (never replaced), so the
        #: pairs stay valid for the machine's lifetime.
        self._outgoing_by_stage = [[] for _ in range(num_stages)]
        #: First stage whose COMPLETED we have not sent yet (sent stages
        #: always form a prefix; see :meth:`_attempt_completions`).
        self._completions_from = 0
        #: Per-stage inbox of WorkMessages.
        self._inbox = [deque() for _ in range(num_stages)]
        #: Unconsumed inbox items + live frames, per stage.
        self.stage_load = [0] * num_stages
        #: Per-stage profile counters (EXPLAIN ANALYZE): contexts that
        #: entered each stage's vertex function, how many passed its
        #: checks, and how many contexts were shipped remotely to it.
        self.stage_visits = [0] * num_stages
        self.stage_passes = [0] * num_stages
        self.stage_remote_in = [0] * num_stages
        #: Intra-machine work sharing (paper §1/§3.3: computations
        #: "submitted internally to facilitate work-sharing"): a bounded
        #: per-stage queue of local continuations that idle workers pick
        #: up.  The bound keeps the depth-first memory guarantee intact —
        #: once full, continuations stay on the producing worker's stack.
        self._local_inbox = [deque() for _ in range(num_stages)]
        self._local_share_cap = (
            2 * config.workers_per_machine if config.work_sharing else 0
        )

        #: Flat owner list (partition knowledge is global): the bulk
        #: kernels' O(1) routing lookup without per-call numpy boxing.
        self.owner_list = dist_graph.partition.owners_list()
        #: Whether any ghost vertices exist — lets kernels skip the
        #: ghost pre-filter call entirely on ghost-free clusters (where
        #: it is a guaranteed no-op).
        self.ghosts_enabled = dist_graph.num_ghosts > 0
        #: Compiled per-stage bulk kernels (runtime.kernels), or None to
        #: run the micro-stepped cursor path.  Blocking mode always uses
        #: cursors: ABL4 is precisely about per-message synchrony.
        if config.bulk_kernels and not config.blocking_remote:
            self.kernels = plan.bulk_kernels(profiled=profiler is not None)
        else:
            self.kernels = None

        self._workers = [
            Worker(self, index) for index in range(config.workers_per_machine)
        ]
        self._bootstrap_chunks = self._make_bootstrap_chunks()
        self._bootstrap_total = len(self._bootstrap_chunks)

        # Machine-local result collector: raw rows, or a partial-
        # aggregation accumulator for aggregating queries (so no machine
        # materializes its full match list — see runtime.aggregation).
        from repro.runtime.aggregation import make_collector

        self.collector = make_collector(
            plan.output, plan.query.vertex_vars(), plan.query.edge_vars()
        )
        self.last_refused = None
        self._sync_wait = None
        self._acked_seqs = set()
        self._quota_rr = 0

        # The two PGX.D tasks (paper §3.3): bootstrap, then await-completion.
        self.tasks = TaskQueue()
        self.tasks.push(CallbackTask("bootstrap", self._poll_bootstrap_task))
        self.tasks.push(CallbackTask("await-completion", self._poll_await_task))

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _make_bootstrap_chunks(self, chunk_size=256):
        root = self.plan.root
        if root.single_vertex_id is not None:
            origin = root.single_vertex_id
            if not (0 <= origin < self.graph.num_vertices):
                return deque()
            if self.local.is_local(origin):
                return deque([[origin]])
            return deque()
        vertices = self.local.local_vertices()
        chunks = deque()
        for start in range(0, len(vertices), chunk_size):
            chunks.append(vertices[start:start + chunk_size])
        return chunks

    def next_bootstrap_frame(self):
        if not self._bootstrap_chunks:
            return None
        chunk = self._bootstrap_chunks.popleft()
        self.stage_load[0] += 1  # the ScanFrame counts as a stage-0 frame
        self.metrics.frames_delta(1)
        return ScanFrame(0, (), chunk)

    @property
    def bootstrap_done(self):
        return not self._bootstrap_chunks

    # ------------------------------------------------------------------
    # PGX.D task plumbing (structural; workers drive the same DOWORK)
    # ------------------------------------------------------------------
    def _poll_bootstrap_task(self, worker, budget):
        ops = worker.step(budget)
        return ops, self.bootstrap_done

    def _poll_await_task(self, worker, budget):
        ops = worker.step(budget)
        return ops, self.is_finished()

    # ------------------------------------------------------------------
    # Simulator interface
    # ------------------------------------------------------------------
    def worker_step(self, worker_index, budget):
        worker = self._workers[worker_index]
        task = self.tasks.head()
        if task is None:
            self.metrics.idle_ticks += 1
            return 0
        # Worker.step accounts real ops into the metrics itself; the
        # returned value is the time slice consumed (for idleness).
        used = task.poll(worker, budget)
        if self._sync_wait is not None:
            worker.waiting_for_seq = self._sync_wait
            self._sync_wait = None
        if used == 0:
            self.metrics.idle_ticks += 1
        self._attempt_completions()
        return used

    def on_message(self, src, payload):
        if self._reliable:
            # The transport dedups/reorders; only in-order application
            # payloads (possibly several, when a frame fills a gap)
            # reach the dispatcher below.
            for inner_src, inner in self.api.receive(src, payload):
                self._dispatch(inner_src, inner)
        else:
            self._dispatch(src, payload)

    def on_tick(self, now):
        """Simulator per-tick hook: drive retransmission timers."""
        self.api.poll(now)

    def next_timer_tick(self):
        """Earliest pending retransmission, for idle fast-forwarding."""
        return self.api.next_timer_tick()

    def _dispatch(self, src, payload):
        if isinstance(payload, WorkMessage):
            payload.src = src
            if self.telemetry is not None:
                payload.arrived_at = self.api.now
            self._inbox[payload.stage].append(payload)
            items = payload.items
            weight = len(items)
            for item in items:
                if isinstance(item, CNItem):
                    weight += len(item) - 1
            self.stage_load[payload.stage] += len(payload.items)
            self.metrics.buffered_delta(weight)
            if self.config.blocking_remote:
                # Synchronous-RPC model (ABL4): acknowledge on receipt so
                # the sender's round trip is 2x latency; a deferred ack
                # would deadlock once every worker is parked waiting.
                self.api.send(src, Ack(payload.stage, 1, seqs=(payload.seq,)))
                self.metrics.control_messages_sent += 1
        elif isinstance(payload, Ack):
            self.flow.on_ack_from(payload.stage, src, payload.count)
            self._acked_seqs.update(payload.seqs)
        elif isinstance(payload, Completed):
            self.termination.on_completed(payload.stage, src)
            if self.termination.stage_globally_complete(payload.stage):
                self.flow.redistribute_completed_stage(payload.stage)
        elif isinstance(payload, QuotaRequest):
            amount = self.flow.donate_quota(payload.stage, payload.dest)
            self.api.send(src, QuotaGrant(payload.stage, payload.dest, amount))
            self.metrics.control_messages_sent += 1
            if amount:
                self.metrics.quota_granted += amount
        elif isinstance(payload, QuotaGrant):
            self.flow.on_quota_grant(payload.stage, payload.dest,
                                     payload.amount)
            if self.trace is not None:
                self.trace.emit(QuotaGranted(
                    self.api.now, self.machine_id, payload.stage,
                    payload.dest, payload.amount,
                ))
        else:
            raise RuntimeFault("unknown payload: %r" % (payload,))

    def is_finished(self):
        return self.termination.all_complete()

    # ------------------------------------------------------------------
    # Runtime facade used by workers and hop cursors
    # ------------------------------------------------------------------
    @property
    def num_machines(self):
        return self.config.num_machines

    def owner(self, vertex):
        return self.local.owner(vertex)

    def push_frame(self, comp, frame):
        comp.stack.append(frame)
        self.stage_load[frame.stage_index] += 1
        self.metrics.frames_delta(1)

    def pop_frame(self, comp):
        frame = comp.stack.pop()
        self.stage_load[frame.stage_index] -= 1
        self.metrics.frames_delta(-1)
        return frame

    def note_item_consumed(self, stage, item):
        self.stage_load[stage] -= 1
        self.metrics.buffered_delta(-_item_weight(item))

    def pop_message(self, stage):
        inbox = self._inbox[stage]
        if not inbox:
            return None
        message = inbox.popleft()
        if self.telemetry is not None:
            # Hop service time: how long the bulk waited to be consumed.
            self.telemetry.inbox_wait.observe(
                self.api.now - message.arrived_at
            )
        return message

    def inbox_depth(self):
        """Queued bulk work messages across all stages (telemetry)."""
        total = 0
        for inbox in self._inbox:
            total += len(inbox)
        return total

    def pop_local_item(self, stage):
        """Take one work-shared local continuation for *stage*, if any."""
        queue = self._local_inbox[stage]
        if not queue:
            return None
        item = queue.popleft()
        self.stage_load[stage] -= 1
        self.metrics.buffered_delta(-_item_weight(item))
        return item

    def emit_result(self, ctx):
        self.collector.add(ctx)
        self.metrics.results_emitted += 1
        if self.profiler is not None:
            self.profiler.emitted[-1] += 1
        if self.trace is not None:
            self.trace.emit(ResultEmitted(self.api.now, self.machine_id))

    def send_ack(self, message):
        """Ack *message* to its sender (receiver finished processing it).

        In blocking mode the ack already went out on receipt.
        """
        if self.config.blocking_remote:
            return
        self.api.send(
            message.src, Ack(message.stage, 1, seqs=(message.seq,))
        )
        self.metrics.control_messages_sent += 1

    def is_acked(self, seq):
        return seq in self._acked_seqs

    def sync_wait_flagged(self):
        """True while a blocking-mode send awaits worker pickup."""
        return self._sync_wait is not None

    def ghost_admits(self, stage_index, ctx, target):
        """Ghost-node pre-filter (PGX.D's ghost functionality).

        When *target* is a ghost — its properties and label replicated
        on every machine — the next stage's adjacency-free admission
        checks can run right here; returning False lets the hop skip the
        remote message.  Non-ghost targets always "admit" (the owner
        decides).  Stages with induced-semantics adjacency checks are
        never pre-filtered.
        """
        if not self.local.is_ghost(target):
            return True
        stage = self.plan.stages[stage_index]
        if stage.forbidden_slots:
            return True
        from repro.runtime.worker import vertex_admissible

        if vertex_admissible(self, stage, ctx, target):
            return True
        self.metrics.ghost_prunes += 1
        if self.trace is not None:
            self.trace.emit(GhostPrune(
                self.api.now, self.machine_id, stage_index
            ))
        return False

    def route(self, comp, stage_index, dest, item):
        """Deliver a continuation to *stage_index* on machine *dest*.

        Local continuations become frames immediately (depth-first);
        remote ones enter the bulk buffer, subject to flow control.
        Returns False when the send was refused — the caller must replay
        the emission once the window frees up.
        """
        if dest == self.machine_id:
            queue = self._local_inbox[stage_index]
            if len(queue) < self._local_share_cap:
                queue.append(item)
                self.stage_load[stage_index] += 1
                self.metrics.buffered_delta(_item_weight(item))
            else:
                self.push_frame(comp, frame_for_item(self, stage_index, item))
            if self.profiler is not None:
                self.profiler.emitted[stage_index - 1] += _item_weight(item)
            return True
        if self.config.blocking_remote:
            if self._route_blocking(stage_index, dest, item):
                self.stage_remote_in[stage_index] += _item_weight(item)
                if self.profiler is not None:
                    self.profiler.emitted[stage_index - 1] += (
                        _item_weight(item)
                    )
                return True
            return False
        if self._enqueue(stage_index, dest, item):
            self.stage_remote_in[stage_index] += _item_weight(item)
            if self.profiler is not None:
                self.profiler.emitted[stage_index - 1] += _item_weight(item)
            return True
        self.last_refused = (stage_index, dest)
        self.metrics.flow_control_blocks += 1
        if self.trace is not None:
            self.trace.emit(FlowBlock(
                self.api.now, self.machine_id, stage_index, dest
            ))
        return False

    def _route_blocking(self, stage_index, dest, item):
        """ABL4 mode: one message per context, synchronous ack wait."""
        if not self.flow.can_send(stage_index, dest):
            self.last_refused = (stage_index, dest)
            self.metrics.flow_control_blocks += 1
            if self.trace is not None:
                self.trace.emit(FlowBlock(
                    self.api.now, self.machine_id, stage_index, dest
                ))
            return False
        message = WorkMessage(stage_index, (item,))
        self.flow.on_send(stage_index, dest)
        self.api.send(dest, message, size=_item_weight(item))
        self.metrics.work_messages_sent += 1
        self.metrics.contexts_sent += _item_weight(item)
        self._sync_wait = message.seq
        return True

    # ------------------------------------------------------------------
    # Message manager: bulk buffers
    # ------------------------------------------------------------------
    def _buffer(self, stage, dest):
        key = (stage, dest)
        buffer = self._outgoing.get(key)
        if buffer is None:
            buffer = []
            self._outgoing[key] = buffer
            self._outgoing_by_stage[stage].append((dest, buffer))
        return buffer

    def can_enqueue(self, stage, dest):
        buffer = self._outgoing.get((stage, dest))
        if buffer is None or len(buffer) < self.config.bulk_message_size:
            return True
        return self.flow.can_send(stage, dest)

    def _enqueue(self, stage, dest, item):
        buffer = self._outgoing.get((stage, dest))
        if buffer is None:
            buffer = self._buffer(stage, dest)
        bulk = self.config.bulk_message_size
        if len(buffer) >= bulk and not self._flush(stage, dest):
            return False
        buffer.append(item)
        self.metrics.buffered_delta(_item_weight(item))
        if len(buffer) >= bulk:
            self._flush(stage, dest)  # opportunistic; failure is fine
        return True

    def reserve_items(self, stage, dest, want):
        """Batch admission for a bulk kernel: how many *items* it may
        emit to (stage, dest) without per-item admission checks.

        Capacity is the free room in the outgoing buffer plus freshly
        reserved flow-control slots (``bulk_message_size`` items each).
        A full buffer is flushed here on a reserved slot so the kernel's
        append-then-flush loop never overfills it.  Returns 0 when no
        capacity is available — the kernel then falls back to
        :meth:`route`, which refuses at exactly the same item the
        micro-stepped cursor would.
        """
        buffer = self._outgoing.get((stage, dest))
        if buffer is None:
            buffer = self._buffer(stage, dest)
        bulk = self.config.bulk_message_size
        room = bulk - len(buffer)
        if room >= want:
            return want
        slots = self.flow.reserve(
            stage, dest, (want - room + bulk - 1) // bulk
        )
        if slots == 0:
            return room if room > 0 else 0
        if room <= 0:
            self._flush(stage, dest)  # guaranteed by the reservation
        return room + slots * bulk

    def end_batch(self, stage, resv):
        """Release a kernel's leftover reservations (every kernel exit).

        *resv* is the kernel's per-destination remaining-item map; the
        flow-control slots behind it go back to the window, so between
        worker slices reservations are always zero and ``can_send`` /
        ``can_enqueue`` behave exactly as on the cursor path.
        """
        if resv:
            flow = self.flow
            for dest in resv:
                flow.release(stage, dest)
            resv.clear()

    def _flush(self, stage, dest):
        return self._flush_buffer(
            stage, dest, self._outgoing.get((stage, dest))
        )

    def _flush_buffer(self, stage, dest, buffer):
        """:meth:`_flush` with the buffer already in hand (hot paths —
        bulk kernels and the per-stage registry scans — skip the dict
        lookup)."""
        if not buffer:
            return True
        if not self.flow.can_flush(stage, dest):
            return False
        message = WorkMessage(stage, tuple(buffer))
        weight = len(buffer)
        for item in buffer:
            if isinstance(item, CNItem):
                weight += len(item) - 1
        del buffer[:]
        self.flow.on_send(stage, dest)
        self.api.send(dest, message, size=weight)
        self.metrics.work_messages_sent += 1
        self.metrics.contexts_sent += weight
        self.metrics.buffered_delta(-weight)
        return True

    def _outbuf_empty_for(self, stage):
        """No buffered unsent contexts targeting *stage*."""
        for _dest, buffer in self._outgoing_by_stage[stage]:
            if buffer:
                return False
        return True

    def idle_progress(self):
        """Opportunistic work for an otherwise idle worker: flush buffers.

        Iterates latest stage first; within a stage, registry order is
        the global buffer-creation order — the same sequence the old
        stable sort over ``self._outgoing`` produced.
        """
        ops = 0
        for stage in range(self.plan.num_stages - 1, -1, -1):
            for dest, buffer in self._outgoing_by_stage[stage]:
                if buffer and self._flush_buffer(stage, dest, buffer):
                    ops += self.config.message_send_cost
        return ops

    # ------------------------------------------------------------------
    # Dynamic flow control: quota borrowing
    # ------------------------------------------------------------------
    def maybe_request_quota(self, stage, dest):
        if not self.flow.wants_quota(stage, dest):
            return
        peers = [
            machine
            for machine in range(self.num_machines)
            if machine not in (self.machine_id, dest)
        ]
        if not peers:
            return
        peer = peers[self._quota_rr % len(peers)]
        self._quota_rr += 1
        self.flow.note_quota_requested(stage, dest)
        self.api.send(peer, QuotaRequest(stage, dest))
        self.metrics.control_messages_sent += 1
        self.metrics.quota_requests += 1
        if self.trace is not None:
            self.trace.emit(QuotaRequested(
                self.api.now, self.machine_id, stage, dest, peer
            ))

    # ------------------------------------------------------------------
    # Termination protocol
    # ------------------------------------------------------------------
    def _attempt_completions(self):
        # Sent stages always form a prefix: marking stage n requires
        # stage n-1 globally complete, which includes our own mark.
        # Start at the cached first-unsent stage instead of rescanning
        # (this runs after every worker step).
        num_stages = self.plan.num_stages
        for stage in range(self._completions_from, num_stages):
            if not self.termination.predecessor_complete(stage):
                break
            # Outgoing buffers *from* this stage target stage + 1.
            outbuf_empty = (
                stage + 1 >= num_stages
                or self._outbuf_empty_for(stage + 1)
            )
            if not outbuf_empty:
                # Try to push the stragglers out right now.
                for dest, buffer in self._outgoing_by_stage[stage + 1]:
                    if buffer:
                        self._flush_buffer(stage + 1, dest, buffer)
                outbuf_empty = self._outbuf_empty_for(stage + 1)
            if not self.termination.newly_completable(
                stage, self.bootstrap_done, self.stage_load[stage],
                outbuf_empty,
            ):
                break
            self.termination.mark_sent(stage)
            self._completions_from = stage + 1
            if self.trace is not None:
                self.trace.emit(StageCompleted(
                    self.api.now, self.machine_id, stage
                ))
            for machine in range(self.num_machines):
                if machine != self.machine_id:
                    self.api.send(machine, Completed(stage))
                    self.metrics.control_messages_sent += 1
            if self.termination.stage_globally_complete(stage):
                self.flow.redistribute_completed_stage(stage)
