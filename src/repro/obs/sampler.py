"""Per-tick time-series sampling of the live runtime.

The :class:`TimeSeriesSampler` is driven by the simulator through the
same ``uses_tick_hook`` contract as the reliability layer's timers: it
exposes ``on_tick``/``next_timer_tick`` and is called once per processed
tick (after every worker ran), plus a final flush when the run ends.
Idle fast-forwarding skips ticks the same way it does for machines —
nothing changes during skipped ticks, and every sample carries its own
tick, so the series is simply sparse there.

Each sample records, per machine, the quantities the paper's §3.2/§3.3
claims are about: the buffered-context gauge against the configured
budget, flow-control window occupancy, quota grants, retransmits, and
the idle fraction.  The ``buffered_max`` column is the within-interval
high-water mark (exact whenever the machine's peak advanced during the
interval), so ``max(series["buffered_max"]) == peak_buffered_contexts``
holds for a complete run — the bounded-memory claim as a curve.

Samples are pure functions of the deterministic simulation state, so a
fixed seed reproduces the series bit for bit.
"""

#: Per-machine series columns, in export order.
MACHINE_COLUMNS = (
    "ops",            # micro-ops executed since the previous sample
    "buffered",       # buffered-context gauge (inbox + parked + outgoing)
    "buffered_max",   # within-interval high-water mark of that gauge
    "frames",         # live traversal frames
    "inflight",       # total unacked flow-control window occupancy
    "occupancy",      # number of (stage, dest) windows with traffic in flight
    "inbox_depth",    # queued bulk work messages
    "idle_frac",      # 1 - ops / (workers * ops_per_tick * interval ticks)
    "quota_granted",  # cumulative window slots received from peers
    "retransmits",    # cumulative reliability-layer retransmissions
    "stages_done",    # stages this machine has declared COMPLETED
)


class TimeSeriesSampler:
    """Records per-machine series each simulator tick (telemetry on)."""

    #: Simulator tick-hook contract (same seam as reliability timers).
    uses_tick_hook = True

    def __init__(self, telemetry, interval=1):
        self.telemetry = telemetry
        #: Sample every N processed ticks (1 = every tick).
        self.interval = max(1, int(interval))
        #: Tick of each sample (shared by all machines).
        self.ticks = []
        #: machine -> {column: [values]}, aligned with ``ticks``.
        self.machines = {}
        #: Per-sample tuple of per-stage completed-machine counts — the
        #: stage-completion wavefront the monitor dashboard renders.
        self.wavefront = []
        #: Receiver-side context budget (0 = unknown/not bound yet).
        self.budget = 0
        self.num_stages = 0
        self._bound = None
        self._capacity = 1
        self._last_counts = {}
        self._prev_peak = {}
        self._last_tick = None
        #: Optional live hook: called as ``on_sample(sampler, tick)``
        #: every ``callback_every`` samples (the monitor dashboard).
        self.on_sample = None
        self.callback_every = 1
        self._since_callback = 0

    @property
    def num_samples(self):
        return len(self.ticks)

    def bind(self, machines, config, num_stages):
        """Attach to a run's machines; called by the simulator."""
        self._bound = list(machines)
        self.num_stages = num_stages
        self._capacity = max(
            1, config.workers_per_machine * config.ops_per_tick
        )
        senders = max(0, config.num_machines - 1)
        # Receiver-side bound: in-flight windows plus one partially
        # filled bulk buffer per (stage, sender) channel — the same
        # bound tests/test_engine_flow_memory.py asserts.
        self.budget = (
            num_stages * senders * config.bulk_message_size
            * (config.flow_control_window + 1)
        )
        self.telemetry.budget_gauge.set(self.budget)
        self.telemetry.meta.setdefault("budget", self.budget)
        self.telemetry.meta.setdefault("num_stages", num_stages)
        self.telemetry.meta.setdefault(
            "num_machines", config.num_machines
        )

    # ------------------------------------------------------------------
    # Simulator tick-hook contract
    # ------------------------------------------------------------------
    def on_tick(self, now):
        if self._last_tick is not None and now == self._last_tick:
            return
        if (
            self._last_tick is not None
            and now - self._last_tick < self.interval
        ):
            return
        self._sample(now)

    def next_timer_tick(self):
        """The sampler never forces the simulator awake."""
        return None

    def flush(self, now):
        """Record the final state of a finished (or aborted) run."""
        if self._last_tick is None or now != self._last_tick:
            self._sample(now)

    # ------------------------------------------------------------------
    def _series_for(self, machine_id):
        series = self.machines.get(machine_id)
        if series is None:
            series = self.machines[machine_id] = {
                column: [] for column in MACHINE_COLUMNS
            }
        return series

    def _sample(self, now):
        machines = self._bound
        if machines is None:
            return
        telemetry = self.telemetry
        span = 1 if self._last_tick is None else max(1, now - self._last_tick)
        self.ticks.append(now)
        self._last_tick = now
        stage_done = [0] * self.num_stages
        for machine_id, machine in enumerate(machines):
            metrics = machine.metrics
            last = self._last_counts.setdefault(machine_id, {})
            ops_delta = metrics.ops - last.get("ops", 0)
            buffered = metrics.cur_buffered_contexts
            peak = metrics.peak_buffered_contexts
            prev_peak = self._prev_peak.get(machine_id, 0)
            buffered_max = peak if peak > prev_peak else buffered
            self._prev_peak[machine_id] = peak
            flow = getattr(machine, "flow", None)
            inflight = flow.inflight_total() if flow is not None else 0
            occupancy = flow.occupancy_count() if flow is not None else 0
            depth = (
                machine.inbox_depth()
                if hasattr(machine, "inbox_depth") else 0
            )
            idle_frac = 1.0 - min(
                1.0, ops_delta / (self._capacity * span)
            )
            termination = getattr(machine, "termination", None)
            stages_done = 0
            if termination is not None:
                for stage in range(self.num_stages):
                    if termination.sent(stage):
                        stages_done += 1
                        stage_done[stage] += 1
            series = self._series_for(machine_id)
            series["ops"].append(ops_delta)
            series["buffered"].append(buffered)
            series["buffered_max"].append(buffered_max)
            series["frames"].append(metrics.cur_live_frames)
            series["inflight"].append(inflight)
            series["occupancy"].append(occupancy)
            series["inbox_depth"].append(depth)
            series["idle_frac"].append(round(idle_frac, 4))
            series["quota_granted"].append(metrics.quota_granted)
            series["retransmits"].append(metrics.retransmits)
            series["stages_done"].append(stages_done)

            # Registry sync: gauges take the sampled value, mirrored
            # counters advance by their delta since the last sample.
            label = (str(machine_id),)
            telemetry.buffered_gauge.labels(*label).set(buffered)
            telemetry.buffered_peak_gauge.labels(*label).set(peak)
            telemetry.inflight_gauge.labels(*label).set(inflight)
            telemetry.frames_gauge.labels(*label).set(
                metrics.cur_live_frames
            )
            telemetry.stages_complete_gauge.labels(*label).set(stages_done)
            telemetry.inbox_depth.labels(*label).observe(depth)
            for name, family in telemetry.mirrored.items():
                value = getattr(metrics, name)
                delta = value - last.get(name, 0)
                if delta:
                    family.labels(*label).inc(delta)
                last[name] = value
            last["ops"] = metrics.ops
        self.wavefront.append(tuple(stage_done))

        if self.on_sample is not None:
            self._since_callback += 1
            if self._since_callback >= self.callback_every:
                self._since_callback = 0
                self.on_sample(self, now)

    # ------------------------------------------------------------------
    # Inspection & composition
    # ------------------------------------------------------------------
    def series(self, machine_id):
        """``{"ticks": [...], <column>: [...]}`` for one machine."""
        out = {"ticks": list(self.ticks)}
        out.update(self._series_for(machine_id))
        return out

    def peak(self, column):
        """Max of *column* across all machines (0 on an empty series)."""
        peak = 0
        for series in self.machines.values():
            if series[column]:
                peak = max(peak, max(series[column]))
        return peak

    def extend(self, other, tick_offset=0):
        """Append a later run's samples, shifting ticks (union seams)."""
        self.ticks.extend(tick + tick_offset for tick in other.ticks)
        for machine_id, series in other.machines.items():
            mine = self._series_for(machine_id)
            for column in MACHINE_COLUMNS:
                mine[column].extend(series[column])
        self.wavefront.extend(other.wavefront)
        self.num_stages = max(self.num_stages, other.num_stages)
        self.budget = max(self.budget, other.budget)
        if other.ticks:
            self._last_tick = other.ticks[-1] + tick_offset
        return self
