"""Typed trace events emitted by the runtime.

Every event is a small ``__slots__`` record with a class-level ``kind``
string and the simulated ``tick`` it happened on.  Events are only ever
constructed when a :class:`~repro.obs.tracer.Tracer` is installed, so
the disabled-tracer fast path allocates nothing (see ``docs/
observability.md`` for the catalogue and how each kind maps onto the
paper's mechanisms).
"""


def _all_slots(cls):
    slots = []
    for klass in reversed(cls.__mro__):
        slots.extend(getattr(klass, "__slots__", ()))
    return slots


class TraceEvent:
    """Base class: one timestamped runtime event."""

    __slots__ = ("tick",)
    kind = "event"

    def __init__(self, tick):
        self.tick = tick

    def to_dict(self):
        record = {"kind": self.kind}
        for slot in _all_slots(type(self)):
            record[slot] = getattr(self, slot)
        return record

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (slot, getattr(self, slot))
            for slot in _all_slots(type(self))
        )
        return "%s(%s)" % (type(self).__name__, fields)


class TickSample(TraceEvent):
    """One simulator tick: per-machine gauges sampled after all workers ran.

    ``machines`` is a tuple with one ``(ops, buffered, frames, inflight)``
    entry per machine: micro-ops executed this tick, buffered contexts
    (inbox + parked + outgoing), live traversal frames, and the machine's
    total in-flight flow-control window occupancy.
    """

    __slots__ = ("machines",)
    kind = "tick"

    def __init__(self, tick, machines):
        super().__init__(tick)
        self.machines = machines


class WorkerSpan(TraceEvent):
    """A worker ran *ops* micro-ops of *stage* during one tick.

    ``offset`` is the number of micro-ops the worker had already consumed
    earlier in the same tick, so spans can be laid out sub-tick in the
    Chrome-trace export.  ``stage`` is the root stage of the computation
    the worker serviced (-1 for idle-progress buffer flushing).
    """

    __slots__ = ("machine", "worker", "stage", "ops", "offset")
    kind = "worker_span"

    def __init__(self, tick, machine, worker, stage, ops, offset):
        super().__init__(tick)
        self.machine = machine
        self.worker = worker
        self.stage = stage
        self.ops = ops
        self.offset = offset


class MessageSend(TraceEvent):
    """A payload was handed to the network (work or control traffic)."""

    __slots__ = ("src", "dst", "payload", "stage", "size", "deliver_at")
    kind = "message_send"

    def __init__(self, tick, src, dst, payload, stage, size, deliver_at):
        super().__init__(tick)
        self.src = src
        self.dst = dst
        self.payload = payload  # payload class name, e.g. "WorkMessage"
        self.stage = stage
        self.size = size
        self.deliver_at = deliver_at


class MessageDeliver(TraceEvent):
    """A payload reached its destination machine."""

    __slots__ = ("src", "dst", "payload", "stage")
    kind = "message_deliver"

    def __init__(self, tick, src, dst, payload, stage):
        super().__init__(tick)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.stage = stage


class FlowBlock(TraceEvent):
    """Flow control refused a send: window for (stage, dest) exhausted."""

    __slots__ = ("machine", "stage", "dest")
    kind = "flow_block"

    def __init__(self, tick, machine, stage, dest):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage
        self.dest = dest


class FlowUnblock(TraceEvent):
    """A parked computation's refused send channel opened up again."""

    __slots__ = ("machine", "stage", "dest")
    kind = "flow_unblock"

    def __init__(self, tick, machine, stage, dest):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage
        self.dest = dest


class QuotaRequested(TraceEvent):
    """Dynamic flow control: asked *peer* for window capacity."""

    __slots__ = ("machine", "stage", "dest", "peer")
    kind = "quota_request"

    def __init__(self, tick, machine, stage, dest, peer):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage
        self.dest = dest
        self.peer = peer


class QuotaGranted(TraceEvent):
    """Dynamic flow control: received *amount* donated window slots."""

    __slots__ = ("machine", "stage", "dest", "amount")
    kind = "quota_grant"

    def __init__(self, tick, machine, stage, dest, amount):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage
        self.dest = dest
        self.amount = amount


class StageCompleted(TraceEvent):
    """Termination protocol: *machine* declared *stage* complete."""

    __slots__ = ("machine", "stage")
    kind = "stage_completed"

    def __init__(self, tick, machine, stage):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage


class GhostPrune(TraceEvent):
    """The ghost-node pre-filter dropped a context before shipping it."""

    __slots__ = ("machine", "stage")
    kind = "ghost_prune"

    def __init__(self, tick, machine, stage):
        super().__init__(tick)
        self.machine = machine
        self.stage = stage


class ResultEmitted(TraceEvent):
    """A machine emitted one final match into its result collector."""

    __slots__ = ("machine",)
    kind = "result"

    def __init__(self, tick, machine):
        super().__init__(tick)
        self.machine = machine


# ----------------------------------------------------------------------
# Chaos & reliability events (repro.chaos / repro.runtime.reliability)
# ----------------------------------------------------------------------
class MessageDropped(TraceEvent):
    """Chaos: the network silently lost a message."""

    __slots__ = ("src", "dst", "payload")
    kind = "chaos_drop"

    def __init__(self, tick, src, dst, payload):
        super().__init__(tick)
        self.src = src
        self.dst = dst
        self.payload = payload


class MessageDuplicated(TraceEvent):
    """Chaos: the network delivered a spurious second copy."""

    __slots__ = ("src", "dst", "payload", "delay")
    kind = "chaos_duplicate"

    def __init__(self, tick, src, dst, payload, delay):
        super().__init__(tick)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.delay = delay


class MessageDelayed(TraceEvent):
    """Chaos: a message was delayed past the FIFO order (reordering)."""

    __slots__ = ("src", "dst", "payload", "delay")
    kind = "chaos_delay"

    def __init__(self, tick, src, dst, payload, delay):
        super().__init__(tick)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.delay = delay


class MachineStalled(TraceEvent):
    """Chaos: *machine*'s workers freeze until tick *until*."""

    __slots__ = ("machine", "until")
    kind = "chaos_stall"

    def __init__(self, tick, machine, until):
        super().__init__(tick)
        self.machine = machine
        self.until = until


class MachineResumed(TraceEvent):
    """Chaos: a stalled machine's workers run again."""

    __slots__ = ("machine",)
    kind = "chaos_resume"

    def __init__(self, tick, machine):
        super().__init__(tick)
        self.machine = machine


class MachineCrashed(TraceEvent):
    """Chaos: *machine* crashed hard — the query will abort."""

    __slots__ = ("machine",)
    kind = "chaos_crash"

    def __init__(self, tick, machine):
        super().__init__(tick)
        self.machine = machine


class Retransmit(TraceEvent):
    """Reliability: an unacknowledged frame was sent again."""

    __slots__ = ("machine", "dst", "seq", "attempt")
    kind = "retransmit"

    def __init__(self, tick, machine, dst, seq, attempt):
        super().__init__(tick)
        self.machine = machine
        self.dst = dst
        self.seq = seq
        self.attempt = attempt


class DuplicateFrameDropped(TraceEvent):
    """Reliability: the receiver discarded an already-seen frame."""

    __slots__ = ("machine", "src", "seq")
    kind = "dup_frame_dropped"

    def __init__(self, tick, machine, src, seq):
        super().__init__(tick)
        self.machine = machine
        self.src = src
        self.seq = seq


class FrameBuffered(TraceEvent):
    """Reliability: an out-of-order frame was parked for reordering."""

    __slots__ = ("machine", "src", "seq", "expected")
    kind = "frame_buffered"

    def __init__(self, tick, machine, src, seq, expected):
        super().__init__(tick)
        self.machine = machine
        self.src = src
        self.seq = seq
        self.expected = expected


class QueryAbortedEvent(TraceEvent):
    """The run was cancelled (crash, deadline) at this tick."""

    __slots__ = ("reason",)
    kind = "aborted"

    def __init__(self, tick, reason):
        super().__init__(tick)
        self.reason = reason


#: Every concrete event kind, for documentation and validation.
EVENT_KINDS = tuple(
    cls.kind
    for cls in (
        TickSample,
        WorkerSpan,
        MessageSend,
        MessageDeliver,
        FlowBlock,
        FlowUnblock,
        QuotaRequested,
        QuotaGranted,
        StageCompleted,
        GhostPrune,
        ResultEmitted,
        MessageDropped,
        MessageDuplicated,
        MessageDelayed,
        MachineStalled,
        MachineResumed,
        MachineCrashed,
        Retransmit,
        DuplicateFrameDropped,
        FrameBuffered,
        QueryAbortedEvent,
    )
)
