"""Live terminal dashboard over the telemetry time series.

``repro monitor`` runs a query with telemetry on and renders, while it
executes, one sparkline row per machine (buffered contexts against the
configured budget, with current ops/inflight/idle readouts) plus the
stage-completion wavefront — how many machines have declared each stage
COMPLETED.  On a real terminal the frame redraws in place with ANSI
cursor movement; when stdout is not a TTY (CI logs, pipes) it degrades
to periodic plain-text snapshots separated by blank lines.

The dashboard is a pure consumer: it hooks the sampler's ``on_sample``
callback and reads the recorded series, so rendering can never perturb
the simulation (the series is identical with or without a monitor
attached).
"""

import sys

#: Eight-level sparkline ramp, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=32, ceiling=None):
    """Render *values* as a fixed-width sparkline string.

    The last *width* values are shown, scaled against *ceiling* (or the
    window's max when None/0).  Empty input renders as spaces so rows
    stay aligned while the series warms up.
    """
    window = list(values)[-width:]
    if not window:
        return " " * width
    top = ceiling if ceiling else max(window)
    if top <= 0:
        top = 1
    chars = []
    for value in window:
        level = int(value / top * (len(SPARK_CHARS) - 1) + 0.5)
        level = max(0, min(len(SPARK_CHARS) - 1, level))
        chars.append(SPARK_CHARS[level])
    return "".join(chars).rjust(width)


def wavefront_bar(done, total, width=10):
    """``[####....]``-style progress cell for one stage."""
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(done / total * width + 0.5)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_frame(sampler, tick, width=32):
    """The full dashboard frame as a list of lines (no ANSI)."""
    budget = sampler.budget
    lines = [
        "repro monitor  tick %-8d samples %-6d budget %d contexts"
        % (tick, sampler.num_samples, budget)
    ]
    lines.append(
        "  %-4s %-*s %9s %9s %9s %6s"
        % ("", width, "buffered contexts", "buf", "ops", "inflight", "idle")
    )
    for machine_id in sorted(sampler.machines):
        series = sampler.machines[machine_id]
        buffered = series["buffered"]
        lines.append(
            "  m%-3d %s %9d %9d %9d %5d%%"
            % (
                machine_id,
                sparkline(buffered, width=width, ceiling=budget),
                buffered[-1] if buffered else 0,
                series["ops"][-1] if series["ops"] else 0,
                series["inflight"][-1] if series["inflight"] else 0,
                int(100 * series["idle_frac"][-1])
                if series["idle_frac"] else 0,
            )
        )
    if sampler.wavefront:
        front = sampler.wavefront[-1]
        total = len(sampler.machines)
        lines.append("  stage wavefront (machines completed):")
        cells = [
            "s%d %s %d/%d" % (stage, wavefront_bar(done, total), done, total)
            for stage, done in enumerate(front)
        ]
        # Three stages per row keeps long plans within one screen width.
        for start in range(0, len(cells), 3):
            lines.append("    " + "   ".join(cells[start:start + 3]))
    return lines


class Dashboard:
    """Renders telemetry frames to a stream as the simulation runs.

    Attach with :meth:`attach`; detach happens implicitly when the run
    ends (the sampler simply stops calling back).  ``interactive=None``
    autodetects: ANSI in-place redraw on a TTY, plain snapshots
    otherwise.
    """

    def __init__(self, stream=None, interactive=None, width=32,
                 refresh_every=8):
        self.stream = stream if stream is not None else sys.stdout
        if interactive is None:
            interactive = bool(getattr(self.stream, "isatty", lambda: False)())
        self.interactive = interactive
        self.width = width
        #: Render every N samples (snapshot mode spaces them further out).
        self.refresh_every = refresh_every
        self.frames_rendered = 0
        self._last_height = 0

    def attach(self, sampler):
        sampler.on_sample = self.on_sample
        sampler.callback_every = self.refresh_every
        return self

    def on_sample(self, sampler, tick):
        lines = render_frame(sampler, tick, width=self.width)
        out = self.stream
        if self.interactive and self._last_height:
            # Move up over the previous frame and overwrite in place.
            out.write("\x1b[%dA" % self._last_height)
            lines = [line + "\x1b[K" for line in lines]
        out.write("\n".join(lines) + "\n")
        if not self.interactive:
            out.write("\n")
        out.flush()
        self._last_height = len(lines) if self.interactive else 0
        self.frames_rendered += 1

    def final(self, sampler, tick):
        """Render one last frame for the run's end state."""
        self.on_sample(sampler, tick)
