"""Observability: structured tracing and profiling for query executions.

Enable tracing per query (``PlannerOptions(trace=True)``) or per cluster
(``ClusterConfig(trace=True)``); the engine then threads a
:class:`Tracer` through the simulator, network, machines, workers, flow
control, and the termination protocol, and returns it as
``QueryResult.trace``::

    result = engine.query(pgql, options=PlannerOptions(trace=True))
    result.trace.kinds()                  # distinct event types seen
    result.trace.profile().summary()      # per-stage / per-machine stats
    result.trace.to_chrome_json("trace.json")   # open in chrome://tracing
    print(result.trace.timeline())        # plain-text utilization rows

When tracing is off (the default) the runtime holds ``None`` instead of
a tracer and every instrumentation site reduces to one ``is not None``
check — see ``benchmarks/test_txt2_trace_overhead.py``.

Live telemetry is the second pillar: a label-aware
:class:`MetricsRegistry` (counters, gauges, histograms) plus a
:class:`TimeSeriesSampler` recording per-machine series every simulator
tick.  Enable it per query (``PlannerOptions(telemetry=True)``) or per
cluster (``ClusterConfig(telemetry=True)``); the engine returns the
:class:`Telemetry` handle as ``QueryResult.telemetry``::

    result = engine.query(pgql, options=PlannerOptions(telemetry=True))
    print(result.telemetry.summary())
    print(result.telemetry.prometheus())       # text exposition format
    series = result.telemetry.sampler.series(0)   # machine 0's curves

Telemetry-off follows the same zero-cost contract as tracing
(``benchmarks/test_txt3_telemetry_overhead.py``).
"""

from repro.obs.events import (
    EVENT_KINDS,
    DuplicateFrameDropped,
    FlowBlock,
    FlowUnblock,
    FrameBuffered,
    GhostPrune,
    MachineCrashed,
    MachineResumed,
    MachineStalled,
    MessageDelayed,
    MessageDeliver,
    MessageDropped,
    MessageDuplicated,
    MessageSend,
    QueryAbortedEvent,
    QuotaGranted,
    QuotaRequested,
    ResultEmitted,
    Retransmit,
    StageCompleted,
    TickSample,
    TraceEvent,
    WorkerSpan,
)
from repro.obs.export import chrome_trace, render_timeline
from repro.obs.feedback import (
    ExecutionProfile,
    FeedbackStore,
    MachineStageProfile,
    StageProfiler,
    build_execution_profile,
    publish_drift,
    q_error,
    query_fingerprint,
)
from repro.obs.exporters import (
    parse_prometheus,
    parse_series_csv,
    parse_series_jsonl,
    prometheus_text,
    registry_csv,
    registry_jsonl,
    series_csv,
    series_jsonl,
)
from repro.obs.profile import TraceProfile
from repro.obs.sampler import MACHINE_COLUMNS, TimeSeriesSampler
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Telemetry,
)
from repro.obs.tracer import Tracer

__all__ = [
    "Tracer",
    "TraceProfile",
    "Telemetry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeriesSampler",
    "MACHINE_COLUMNS",
    "StageProfiler",
    "MachineStageProfile",
    "ExecutionProfile",
    "FeedbackStore",
    "build_execution_profile",
    "publish_drift",
    "q_error",
    "query_fingerprint",
    "prometheus_text",
    "parse_prometheus",
    "registry_jsonl",
    "registry_csv",
    "series_jsonl",
    "series_csv",
    "parse_series_jsonl",
    "parse_series_csv",
    "TraceEvent",
    "EVENT_KINDS",
    "TickSample",
    "WorkerSpan",
    "MessageSend",
    "MessageDeliver",
    "FlowBlock",
    "FlowUnblock",
    "QuotaRequested",
    "QuotaGranted",
    "StageCompleted",
    "GhostPrune",
    "ResultEmitted",
    "MessageDropped",
    "MessageDuplicated",
    "MessageDelayed",
    "MachineStalled",
    "MachineResumed",
    "MachineCrashed",
    "Retransmit",
    "DuplicateFrameDropped",
    "FrameBuffered",
    "QueryAbortedEvent",
    "chrome_trace",
    "render_timeline",
]
