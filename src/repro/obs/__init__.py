"""Observability: structured tracing and profiling for query executions.

Enable tracing per query (``PlannerOptions(trace=True)``) or per cluster
(``ClusterConfig(trace=True)``); the engine then threads a
:class:`Tracer` through the simulator, network, machines, workers, flow
control, and the termination protocol, and returns it as
``QueryResult.trace``::

    result = engine.query(pgql, options=PlannerOptions(trace=True))
    result.trace.kinds()                  # distinct event types seen
    result.trace.profile().summary()      # per-stage / per-machine stats
    result.trace.to_chrome_json("trace.json")   # open in chrome://tracing
    print(result.trace.timeline())        # plain-text utilization rows

When tracing is off (the default) the runtime holds ``None`` instead of
a tracer and every instrumentation site reduces to one ``is not None``
check — see ``benchmarks/test_txt2_trace_overhead.py``.
"""

from repro.obs.events import (
    EVENT_KINDS,
    DuplicateFrameDropped,
    FlowBlock,
    FlowUnblock,
    FrameBuffered,
    GhostPrune,
    MachineCrashed,
    MachineResumed,
    MachineStalled,
    MessageDelayed,
    MessageDeliver,
    MessageDropped,
    MessageDuplicated,
    MessageSend,
    QueryAbortedEvent,
    QuotaGranted,
    QuotaRequested,
    ResultEmitted,
    Retransmit,
    StageCompleted,
    TickSample,
    TraceEvent,
    WorkerSpan,
)
from repro.obs.export import chrome_trace, render_timeline
from repro.obs.profile import TraceProfile
from repro.obs.tracer import Tracer

__all__ = [
    "Tracer",
    "TraceProfile",
    "TraceEvent",
    "EVENT_KINDS",
    "TickSample",
    "WorkerSpan",
    "MessageSend",
    "MessageDeliver",
    "FlowBlock",
    "FlowUnblock",
    "QuotaRequested",
    "QuotaGranted",
    "StageCompleted",
    "GhostPrune",
    "ResultEmitted",
    "MessageDropped",
    "MessageDuplicated",
    "MessageDelayed",
    "MachineStalled",
    "MachineResumed",
    "MachineCrashed",
    "Retransmit",
    "DuplicateFrameDropped",
    "FrameBuffered",
    "QueryAbortedEvent",
    "chrome_trace",
    "render_timeline",
]
