"""Trace exporters: Chrome-trace JSON and a plain-text timeline.

``chrome_trace`` produces the Trace Event Format consumed by
``chrome://tracing`` and Perfetto: one *process* per simulated machine,
one *thread* per worker, complete ("X") events for worker spans, instant
("i") events for flow-control and protocol activity, and counter ("C")
tracks for the per-machine memory gauges.  Simulated ticks are mapped to
microseconds (1 tick = 1 us) with sub-tick placement of worker spans by
their micro-op offset within the tick.
"""

_INSTANT_KINDS = {
    "flow_block": "flow block",
    "flow_unblock": "flow unblock",
    "quota_request": "quota request",
    "quota_grant": "quota grant",
    "stage_completed": "COMPLETED",
    "ghost_prune": "ghost prune",
    "result": "result",
}


def _span_bounds(event, ops_per_tick):
    """(ts, dur) of a worker span in microsecond ticks, sub-tick placed."""
    scale = 1.0 / max(1, ops_per_tick)
    ts = event.tick + event.offset * scale
    dur = max(event.ops * scale, 0.01)
    return ts, dur


def chrome_trace(tracer):
    """Build the Trace Event Format JSON object for *tracer*."""
    meta = tracer.meta
    ops_per_tick = meta.get("ops_per_tick", 1)
    events = []

    machines = meta.get("num_machines", 0)
    workers = meta.get("workers_per_machine", 0)
    for machine in range(machines):
        events.append({
            "ph": "M", "name": "process_name", "pid": machine, "tid": 0,
            "args": {"name": "machine %d" % machine},
        })
        for worker in range(workers):
            events.append({
                "ph": "M", "name": "thread_name", "pid": machine,
                "tid": worker, "args": {"name": "worker %d" % worker},
            })

    for event in tracer.events:
        kind = event.kind
        if kind == "worker_span":
            ts, dur = _span_bounds(event, ops_per_tick)
            name = (
                "idle-flush" if event.stage < 0
                else "stage %d" % event.stage
            )
            events.append({
                "ph": "X", "name": name, "cat": "worker",
                "pid": event.machine, "tid": event.worker,
                "ts": round(ts, 3), "dur": round(dur, 3),
                "args": {"ops": event.ops},
            })
        elif kind == "tick":
            for machine, sample in enumerate(event.machines):
                ops, buffered, frames, inflight = sample
                events.append({
                    "ph": "C", "name": "memory", "cat": "gauges",
                    "pid": machine, "tid": 0, "ts": event.tick,
                    "args": {
                        "buffered_contexts": buffered,
                        "live_frames": frames,
                        "inflight_window": inflight,
                    },
                })
        elif kind == "message_send":
            events.append({
                "ph": "i", "s": "p",
                "name": "send %s" % event.payload, "cat": "network",
                "pid": event.src, "tid": 0, "ts": event.tick,
                "args": {
                    "dst": event.dst, "stage": event.stage,
                    "size": event.size, "deliver_at": event.deliver_at,
                },
            })
        elif kind == "message_deliver":
            events.append({
                "ph": "i", "s": "p",
                "name": "recv %s" % event.payload, "cat": "network",
                "pid": event.dst, "tid": 0, "ts": event.tick,
                "args": {"src": event.src, "stage": event.stage},
            })
        elif kind in _INSTANT_KINDS:
            args = {}
            for attr in ("stage", "dest", "peer", "amount"):
                if hasattr(event, attr):
                    args[attr] = getattr(event, attr)
            events.append({
                "ph": "i", "s": "p", "name": _INSTANT_KINDS[kind],
                "cat": "protocol", "pid": getattr(event, "machine", 0),
                "tid": 0, "ts": event.tick, "args": args,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "engine": "PGX.D/Async reproduction",
            "ticks": meta.get("ticks"),
            "num_machines": machines,
            "num_stages": meta.get("num_stages"),
            "dropped_events": tracer.dropped,
        },
    }


#: Five utilization levels, idle to saturated.
_LEVELS = " .:*#"


def render_timeline(tracer, width=72):
    """Plain-text timeline: one utilization row per machine.

    Ticks are bucketed into *width* columns; each cell shows the average
    worker utilization of that machine over the bucket (`` ``=idle ..
    ``#``=saturated), with ``!`` overlaid on buckets where that machine
    had sends refused by flow control.
    """
    profile_ticks = {}
    blocks = {}
    last_tick = 0
    capacity = max(
        1,
        tracer.meta.get("workers_per_machine", 1)
        * tracer.meta.get("ops_per_tick", 1),
    )
    for event in tracer.events:
        last_tick = max(last_tick, event.tick)
        if event.kind == "tick":
            for machine, sample in enumerate(event.machines):
                profile_ticks.setdefault(machine, []).append(
                    (event.tick, sample[0])
                )
        elif event.kind == "flow_block":
            blocks.setdefault(event.machine, set()).add(event.tick)

    if not profile_ticks:
        return "(empty trace)"
    span = max(1, last_tick + 1)
    width = max(8, min(width, span))
    per_bucket = span / width

    lines = [
        "timeline: %d ticks across %d machines "
        "(%s = worker utilization, ! = flow-control block)"
        % (span, len(profile_ticks), _LEVELS.strip() or ".:*#"),
    ]
    for machine in sorted(profile_ticks):
        busy = [0.0] * width
        count = [0] * width
        for tick, ops in profile_ticks[machine]:
            bucket = min(width - 1, int(tick / per_bucket))
            busy[bucket] += min(1.0, ops / capacity)
            count[bucket] += 1
        cells = []
        blocked = blocks.get(machine, ())
        blocked_buckets = {
            min(width - 1, int(tick / per_bucket)) for tick in blocked
        }
        for bucket in range(width):
            if bucket in blocked_buckets:
                cells.append("!")
                continue
            if count[bucket] == 0:
                cells.append(" ")
                continue
            fraction = busy[bucket] / count[bucket]
            cells.append(_LEVELS[
                min(len(_LEVELS) - 1, int(fraction * (len(_LEVELS) - 1) + 0.5))
            ])
        lines.append("m%-3d |%s|" % (machine, "".join(cells)))
    lines.append(
        "      0%s%d ticks" % (" " * max(1, width - len(str(span)) - 1), span)
    )
    return "\n".join(lines)
