"""Live telemetry: a label-aware metrics registry (tentpole of PR 3).

Where ``repro.obs.tracer`` records *what happened* as an event log for
post-hoc analysis, this module keeps *current state* as metrics — the
shape every production graph-query service exposes (Prometheus-style
counters, gauges, and fixed-bucket histograms).  The registry is the
substrate three consumers share:

* the :class:`~repro.obs.sampler.TimeSeriesSampler` syncs the runtime's
  :class:`~repro.cluster.metrics.MachineMetrics` counters and flow-
  control gauges into it every simulator tick;
* the runtime observes latency histograms directly at two hot points
  (network delivery, inbox wait) — each site guarded by one
  ``is not None`` check, mirroring the tracer's zero-cost-off design;
* the exporters (``repro.obs.exporters``) serialize a registry snapshot
  as Prometheus text exposition, JSONL, or CSV.

Naming follows Prometheus conventions: ``repro_*`` prefix, ``_total``
suffix on counters, ``_ticks`` unit suffixes (the simulator clock is
the only clock the runtime has).
"""

import re
from bisect import bisect_left

from repro.errors import TelemetryError

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _check_name(name):
    if not _NAME_RE.match(name):
        raise TelemetryError("invalid metric name: %r" % name)
    return name


def _check_labelnames(labelnames):
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise TelemetryError("invalid label name: %r" % label)
    if len(set(names)) != len(names):
        raise TelemetryError("duplicate label names: %r" % (names,))
    return names


class Counter:
    """A monotonically increasing count (one labelset of a family)."""

    __slots__ = ("value",)
    type_name = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise TelemetryError("counters only go up (inc by %r)" % amount)
        self.value += amount

    def get(self):
        return self.value

    def _merge(self, other):
        self.value += other.value


class Gauge:
    """A value that can go up and down (one labelset of a family)."""

    __slots__ = ("value",)
    type_name = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def get(self):
        return self.value

    def _merge(self, other):
        # Sequential composition (union expansions): the later run's
        # final gauge value is the current one.
        self.value = other.value


class Histogram:
    """Fixed-bound bucketed distribution (one labelset of a family).

    ``bounds`` are the inclusive upper edges, Prometheus ``le``
    semantics: an observation lands in the first bucket whose bound is
    ``>= value``; values above the last bound land in the implicit
    ``+Inf`` overflow bucket.  ``counts`` holds *non-cumulative* bucket
    counts (``len(bounds) + 1`` entries); exporters cumulate.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    type_name = "histogram"

    def __init__(self, bounds):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value):
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def get(self):
        return self.count

    def cumulative(self):
        """``(bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out, running = [], 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def _merge(self, other):
        if other.bounds != self.bounds:
            raise TelemetryError(
                "cannot merge histograms with different bounds"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count


class MetricFamily:
    """One named metric and its per-labelset children.

    A family declared without label names is its own single child:
    ``registry.counter("x").inc()`` works directly.  With label names,
    use :meth:`labels` to reach a child; children are created on first
    use and remembered (so exports show every labelset ever touched).
    """

    __slots__ = ("name", "help", "labelnames", "_make_child", "_children",
                 "_bounds")

    def __init__(self, name, help_text, labelnames, make_child, bounds=None):
        self.name = _check_name(name)
        self.help = help_text
        self.labelnames = _check_labelnames(labelnames)
        self._make_child = make_child
        self._children = {}
        self._bounds = bounds
        if not self.labelnames:
            self._children[()] = make_child()

    @property
    def type_name(self):
        return self._make_child().type_name

    def labels(self, *values, **kwargs):
        """The child for one labelset, e.g. ``fam.labels(machine=0)``."""
        if kwargs:
            if values:
                raise TelemetryError(
                    "pass label values positionally or by name, not both"
                )
            try:
                values = tuple(kwargs.pop(name) for name in self.labelnames)
            except KeyError as missing:
                raise TelemetryError(
                    "%s is missing label %s" % (self.name, missing)
                )
            if kwargs:
                raise TelemetryError(
                    "%s got unexpected labels %r"
                    % (self.name, sorted(kwargs))
                )
        else:
            values = tuple(values)
        if len(values) != len(self.labelnames):
            raise TelemetryError(
                "%s expects labels %r, got %d values"
                % (self.name, self.labelnames, len(values))
            )
        values = tuple(str(value) for value in values)
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make_child()
        return child

    def _sole_child(self):
        if self.labelnames:
            raise TelemetryError(
                "%s has labels %r; use .labels(...)"
                % (self.name, self.labelnames)
            )
        return self._children[()]

    # Label-less families proxy their single child.
    def inc(self, amount=1):
        self._sole_child().inc(amount)

    def dec(self, amount=1):
        self._sole_child().dec(amount)

    def set(self, value):
        self._sole_child().set(value)

    def observe(self, value):
        self._sole_child().observe(value)

    def get(self):
        return self._sole_child().get()

    def children(self):
        """``(labelvalues_tuple, child)`` pairs, sorted for determinism."""
        return sorted(self._children.items())

    def signature(self):
        return (self.type_name, self.labelnames, self._bounds)


class MetricsRegistry:
    """All metric families of one run, keyed by name.

    Declaring the same name twice with an identical signature returns
    the existing family (so instrumentation sites need no coordination);
    a conflicting redeclaration raises :class:`TelemetryError`.
    """

    def __init__(self):
        self._families = {}

    def __iter__(self):
        return iter(sorted(self._families.values(),
                           key=lambda family: family.name))

    def __len__(self):
        return len(self._families)

    def get(self, name):
        return self._families.get(name)

    def _declare(self, name, help_text, labelnames, make_child, bounds=None):
        family = MetricFamily(name, help_text, labelnames, make_child,
                              bounds=bounds)
        existing = self._families.get(name)
        if existing is not None:
            if existing.signature() != family.signature():
                raise TelemetryError(
                    "metric %s re-declared with a different "
                    "type/labels/buckets" % name
                )
            return existing
        self._families[name] = family
        return family

    def counter(self, name, help_text="", labels=()):
        return self._declare(name, help_text, labels, Counter)

    def gauge(self, name, help_text="", labels=()):
        return self._declare(name, help_text, labels, Gauge)

    def histogram(self, name, help_text="", buckets=(), labels=()):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise TelemetryError(
                "histogram %s needs at least one bucket bound" % name
            )
        return self._declare(
            name, help_text, labels, lambda: Histogram(bounds), bounds
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def samples(self):
        """Flatten to ``(name, labels_dict, value)`` rows, exporter food.

        Histograms expand Prometheus-style into ``<name>_bucket`` rows
        (cumulative, with an ``le`` label), ``<name>_sum``, and
        ``<name>_count``.
        """
        rows = []
        for family in self:
            for labelvalues, child in family.children():
                labels = dict(zip(family.labelnames, labelvalues))
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = (
                            "+Inf" if bound == float("inf") else _fmt(bound)
                        )
                        rows.append((family.name + "_bucket",
                                     bucket_labels, cumulative))
                    rows.append((family.name + "_sum", labels, child.sum))
                    rows.append((family.name + "_count", labels, child.count))
                else:
                    rows.append((family.name, labels, child.value))
        return rows

    def snapshot(self):
        """Nested plain-data view: name -> labelvalues -> value/dict."""
        out = {}
        for family in self:
            entry = {}
            for labelvalues, child in family.children():
                if isinstance(child, Histogram):
                    entry[labelvalues] = {
                        "buckets": list(child.counts),
                        "bounds": list(child.bounds),
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    entry[labelvalues] = child.value
            out[family.name] = entry
        return out

    def merge(self, other):
        """Fold *other* into this registry (sequential composition).

        Counters and histogram buckets add; gauges take the later run's
        value.  Used when union expansions each carried their own
        registry.  Families only present in *other* are re-declared here.
        """
        for family in other:
            mine = self._declare(
                family.name, family.help, family.labelnames,
                family._make_child, family._bounds,
            )
            for labelvalues, child in family.children():
                target = mine._children.get(labelvalues)
                if target is None:
                    target = mine._children[labelvalues] = mine._make_child()
                target._merge(child)
        return self


def _fmt(value):
    """Compact number formatting shared by exporters (1.0 -> "1")."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# ----------------------------------------------------------------------
# The runtime's standard instrument set
# ----------------------------------------------------------------------
#: Message latency bucket bounds, in ticks (network latency defaults to
#: 8 ticks; retransmission timeouts stretch the tail).
LATENCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: Inbox wait (delivery -> consumption) bucket bounds, in ticks.
WAIT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
#: Inbox depth bucket bounds, in queued bulk messages.
DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class Telemetry:
    """Everything live telemetry for one query run: registry + sampler.

    Created by the engine when ``ClusterConfig(telemetry=True)`` or
    ``PlannerOptions(telemetry=True)`` is set, threaded through the
    simulator and machines the same way the tracer is, and returned as
    ``QueryResult.telemetry``.  Off (the default) the runtime holds
    ``None`` and pays one pointer comparison per instrumentation site.
    """

    def __init__(self, interval=1):
        from repro.obs.sampler import TimeSeriesSampler

        self.registry = MetricsRegistry()
        self.sampler = TimeSeriesSampler(self, interval=interval)
        self.meta = {}
        registry = self.registry
        # Hot-path histograms, observed directly by the runtime.
        self.message_latency = registry.histogram(
            "repro_message_latency_ticks",
            "network transit time per delivered message",
            buckets=LATENCY_BUCKETS,
        )
        self.inbox_wait = registry.histogram(
            "repro_inbox_wait_ticks",
            "hop service time: work-message delivery to consumption",
            buckets=WAIT_BUCKETS,
        )
        self.retransmit_attempts = registry.histogram(
            "repro_retransmit_attempt",
            "attempt number of each reliability-layer retransmission",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16),
        )
        self.kernel_batch_ops = registry.histogram(
            "repro_kernel_batch_ops",
            "micro-ops charged per bulk-kernel computation slice",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        # Sampled per tick by the TimeSeriesSampler.
        self.inbox_depth = registry.histogram(
            "repro_inbox_depth",
            "queued work messages per machine, sampled per tick",
            buckets=DEPTH_BUCKETS, labels=("machine",),
        )
        self.buffered_gauge = registry.gauge(
            "repro_buffered_contexts",
            "buffered contexts (inbox + parked + outgoing) per machine",
            labels=("machine",),
        )
        self.buffered_peak_gauge = registry.gauge(
            "repro_buffered_contexts_peak",
            "high-water mark of buffered contexts per machine",
            labels=("machine",),
        )
        self.budget_gauge = registry.gauge(
            "repro_buffered_contexts_budget",
            "configured receiver-side context budget "
            "(stages * senders * bulk * (window + 1))",
        )
        self.inflight_gauge = registry.gauge(
            "repro_flow_inflight_window",
            "total unacknowledged flow-control window occupancy",
            labels=("machine",),
        )
        self.frames_gauge = registry.gauge(
            "repro_live_frames", "live traversal frames per machine",
            labels=("machine",),
        )
        self.stages_complete_gauge = registry.gauge(
            "repro_stages_complete",
            "stages this machine has declared COMPLETED",
            labels=("machine",),
        )
        # Plan-vs-actual drift gauges, set by feedback.publish_drift when
        # a stage profile was collected; declared up-front so the export
        # has a stable family set either way.
        self.plan_estimated_rows = registry.gauge(
            "repro_plan_estimated_rows",
            "cost-model estimated rows after each logical operator",
            labels=("operator",),
        )
        self.plan_actual_rows = registry.gauge(
            "repro_plan_actual_rows",
            "measured rows surviving each logical operator",
            labels=("operator",),
        )
        self.plan_q_error = registry.gauge(
            "repro_plan_q_error",
            "per-operator q-error max(est/actual, actual/est)",
            labels=("operator",),
        )
        self.plan_q_error_max = registry.gauge(
            "repro_plan_q_error_max",
            "worst per-operator cardinality q-error of the run",
        )
        self.stage_skew_ratio = registry.gauge(
            "repro_stage_skew_ratio",
            "per-stage machine imbalance: max/mean of stage visits",
            labels=("stage",),
        )
        # Counters mirrored from MachineMetrics by the sampler (deltas,
        # so they stay correct across union-expansion merges).
        self.mirrored = {
            name: registry.counter("repro_%s_total" % name, help_text,
                                   labels=("machine",))
            for name, help_text in (
                ("ops", "worker micro-operations executed"),
                ("work_messages_sent", "bulk work messages handed to "
                                       "the network"),
                ("contexts_sent", "contexts shipped remotely"),
                ("control_messages_sent", "acks/COMPLETED/quota traffic"),
                ("results_emitted", "final matches collected"),
                ("flow_control_blocks", "sends refused by flow control"),
                ("quota_requests", "dynamic-memory quota requests sent"),
                ("quota_granted", "window slots received from peers"),
                ("ghost_prunes", "remote hops pruned at ghost vertices"),
                ("retransmits", "reliability-layer frame retransmissions"),
                ("idle_ticks", "worker polls that found no work"),
            )
        }

    def extend(self, other, tick_offset=0):
        """Fold a later run's telemetry in (union expansions)."""
        self.registry.merge(other.registry)
        self.sampler.extend(other.sampler, tick_offset=tick_offset)
        for key, value in other.meta.items():
            if key == "ticks":
                self.meta[key] = max(
                    self.meta.get(key, 0), tick_offset + value
                )
            else:
                self.meta.setdefault(key, value)
        return self

    def prometheus(self):
        """The registry as Prometheus text exposition format."""
        from repro.obs.exporters import prometheus_text

        return prometheus_text(self.registry)

    def summary(self):
        """One-paragraph overview, for the CLI and quick debugging."""
        parts = []
        ticks = self.meta.get("ticks")
        if ticks is not None:
            parts.append("ticks=%d" % ticks)
        parts.append("samples=%d" % self.sampler.num_samples)
        latency = self.message_latency._sole_child()
        if latency.count:
            parts.append(
                "msg_latency_avg=%.1f ticks" % (latency.sum / latency.count)
            )
        wait = self.inbox_wait._sole_child()
        if wait.count:
            parts.append(
                "inbox_wait_avg=%.1f ticks" % (wait.sum / wait.count)
            )
        budget = self.budget_gauge.get()
        if budget:
            peak = max(
                (child.get() for _v, child in
                 self.buffered_peak_gauge.children()),
                default=0,
            )
            parts.append("peak_buffered=%d/%d budget" % (peak, budget))
        return "telemetry: " + " ".join(parts)
