"""The trace collector installed into a query execution.

A :class:`Tracer` is an append-only event bus.  The runtime holds either
a tracer or ``None``; every instrumentation site is guarded by a single
``if trace is not None`` check, so the disabled path costs one pointer
comparison and allocates nothing — the property the TXT2 benchmark
(``benchmarks/test_txt2_trace_overhead.py``) keeps honest.

The tracer doubles as the user-facing trace: ``QueryResult.trace`` *is*
the tracer that recorded the run, carrying the event list, run metadata,
and the analysis/export entry points (:meth:`profile`,
:meth:`to_chrome_trace`, :meth:`timeline`).
"""

from collections import Counter


class Tracer:
    """Collects typed runtime events for one query execution."""

    def __init__(self, max_events=1_000_000):
        #: Recorded events, in emission order (ticks are nondecreasing).
        self.events = []
        #: Events discarded after hitting ``max_events``.
        self.dropped = 0
        self.max_events = max_events
        #: Run metadata filled in by the engine: ``num_machines``,
        #: ``num_stages``, ``workers_per_machine``, ``ops_per_tick``,
        #: and (after the run) ``ticks``.
        self.meta = {}

    # ------------------------------------------------------------------
    # Collection (the runtime-facing half)
    # ------------------------------------------------------------------
    def emit(self, event):
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    # ------------------------------------------------------------------
    # Inspection (the user-facing half)
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "Tracer(events=%d, kinds=%d, dropped=%d)" % (
            len(self.events), len(self.kinds()), self.dropped,
        )

    def kinds(self):
        """The set of distinct event kinds recorded."""
        return {event.kind for event in self.events}

    def counts(self):
        """``Counter`` of events per kind."""
        return Counter(event.kind for event in self.events)

    def events_of(self, kind):
        """All events of one *kind*, in order."""
        return [event for event in self.events if event.kind == kind]

    def profile(self):
        """Fold the event stream into a :class:`TraceProfile`."""
        from repro.obs.profile import TraceProfile

        return TraceProfile(self)

    def to_chrome_trace(self):
        """The run as a ``chrome://tracing`` / Perfetto JSON object."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def to_chrome_json(self, path=None, indent=None):
        """Chrome-trace JSON text; also written to *path* when given."""
        import json

        text = json.dumps(self.to_chrome_trace(), indent=indent)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def timeline(self, width=72):
        """Plain-text per-machine utilization timeline."""
        from repro.obs.export import render_timeline

        return render_timeline(self, width=width)

    def summary(self):
        """One paragraph of event counts, for CLI/debug output."""
        counts = self.counts()
        parts = [
            "%s=%d" % (kind, counts[kind]) for kind in sorted(counts)
        ]
        line = "trace: %d events (%s)" % (len(self.events), ", ".join(parts))
        if self.dropped:
            line += " [+%d dropped]" % self.dropped
        return line

    # ------------------------------------------------------------------
    # Composition (union queries run expansions back to back)
    # ------------------------------------------------------------------
    def extend(self, other, tick_offset=0):
        """Append *other*'s events, shifting their ticks by *tick_offset*.

        Used by ``execute_union``: each expansion records its own trace
        starting at tick 0; offsetting by the accumulated tick count
        lays the expansions out end to end on one timeline.
        """
        for event in other.events:
            if len(self.events) >= self.max_events:
                self.dropped += len(other.events) - other.events.index(event)
                break
            event.tick += tick_offset
            self.events.append(event)
        self.dropped += other.dropped
        for key, value in other.meta.items():
            if key == "ticks":
                self.meta[key] = max(
                    self.meta.get(key, 0), tick_offset + value
                )
            elif key in ("num_machines", "num_stages"):
                self.meta[key] = max(self.meta.get(key, 0), value)
            else:
                self.meta.setdefault(key, value)
        return self
