"""Time-series profile folded out of a raw trace.

The tracer records *events*; this module turns them into the per-stage /
per-machine series the paper's claims are judged with:

* **worker utilization** per machine per tick (is a machine idle because
  of flow control, skew, or lack of work?);
* **buffered contexts** and **in-flight window occupancy** per machine
  per tick (the §3.3 bounded-memory claim, as a curve instead of one
  high-water mark);
* **per-stage stall accounting** — distinct ticks on which a stage's
  sends were refused, plus quota-borrowing traffic (§3.3 dynamic memory
  management);
* **time to first result** and per-stage completion ticks (§3.4
  incremental termination).
"""


class TraceProfile:
    """Aggregated view of one query's trace."""

    def __init__(self, tracer):
        self.meta = dict(tracer.meta)
        #: Events the tracer discarded at its ring limit — every series
        #: below under-counts when this is nonzero.
        self.dropped = tracer.dropped
        self.max_events = tracer.max_events
        num_machines = self.meta.get("num_machines", 0)
        num_stages = self.meta.get("num_stages", 0)

        #: machine -> {"ticks": [...], "ops": [...], "buffered": [...],
        #: "frames": [...], "inflight": [...]} sampled per simulator tick.
        self.machine_series = {
            machine: {"ticks": [], "ops": [], "buffered": [],
                      "frames": [], "inflight": []}
            for machine in range(num_machines)
        }
        #: stage -> distinct ticks with at least one refused send.
        self.stage_blocked_ticks = {}
        #: stage -> {"requests": n, "grants": n, "granted": total_amount}.
        self.stage_quota = {}
        #: stage -> tick of the first COMPLETED declaration, and the tick
        #: the stage became complete on every machine.
        self.stage_first_completed = {}
        self.stage_all_completed = {}
        #: Tick of the first emitted result row (None when no results).
        self.first_result_tick = None
        #: stage -> contexts shipped into it via WorkMessages (send side).
        self.stage_work_messages = {}
        self.ghost_prunes = 0

        completed_per_stage = {}
        blocked = {}
        for event in tracer.events:
            kind = event.kind
            if kind == "tick":
                for machine, sample in enumerate(event.machines):
                    series = self.machine_series.setdefault(
                        machine,
                        {"ticks": [], "ops": [], "buffered": [],
                         "frames": [], "inflight": []},
                    )
                    ops, buffered, frames, inflight = sample
                    series["ticks"].append(event.tick)
                    series["ops"].append(ops)
                    series["buffered"].append(buffered)
                    series["frames"].append(frames)
                    series["inflight"].append(inflight)
            elif kind == "flow_block":
                blocked.setdefault(event.stage, set()).add(event.tick)
            elif kind == "quota_request":
                entry = self.stage_quota.setdefault(
                    event.stage, {"requests": 0, "grants": 0, "granted": 0}
                )
                entry["requests"] += 1
            elif kind == "quota_grant":
                entry = self.stage_quota.setdefault(
                    event.stage, {"requests": 0, "grants": 0, "granted": 0}
                )
                entry["grants"] += 1
                entry["granted"] += event.amount
            elif kind == "stage_completed":
                self.stage_first_completed.setdefault(event.stage, event.tick)
                done = completed_per_stage.setdefault(event.stage, set())
                done.add(event.machine)
                if num_machines and len(done) == num_machines:
                    self.stage_all_completed.setdefault(
                        event.stage, event.tick
                    )
            elif kind == "result":
                if self.first_result_tick is None:
                    self.first_result_tick = event.tick
            elif kind == "message_send":
                if event.payload == "WorkMessage":
                    self.stage_work_messages[event.stage] = (
                        self.stage_work_messages.get(event.stage, 0) + 1
                    )
            elif kind == "ghost_prune":
                self.ghost_prunes += 1

        self.stage_blocked_ticks = {
            stage: len(ticks) for stage, ticks in blocked.items()
        }
        # A single-machine run broadcasts no COMPLETED messages but is
        # trivially globally complete once declared locally.
        if num_machines == 1:
            for stage, tick in self.stage_first_completed.items():
                self.stage_all_completed.setdefault(stage, tick)
        self.num_stages = num_stages

    # ------------------------------------------------------------------
    def worker_utilization(self, machine):
        """Average busy fraction of *machine*'s workers over the run."""
        series = self.machine_series.get(machine)
        if not series or not series["ticks"]:
            return 0.0
        capacity = (
            self.meta.get("workers_per_machine", 1)
            * self.meta.get("ops_per_tick", 1)
        )
        if capacity <= 0:
            return 0.0
        busy = sum(min(ops, capacity) for ops in series["ops"])
        return busy / (capacity * len(series["ticks"]))

    def peak_buffered(self, machine):
        series = self.machine_series.get(machine)
        if not series or not series["buffered"]:
            return 0
        return max(series["buffered"])

    def stage_stats(self, stage):
        """Per-stage summary dict used by EXPLAIN ANALYZE and the CLI."""
        quota = self.stage_quota.get(
            stage, {"requests": 0, "grants": 0, "granted": 0}
        )
        return {
            "blocked_ticks": self.stage_blocked_ticks.get(stage, 0),
            "quota_requests": quota["requests"],
            "quota_granted": quota["granted"],
            "work_messages": self.stage_work_messages.get(stage, 0),
            "completed_at": self.stage_all_completed.get(stage),
        }

    def summary(self):
        """Multi-line human summary of the run's dynamics."""
        lines = []
        if self.dropped:
            lines.append(
                "WARNING: trace truncated — %d events dropped at "
                "max_events=%d; every figure below under-counts"
                % (self.dropped, self.max_events)
            )
        ticks = self.meta.get("ticks")
        if ticks is not None:
            lines.append("duration: %d ticks" % ticks)
        if self.first_result_tick is not None:
            lines.append(
                "time to first result: tick %d" % self.first_result_tick
            )
        for machine in sorted(self.machine_series):
            lines.append(
                "machine %d: utilization=%.1f%% peak_buffered=%d"
                % (
                    machine,
                    100.0 * self.worker_utilization(machine),
                    self.peak_buffered(machine),
                )
            )
        for stage in range(self.num_stages):
            stats = self.stage_stats(stage)
            completed = stats["completed_at"]
            lines.append(
                "stage %d: blocked_ticks=%d quota_req=%d quota_granted=%d "
                "msgs=%d completed_at=%s"
                % (
                    stage,
                    stats["blocked_ticks"],
                    stats["quota_requests"],
                    stats["quota_granted"],
                    stats["work_messages"],
                    "-" if completed is None else completed,
                )
            )
        return "\n".join(lines)
