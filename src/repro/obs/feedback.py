"""Plan-vs-actual observability: stage profiling, drift, and feedback.

PR 7's cost model prices every candidate plan and records the estimated
rows after each logical operator (``CostEstimate.stage_rows``); nothing
measured what actually happened.  This module closes that loop in three
layers:

* :class:`StageProfiler` — per-machine *actual* stage cardinalities
  (contexts entering each stage, neighbor candidates scanned, vertex-
  function passes, continuations emitted), collected by both execution
  paths behind the usual ``is not None`` guards (RPR002): the runtime
  holds either a per-machine view or ``None``, so a disabled profiler
  costs one pointer comparison per site and the differential oracle
  (kernels on vs off) covers the profile bit-for-bit.
* :class:`ExecutionProfile` — the join of estimates against actuals:
  per-operator q-error, per-machine skew/imbalance ratios, and a
  straggler summary.  ``--explain-analyze`` renders it, and
  :func:`publish_drift` lands the drift gauges in the telemetry
  registry (and thus the Prometheus export).
* :class:`FeedbackStore` — profiles persisted to a deterministic
  on-disk JSON document keyed by query/graph fingerprint;
  :meth:`FeedbackStore.corrections` turns recorded actuals into
  per-operator selectivity correction factors the
  :class:`~repro.plan.cost.CostModel` applies on re-planning
  (``SchedulingPolicy.COST`` only).
"""

import hashlib
import json
import os

#: Cardinality floor for q-error: estimates and actuals below one row
#: are indistinguishable, so both sides are clamped to 1 before the
#: ratio (the standard convention from the cardinality-estimation
#: literature).
Q_ERROR_FLOOR = 1.0

#: Clamp range for feedback correction factors.  A recorded run only
#: observes one plan; wildly large factors would let a single profile
#: dominate re-planning, so corrections saturate at two orders of
#: magnitude either way.
CORRECTION_MIN = 0.01
CORRECTION_MAX = 100.0

#: On-disk feedback document schema; bump on incompatible changes.
FEEDBACK_SCHEMA = "repro-feedback/1"


def q_error(estimated, actual):
    """The symmetric estimation-error ratio ``max(est/act, act/est)``.

    Always >= 1; 1.0 means the estimate was exact.  Both sides are
    floored at :data:`Q_ERROR_FLOOR` so sub-row estimates compare
    sanely.
    """
    est = max(float(estimated), Q_ERROR_FLOOR)
    act = max(float(actual), Q_ERROR_FLOOR)
    return max(est / act, act / est)


class MachineStageProfile:
    """One machine's actual per-stage cardinalities for one query run.

    All five lists are indexed by compiled stage index:

    * ``visits`` — contexts entering the stage (vertex-function runs);
    * ``passes`` — contexts surviving the stage's checks;
    * ``remote_in`` — context weight this machine shipped into the
      stage remotely (attributed at the sender);
    * ``scanned`` — neighbor candidates / edge ids the stage's hop
      inspected;
    * ``emitted`` — continuation weight the stage produced (for the
      final stage: result rows).
    """

    __slots__ = ("machine_id", "visits", "passes", "remote_in",
                 "scanned", "emitted")

    COUNTERS = ("visits", "passes", "remote_in", "scanned", "emitted")

    def __init__(self, machine_id, num_stages):
        self.machine_id = machine_id
        self.visits = [0] * num_stages
        self.passes = [0] * num_stages
        self.remote_in = [0] * num_stages
        self.scanned = [0] * num_stages
        self.emitted = [0] * num_stages

    def total_load(self):
        """Work proxy for straggler detection: visits + scans."""
        return sum(self.visits) + sum(self.scanned)

    def to_dict(self):
        out = {"machine": self.machine_id}
        for name in self.COUNTERS:
            out[name] = list(getattr(self, name))
        return out


class StageProfiler:
    """Collects actual stage cardinalities across the cluster.

    Created by :meth:`ExecutionContext.from_options` when
    ``PlannerOptions(profile=True)`` (or ``--explain-analyze``) is set.
    Each :class:`~repro.runtime.machine.QueryMachine` holds its own
    :class:`MachineStageProfile` view (or ``None`` — the zero-cost-off
    default), and :meth:`absorb` copies the runtime's unconditional
    counters (visits/passes/remote_in) in at finalize time.
    """

    def __init__(self):
        self.num_stages = 0
        self.machines = {}

    def machine(self, machine_id, num_stages):
        """The per-machine view, created on first use."""
        if num_stages > self.num_stages:
            self.num_stages = num_stages
        view = self.machines.get(machine_id)
        if view is None:
            view = MachineStageProfile(machine_id, num_stages)
            self.machines[machine_id] = view
        return view

    def absorb(self, machines):
        """Copy each runtime's unconditional stage counters into its
        view (the guarded sites only collect ``scanned``/``emitted``)."""
        for rt in machines:
            view = self.machine(rt.machine_id, rt.plan.num_stages)
            view.visits = list(rt.stage_visits)
            view.passes = list(rt.stage_passes)
            view.remote_in = list(rt.stage_remote_in)

    def views(self):
        """Machine views in deterministic (machine id) order."""
        return [self.machines[mid] for mid in sorted(self.machines)]

    def stage_totals(self):
        """Across-machine sums: one dict per stage."""
        totals = [
            {name: 0 for name in MachineStageProfile.COUNTERS}
            for _ in range(self.num_stages)
        ]
        for view in self.views():
            for name in MachineStageProfile.COUNTERS:
                for index, value in enumerate(getattr(view, name)):
                    totals[index][name] += value
        return totals


class ExecutionProfile:
    """Estimates joined against actuals for one executed query.

    ``operators`` rows join ``CostEstimate.stage_rows`` (when the plan
    was cost-chosen) against the passes of the last compiled stage each
    logical operator lowered to; ``skew`` rows measure per-stage
    imbalance as the max/mean ratio of machine visit counts.
    """

    def __init__(self, stages, per_machine, operators, skew, straggler):
        self.stages = stages
        self.per_machine = per_machine
        self.operators = operators
        self.skew = skew
        self.straggler = straggler

    # -- aggregates ----------------------------------------------------
    def max_q_error(self):
        errors = [row["q_error"] for row in self.operators
                  if row["q_error"] is not None]
        return max(errors) if errors else None

    def geomean_q_error(self):
        errors = [row["q_error"] for row in self.operators
                  if row["q_error"] is not None]
        if not errors:
            return None
        product = 1.0
        for error in errors:
            product *= error
        return product ** (1.0 / len(errors))

    def max_skew(self):
        ratios = [row["ratio"] for row in self.skew]
        return max(ratios) if ratios else None

    # -- rendering -----------------------------------------------------
    def drift_lines(self):
        """The EXPLAIN ANALYZE estimated-vs-actual (q-error) column."""
        if not self.operators:
            return []
        lines = ["estimated vs actual rows (q-error):"]
        for row in self.operators:
            if row["actual"] is None:
                lines.append(
                    "  op[%d] %-44s est~%-10.2f actual=?"
                    % (row["op_index"], _clip(row["op"], 44),
                       row["estimated"])
                )
            else:
                lines.append(
                    "  op[%d] %-44s est~%-10.2f actual=%-8d q=%.2f"
                    % (row["op_index"], _clip(row["op"], 44),
                       row["estimated"], row["actual"], row["q_error"])
                )
        worst = self.max_q_error()
        if worst is not None:
            lines.append("  worst q-error: %.2f" % worst)
        return lines

    def skew_lines(self):
        """The per-machine skew section."""
        if not self.skew:
            return []
        lines = ["per-machine skew (stage visits, max/mean):"]
        for row in self.skew:
            lines.append(
                "  stage %-2d ratio=%-6.2f max=%-8d (machine %d) mean=%.1f"
                % (row["stage"], row["ratio"], row["max"],
                   row["max_machine"], row["mean"])
            )
        if self.straggler is not None:
            lines.append(
                "  straggler: machine %d carried %.1f%% of the load "
                "(%d of %d visit+scan ops)"
                % (self.straggler["machine"], self.straggler["share"]
                   * 100.0, self.straggler["load"],
                   self.straggler["total"])
            )
        return lines

    def summary_lines(self):
        return self.drift_lines() + self.skew_lines()

    def to_dict(self):
        return {
            "stages": self.stages,
            "per_machine": [view.to_dict() for view in self.per_machine],
            "operators": self.operators,
            "skew": self.skew,
            "straggler": self.straggler,
            "max_q_error": self.max_q_error(),
            "geomean_q_error": self.geomean_q_error(),
        }


def _clip(text, width):
    return text if len(text) <= width else text[: width - 3] + "..."


def build_execution_profile(plan, profiler):
    """Join *plan* estimates against *profiler* actuals.

    Works for any plan: without a cost-chosen estimate the operator
    drift rows are empty but stage totals and skew still report.
    Returns None when no profiler was attached (profiling off).
    """
    if profiler is None:
        return None
    stages = profiler.stage_totals()
    per_machine = profiler.views()
    operators = _join_operators(plan, stages)
    skew, straggler = _skew_rows(per_machine, profiler.num_stages)
    return ExecutionProfile(stages, per_machine, operators, skew,
                            straggler)


def _join_operators(plan, stages):
    choice = getattr(plan, "choice", None)
    chosen = getattr(choice, "chosen", None) if choice is not None \
        else None
    if chosen is None:
        return []
    # The distributed lowering threads ``op_index`` onto every visit it
    # emits for a logical operator; the *last* stage of an operator is
    # the one whose passes equal the rows surviving it.
    last_stage_for_op = {}
    for stage in plan.stages:
        op_index = getattr(stage, "op_index", None)
        if op_index is not None:
            last_stage_for_op[op_index] = stage.index
    rows = []
    for op_index, (op_repr, estimated) in enumerate(
        chosen.estimate.stage_rows
    ):
        stage_index = last_stage_for_op.get(op_index)
        actual = (
            stages[stage_index]["passes"]
            if stage_index is not None and stage_index < len(stages)
            else None
        )
        rows.append({
            "op_index": op_index,
            "op": op_repr,
            "stage": stage_index,
            "estimated": estimated,
            "actual": actual,
            "q_error": (
                q_error(estimated, actual) if actual is not None else None
            ),
        })
    return rows


def _skew_rows(per_machine, num_stages):
    if not per_machine:
        return [], None
    skew = []
    for stage in range(num_stages):
        values = [view.visits[stage] if stage < len(view.visits) else 0
                  for view in per_machine]
        total = sum(values)
        if total == 0:
            continue
        mean = total / float(len(values))
        peak = max(values)
        peak_machine = per_machine[values.index(peak)].machine_id
        skew.append({
            "stage": stage,
            "max": peak,
            "max_machine": peak_machine,
            "mean": mean,
            "ratio": peak / mean if mean > 0 else 1.0,
        })
    loads = [(view.total_load(), view.machine_id) for view in per_machine]
    total_load = sum(load for load, _mid in loads)
    straggler = None
    if total_load > 0:
        peak_load, peak_machine = max(loads)
        straggler = {
            "machine": peak_machine,
            "load": peak_load,
            "total": total_load,
            "share": peak_load / float(total_load),
        }
    return skew, straggler


def publish_drift(telemetry, profile):
    """Land the drift/skew gauges in the telemetry registry.

    The families are declared up-front by ``Telemetry.__init__`` so the
    Prometheus export has a stable family set whether or not a profile
    was collected.  No-op when telemetry (or the profile) is off.
    """
    if telemetry is None or profile is None:
        return
    for row in profile.operators:
        operator = str(row["op_index"])
        telemetry.plan_estimated_rows.labels(operator).set(
            row["estimated"]
        )
        if row["actual"] is not None:
            telemetry.plan_actual_rows.labels(operator).set(row["actual"])
            telemetry.plan_q_error.labels(operator).set(row["q_error"])
    worst = profile.max_q_error()
    if worst is not None:
        telemetry.plan_q_error_max.set(worst)
    for row in profile.skew:
        telemetry.stage_skew_ratio.labels(str(row["stage"])).set(
            row["ratio"]
        )


# ----------------------------------------------------------------------
# Fingerprints and the on-disk feedback store
# ----------------------------------------------------------------------
def query_fingerprint(query, graph=None):
    """Deterministic fingerprint of (canonical PGQL text, graph shape).

    The canonical printer (round-trip property-tested) makes textually
    different but identical queries share a fingerprint; the graph's
    vertex/edge counts scope recorded actuals to the data they were
    measured on.
    """
    from repro.pgql.printer import to_pgql

    text = to_pgql(query)
    if graph is not None:
        text = "%s|%d|%d" % (text, graph.num_vertices, graph.num_edges)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class FeedbackStore:
    """Execution profiles persisted for the planner's feedback loop.

    One JSON document (schema :data:`FEEDBACK_SCHEMA`), keyed by
    :func:`query_fingerprint`, each entry recording the chosen order and
    the per-operator estimated/actual row sequence.  Serialization is
    deterministic (sorted keys) so two identical runs write identical
    bytes.
    """

    def __init__(self, path=None):
        self.path = path
        self._entries = {}
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self):
        return len(self._entries)

    def entries(self):
        """``(fingerprint, entry)`` pairs in deterministic order."""
        return sorted(self._entries.items())

    # -- persistence ---------------------------------------------------
    def load(self, path=None):
        path = path or self.path
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get("schema") != FEEDBACK_SCHEMA:
            raise ValueError(
                "%s is not a %s document (schema=%r)"
                % (path, FEEDBACK_SCHEMA, doc.get("schema"))
            )
        self._entries = doc.get("queries", {})
        return self

    def save(self, path=None):
        path = path or self.path
        doc = {"schema": FEEDBACK_SCHEMA, "queries": self._entries}
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def to_dict(self):
        return {"schema": FEEDBACK_SCHEMA, "queries": dict(self.entries())}

    # -- recording and consumption -------------------------------------
    def record(self, query, graph, choice, profile):
        """Record one executed cost-chosen plan's estimate-vs-actual
        operator rows; returns the fingerprint (None without a cost
        choice to join against)."""
        from repro.pgql.printer import to_pgql

        chosen = getattr(choice, "chosen", None) if choice is not None \
            else None
        if chosen is None or not profile.operators:
            return None
        key = query_fingerprint(query, graph)
        self._entries[key] = {
            "pgql": to_pgql(query),
            "order": list(choice.order),
            "use_common_neighbors": bool(choice.use_common_neighbors),
            "operators": [
                {
                    "op": row["op"],
                    "estimated": row["estimated"],
                    "actual": row["actual"],
                }
                for row in profile.operators
                if row["actual"] is not None
            ],
        }
        return key

    def corrections(self, query, graph=None):
        """Per-operator selectivity correction factors for *query*.

        Factors compare the recorded run's per-operator *selectivity*
        (rows out per row in) against the model's, so they telescope:
        re-pricing the recorded plan with corrections applied
        reproduces its actual cardinalities exactly, while operators
        shared by other candidate orders get a per-context correction
        that transfers without compounding.  Keyed by operator repr;
        clamped to [:data:`CORRECTION_MIN`, :data:`CORRECTION_MAX`].
        """
        entry = self._entries.get(query_fingerprint(query, graph))
        if entry is None:
            return {}
        factors = {}
        prev_est = 1.0
        prev_act = 1.0
        for row in entry["operators"]:
            est = max(float(row["estimated"]), Q_ERROR_FLOOR)
            act = max(float(row["actual"]), Q_ERROR_FLOOR)
            est_selectivity = est / max(prev_est, Q_ERROR_FLOOR)
            act_selectivity = act / max(prev_act, Q_ERROR_FLOOR)
            factor = act_selectivity / est_selectivity
            factors[row["op"]] = min(
                CORRECTION_MAX, max(CORRECTION_MIN, factor)
            )
            prev_est, prev_act = est, act
        return factors
