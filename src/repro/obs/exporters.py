"""Telemetry exporters: Prometheus text exposition, JSONL, and CSV.

Two shapes of data come out of ``repro.obs``:

* a **registry snapshot** — the current value of every counter, gauge,
  and histogram (:func:`prometheus_text`, :func:`registry_jsonl`,
  :func:`registry_csv`);
* a **time series** — the per-tick per-machine samples recorded by the
  :class:`~repro.obs.sampler.TimeSeriesSampler` (:func:`series_jsonl`,
  :func:`series_csv`).

Each writer has a matching reader (``parse_*``) so round trips are
testable and ``repro bench --compare`` can consume its own output.
"""

import csv
import io
import json

from repro.obs.sampler import MACHINE_COLUMNS
from repro.obs.telemetry import _fmt


def _escape(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _label_text(labels):
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape(labels[name])) for name in sorted(labels)
    )
    return "{%s}" % inner


# ----------------------------------------------------------------------
# Registry snapshot exporters
# ----------------------------------------------------------------------
def prometheus_text(registry):
    """The registry in Prometheus text exposition format (version 0.0.4).

    Families are emitted in sorted name order, children in sorted
    labelset order, so the output is deterministic (and diffable) for a
    deterministic run.  The exposition ends with the ``# EOF`` marker so
    scrape truncation is detectable.
    """
    lines = []
    samples_by_family = {}
    for name, labels, value in registry.samples():
        base = name
        if registry.get(base) is None:
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) \
                        and registry.get(name[: -len(suffix)]) is not None:
                    base = name[: -len(suffix)]
                    break
        samples_by_family.setdefault(base, []).append(
            (name, labels, value)
        )
    for family in registry:
        if family.help:
            lines.append("# HELP %s %s" % (family.name, _escape(family.help)))
        lines.append("# TYPE %s %s" % (family.name, family.type_name))
        for name, labels, value in samples_by_family.get(family.name, ()):
            lines.append(
                "%s%s %s" % (name, _label_text(labels), _fmt(value))
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _unescape(text):
    """Invert :func:`_escape` in one left-to-right pass.

    Sequential ``str.replace`` calls are wrong in either order: a
    literal backslash-n in the original escapes to ``\\\\n``, which a
    ``\\n``-first pass corrupts into backslash-newline, while a
    ``\\\\``-first pass turns an escaped newline into a literal one.
    """
    out = []
    index, end = 0, len(text)
    while index < end:
        char = text[index]
        if char == "\\" and index + 1 < end:
            nxt = text[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _split_sample(line):
    """Split one sample line into ``(metric, label_text, value_text)``.

    The closing ``}`` is found with a quote-aware scan, so label values
    containing spaces, braces, or escaped quotes parse correctly
    (a bare ``rsplit`` on the last space cannot tell a value apart from
    a label payload ending in one).  *label_text* is None for
    label-less samples.
    """
    brace = line.find("{")
    if brace == -1:
        metric, _, value_text = line.rpartition(" ")
        return metric, None, value_text
    in_quote = escaped = False
    for index in range(brace + 1, len(line)):
        char = line[index]
        if escaped:
            escaped = False
            continue
        if char == "\\":
            escaped = True
            continue
        if char == '"':
            in_quote = not in_quote
            continue
        if char == "}" and not in_quote:
            return (line[:brace], line[brace + 1:index],
                    line[index + 1:].strip())
    raise ValueError("unterminated label block: %r" % line)


def parse_prometheus(text):
    """Parse exposition text back into ``{(name, labels): value}``.

    *labels* is a frozenset of ``(label, value)`` pairs.  Only the
    subset of the format this module emits is supported — enough for
    round-trip tests and snapshot diffing — but that subset round-trips
    exactly, including label values with quotes, backslashes, newlines,
    spaces, and braces.
    """
    out = {}
    # Split on newline only: str.splitlines() also breaks on \x1c-\x1e,
    # \x85, and U+2028/U+2029, which are legal *inside* escaped label
    # values and must not terminate a sample line.
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, label_text, value_text = _split_sample(line)
        labels = {}
        if label_text:
            for part in _split_labels(label_text):
                label, _, raw = part.partition("=")
                labels[label] = _unescape(raw[1:-1])
        value = float(value_text) if value_text != "+Inf" else float("inf")
        if value.is_integer():
            value = int(value)
        out[(metric, frozenset(labels.items()))] = value
    return out


def _split_labels(text):
    """Split ``a="x",b="y"`` respecting escaped quotes."""
    parts, current, in_quote, escaped = [], [], False, False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quote = not in_quote
        if char == "," and not in_quote:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def registry_jsonl(registry):
    """One JSON object per sample row: ``{"name", "labels", "value"}``."""
    lines = [
        json.dumps(
            {"name": name, "labels": labels, "value": value},
            sort_keys=True,
        )
        for name, labels, value in registry.samples()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def registry_csv(registry):
    """CSV with columns ``name, labels, value`` (labels JSON-encoded)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("name", "labels", "value"))
    for name, labels, value in registry.samples():
        writer.writerow((name, json.dumps(labels, sort_keys=True), value))
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Time-series exporters
# ----------------------------------------------------------------------
def series_rows(sampler):
    """Flatten a sampler to dict rows: one per (sample, machine)."""
    rows = []
    for index, tick in enumerate(sampler.ticks):
        for machine_id in sorted(sampler.machines):
            series = sampler.machines[machine_id]
            row = {"tick": tick, "machine": machine_id}
            for column in MACHINE_COLUMNS:
                row[column] = series[column][index]
            rows.append(row)
    return rows


def series_jsonl(sampler):
    """The time series as a JSONL stream (one sample-row per line).

    The first line is a meta header (``{"meta": ...}``) carrying the
    budget and stage count, so a stream is self-describing.
    """
    lines = [json.dumps({"meta": {
        "budget": sampler.budget,
        "num_stages": sampler.num_stages,
        "num_machines": len(sampler.machines),
        "samples": sampler.num_samples,
        "columns": list(MACHINE_COLUMNS),
    }}, sort_keys=True)]
    lines.extend(
        json.dumps(row, sort_keys=True) for row in series_rows(sampler)
    )
    return "\n".join(lines) + "\n"


def parse_series_jsonl(text):
    """Read a :func:`series_jsonl` stream back: ``(meta, rows)``."""
    meta, rows = {}, []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "meta" in record and "tick" not in record:
            meta = record["meta"]
        else:
            rows.append(record)
    return meta, rows


def series_csv(sampler):
    """The time series as CSV: ``tick, machine, <columns...>``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("tick", "machine") + MACHINE_COLUMNS)
    for row in series_rows(sampler):
        writer.writerow(
            [row["tick"], row["machine"]]
            + [row[column] for column in MACHINE_COLUMNS]
        )
    return buffer.getvalue()


def parse_series_csv(text):
    """Read :func:`series_csv` output back into dict rows (typed)."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None:
        return []
    rows = []
    for record in reader:
        row = {}
        for key, value in zip(header, record):
            number = float(value)
            row[key] = int(number) if number.is_integer() else number
        rows.append(row)
    return rows
