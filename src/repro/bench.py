"""Benchmark harness with a regression gate (``repro bench``).

Runs a fixed, seeded workload matrix through the engine and writes one
``BENCH_<tag>.json`` document (schema ``repro-bench/1``) recording, per
workload: wall time, simulated ticks, total micro-ops, result rows, the
peak buffered-context high-water mark against the flow-control budget,
and the per-stage profile.  ``--compare`` diffs two documents over their
common workloads and fails (exit code :data:`EXIT_REGRESSION`) when a
*deterministic* metric regressed by more than the threshold.

Two design rules keep comparisons honest:

* the ``--quick`` matrix is a strict subset of the full matrix — same
  graphs, same queries, same cluster shape — so a quick CI run compares
  validly against a full baseline on the common keys;
* the gate judges only deterministic quantities (``ticks``,
  ``total_ops``) that are pure functions of the seed.  Wall time is
  recorded for humans but never gates, so a loaded CI box cannot flake
  the build.
"""

import json
import time

from repro.cluster.config import ClusterConfig
from repro.plan import PlannerOptions, SchedulingPolicy
from repro.runtime.engine import PgxdAsyncEngine
from repro.workloads.random_graphs import seeded_workload
from repro.workloads.skewed import skewed_workload

#: Document schema identifier; bump on incompatible layout changes.
SCHEMA = "repro-bench/1"

#: Exit code for ``--compare`` detecting a regression (distinct from
#: usage errors and aborted queries).
EXIT_REGRESSION = 4

#: The workload matrix.  ``quick=True`` rows form the CI subset; every
#: row is fully determined by (spec, seed), so two runs of the same
#: matrix at the same seed measure identical simulations.
WORKLOADS = (
    ("random_300x1200_q3e3",
     dict(vertices=300, edges=1200, queries=3, query_edges=3, machines=4,
          quick=True)),
    ("random_600x3000_q3e4",
     dict(vertices=600, edges=3000, queries=3, query_edges=4, machines=4,
          quick=True)),
    ("random_1000x5000_q4e4",
     dict(vertices=1000, edges=5000, queries=4, query_edges=4, machines=8,
          quick=False)),
    # Planner pillar: the skewed music-industry workload, executed under
    # the cost-based policy for the gated metrics with a naive
    # appearance-order rerun recorded alongside (``naive_*`` fields plus
    # ``planner_rows_match``) so CI can assert the planner both beats
    # the textual order and returns bit-identical rows.
    ("skewed_planner_300p_q4",
     dict(kind="planner", persons=300, bands=8, songs=40, fans=900,
          likes=600, machines=4, quick=True)),
)

#: Metrics the regression gate inspects (deterministic under a fixed
#: seed).  ``wall_time_seconds`` is intentionally absent.
GATED_METRICS = ("ticks", "total_ops")


def _blank_record(num_queries):
    return {
        "ticks": 0,
        "total_ops": 0,
        "rows": 0,
        "work_messages": 0,
        "peak_buffered_contexts": 0,
        "budget": 0,
        "wall_time_seconds": 0.0,
        "queries": num_queries,
        "stage_profile": [],
    }


def _merge_result(record, result, senders, config):
    """Fold one query's result into a workload record."""
    metrics = result.metrics
    record["ticks"] += metrics.ticks
    record["total_ops"] += metrics.total_ops
    record["rows"] += len(result.rows)
    record["work_messages"] += metrics.work_messages
    record["peak_buffered_contexts"] = max(
        record["peak_buffered_contexts"], metrics.peak_buffered_contexts
    )
    budget = (
        result.plan.num_stages * senders
        * config.bulk_message_size * (config.flow_control_window + 1)
    )
    record["budget"] = max(record["budget"], budget)
    if result.stage_profile:
        profile = record["stage_profile"]
        while len(profile) < len(result.stage_profile):
            profile.append({"visits": 0, "passes": 0, "remote_in": 0})
        for slot, counters in zip(profile, result.stage_profile):
            for name, value in counters.items():
                slot[name] = slot.get(name, 0) + value


def _finish_record(record, wall):
    record["wall_time_seconds"] = round(wall, 4)
    # Informational like wall time (never gated): simulated micro-ops
    # retired per real second — the number the bulk kernels move.
    record["throughput_ops_per_sec"] = (
        round(record["total_ops"] / wall, 1) if wall > 0 else 0.0
    )


def run_workload(key, spec, seed=0, bulk_kernels=True):
    """Execute one workload row; returns its result record.

    *bulk_kernels* toggles the compiled fast path
    (:mod:`repro.runtime.kernels`); both settings produce identical
    deterministic metrics, so either may be gated against a baseline.
    """
    if spec.get("kind") == "planner":
        return run_planner_workload(key, spec, seed=seed,
                                    bulk_kernels=bulk_kernels)
    config = ClusterConfig(
        num_machines=spec["machines"], seed=seed, bulk_kernels=bulk_kernels
    )
    graph, queries = seeded_workload(
        config,
        num_vertices=spec["vertices"],
        num_edges=spec["edges"],
        num_queries=spec["queries"],
        query_edges=spec["query_edges"],
    )
    engine = PgxdAsyncEngine(graph, config)
    options = PlannerOptions()
    senders = config.num_machines - 1
    record = _blank_record(len(queries))
    started = time.perf_counter()
    for query in queries:
        result = engine.query(query, options)
        _merge_result(record, result, senders, config)
    _finish_record(record, time.perf_counter() - started)
    return record


def run_planner_workload(key, spec, seed=0, bulk_kernels=True):
    """The cost-based-planner pillar: skewed workload, three plan runs.

    The gated metrics (``ticks``, ``total_ops``) measure the cost-based
    runs, now executed with stage profiling on so the record also
    carries the aggregate estimate-error metrics
    (``estimate_q_error_max`` / ``estimate_q_error_geomean``).  The same
    queries are then re-run under the naive appearance order (``naive_*``
    fields, ``planner_rows_match``), and a third time under the cost
    policy with the recorded profiles fed back as selectivity
    corrections (``feedback_*`` fields, ``feedback_rows_match``).  CI
    gates on the deltas: the planner must beat the textual order, and
    the feedback-corrected plans must return bit-identical rows and
    never be worse than the stats-only cost plans.
    """
    from repro.obs.feedback import FeedbackStore

    config = ClusterConfig(
        num_machines=spec["machines"], seed=seed, bulk_kernels=bulk_kernels
    )
    graph, queries = skewed_workload(
        config,
        num_persons=spec["persons"],
        num_bands=spec["bands"],
        num_songs=spec["songs"],
        fan_edges=spec["fans"],
        likes_edges=spec["likes"],
    )
    engine = PgxdAsyncEngine(graph, config)
    cost_options = PlannerOptions(scheduling=SchedulingPolicy.COST,
                                  profile=True)
    naive_options = PlannerOptions()
    senders = config.num_machines - 1
    record = _blank_record(len(queries))
    started = time.perf_counter()
    cost_rows = []
    store = FeedbackStore()
    q_errors = []
    for query in queries:
        result = engine.query(query, cost_options)
        _merge_result(record, result, senders, config)
        cost_rows.append(sorted(result.rows))
        profile = result.execution_profile()
        if profile is not None:
            q_errors.extend(
                row["q_error"] for row in profile.operators
                if row["q_error"] is not None
            )
            store.record(result.plan.query, result.plan.graph,
                         result.plan.choice, profile)
    _finish_record(record, time.perf_counter() - started)
    if q_errors:
        product = 1.0
        for error in q_errors:
            product *= error
        record["estimate_q_error_max"] = round(max(q_errors), 4)
        record["estimate_q_error_geomean"] = round(
            product ** (1.0 / len(q_errors)), 4
        )
    naive = {"ticks": 0, "total_ops": 0, "work_messages": 0}
    rows_match = True
    for query, expected in zip(queries, cost_rows):
        baseline = engine.query(query, naive_options)
        naive["ticks"] += baseline.metrics.ticks
        naive["total_ops"] += baseline.metrics.total_ops
        naive["work_messages"] += baseline.metrics.work_messages
        if sorted(baseline.rows) != expected:
            rows_match = False
    record["naive_ticks"] = naive["ticks"]
    record["naive_total_ops"] = naive["total_ops"]
    record["naive_work_messages"] = naive["work_messages"]
    record["planner_rows_match"] = rows_match
    feedback_options = PlannerOptions(scheduling=SchedulingPolicy.COST,
                                      feedback=store)
    corrected = {"ticks": 0, "total_ops": 0, "work_messages": 0}
    feedback_rows_match = True
    for query, expected in zip(queries, cost_rows):
        rerun = engine.query(query, feedback_options)
        corrected["ticks"] += rerun.metrics.ticks
        corrected["total_ops"] += rerun.metrics.total_ops
        corrected["work_messages"] += rerun.metrics.work_messages
        if sorted(rerun.rows) != expected:
            feedback_rows_match = False
    record["feedback_ticks"] = corrected["ticks"]
    record["feedback_total_ops"] = corrected["total_ops"]
    record["feedback_work_messages"] = corrected["work_messages"]
    record["feedback_rows_match"] = feedback_rows_match
    return record


def run_bench(tag="run", quick=False, seed=0, progress=None,
              bulk_kernels=True):
    """Run the (quick or full) matrix; returns a schema document."""
    workloads = {}
    for key, spec in WORKLOADS:
        if quick and not spec["quick"]:
            continue
        if progress is not None:
            progress("running %s ..." % key)
        workloads[key] = run_workload(
            key, spec, seed=seed, bulk_kernels=bulk_kernels
        )
    total_wall = sum(w["wall_time_seconds"] for w in workloads.values())
    total_ops = sum(w["total_ops"] for w in workloads.values())
    totals = {
        "ticks": sum(w["ticks"] for w in workloads.values()),
        "total_ops": total_ops,
        "rows": sum(w["rows"] for w in workloads.values()),
        "wall_time_seconds": round(total_wall, 4),
        "throughput_ops_per_sec": (
            round(total_ops / total_wall, 1) if total_wall > 0 else 0.0
        ),
    }
    return {
        "schema": SCHEMA,
        "tag": tag,
        "quick": bool(quick),
        "seed": seed,
        "workloads": workloads,
        "totals": totals,
    }


# ----------------------------------------------------------------------
# Schema validation & IO
# ----------------------------------------------------------------------
_REQUIRED_TOP = ("schema", "tag", "quick", "seed", "workloads", "totals")
_REQUIRED_WORKLOAD = (
    "ticks", "total_ops", "rows", "work_messages",
    "peak_buffered_contexts", "budget", "wall_time_seconds", "queries",
    "stage_profile",
)


def validate(doc):
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    for key in _REQUIRED_TOP:
        if key not in doc:
            problems.append("missing top-level key %r" % key)
    if doc.get("schema") != SCHEMA:
        problems.append(
            "schema is %r, expected %r" % (doc.get("schema"), SCHEMA)
        )
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        problems.append("workloads must be a non-empty object")
        return problems
    for key, record in workloads.items():
        if not isinstance(record, dict):
            problems.append("workload %s is not an object" % key)
            continue
        for field in _REQUIRED_WORKLOAD:
            if field not in record:
                problems.append("workload %s missing %r" % (key, field))
            elif field != "stage_profile" and not isinstance(
                record[field], (int, float)
            ):
                problems.append(
                    "workload %s field %r is not numeric" % (key, field)
                )
        if isinstance(record.get("stage_profile"), list):
            for index, slot in enumerate(record["stage_profile"]):
                if not isinstance(slot, dict):
                    problems.append(
                        "workload %s stage_profile[%d] is not an object"
                        % (key, index)
                    )
    return problems


def write_bench(doc, path):
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path):
    with open(path) as handle:
        doc = json.load(handle)
    problems = validate(doc)
    if problems:
        raise ValueError(
            "%s is not a valid %s document: %s"
            % (path, SCHEMA, "; ".join(problems))
        )
    return doc


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def compare(current, baseline, threshold=25.0):
    """Diff two documents; returns ``(regressions, report_lines)``.

    Only workloads present in both documents are compared (a quick run
    against a full baseline covers the quick subset).  A regression is a
    gated metric increasing by more than *threshold* percent.
    """
    regressions = []
    lines = []
    common = sorted(
        set(current["workloads"]) & set(baseline["workloads"])
    )
    if not common:
        return (
            [("<none>", "no common workloads", 0.0)],
            ["no common workloads between current and baseline"],
        )
    for key in common:
        cur = current["workloads"][key]
        base = baseline["workloads"][key]
        for metric in GATED_METRICS:
            before, after = base[metric], cur[metric]
            if before <= 0:
                continue
            change = 100.0 * (after - before) / before
            marker = ""
            if change > threshold:
                marker = "  << REGRESSION (>%s%%)" % _fmt_pct(threshold)
                regressions.append((key, metric, change))
            lines.append(
                "%-28s %-10s %10s -> %-10s %+7.1f%%%s"
                % (key, metric, before, after, change, marker)
            )
        wall_before = base.get("wall_time_seconds", 0.0)
        wall_after = cur.get("wall_time_seconds", 0.0)
        if wall_before > 0 and wall_after > 0:
            speedup = "  x%.2f vs baseline" % (wall_before / wall_after)
        else:
            speedup = ""
        lines.append(
            "%-28s %-10s %10.3f -> %-10.3f (informational)%s"
            % (key, "wall_s", wall_before, wall_after, speedup)
        )
    return regressions, lines


def _fmt_pct(value):
    if float(value).is_integer():
        return str(int(value))
    return "%.1f" % value
