#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md by running every reproduced experiment.

Runs the same harness functions the benchmark suite asserts on (one per
table/figure/ablation — see DESIGN.md §4), captures their printed
tables, and writes the paper-versus-measured record.  Takes several
minutes; the FIG6 sweep dominates.

Usage::

    python scripts/collect_experiments.py [output.md]
"""

import contextlib
import io
import sys
import time

sys.path.insert(0, ".")  # run from the repository root

from benchmarks.conftest import BENCH_BASE  # noqa: E402
from benchmarks.test_abl1_intermediate_state import run_abl1  # noqa: E402
from benchmarks.test_abl2_flow_control import run_abl2  # noqa: E402
from benchmarks.test_abl3_dynamic_memory import run_abl3  # noqa: E402
from benchmarks.test_abl4_async_vs_sync import run_abl4  # noqa: E402
from benchmarks.test_abl5_scheduling import run_abl5  # noqa: E402
from benchmarks.test_abl6_common_neighbors import run_abl6  # noqa: E402
from benchmarks.test_abl7_work_sharing import run_abl7  # noqa: E402
from benchmarks.test_abl8_ghost_nodes import run_abl8  # noqa: E402
from benchmarks.test_abl9_partitioning import run_abl9  # noqa: E402
from benchmarks.test_fig5_bsbm import run_fig5  # noqa: E402
from benchmarks.test_fig6_random import run_fig6  # noqa: E402
from benchmarks.test_txt1_overhead import run_overhead_experiment  # noqa: E402

EXPERIMENTS = [
    (
        "TXT1 — tiny-query overhead (§4.1, in text)",
        "PGX completes a tiny query in 3 ms; PGX.D/Async needs "
        "37 ms on two machines and more than 50 ms on 32 — fixed "
        "distributed overhead that grows with the cluster.",
        "The distributed engine is an order of magnitude "
        "slower than PGX on the tiny query, and its time grows "
        "monotonically with the machine count (bootstrap plus the "
        "all-to-all COMPLETED traffic of the termination protocol).",
        lambda: run_overhead_experiment(),
    ),
    (
        "FIG5 — BSBM query-5 parts relative to single-machine PGX",
        "Figure 5: 10 parts of BSBM query 5 (product similarity), "
        "bars = time relative to PGX on 1-32 machines.  Heavy parts drop "
        "below 1.0 and keep improving; short parts (P8, P9 there) never "
        "beat PGX and worsen with more machines.",
        "The tiny part (P1, a niche product with almost no "
        "similar products) stays above PGX at every distributed size, "
        "while all heavy parts cross below 1.0 by 4-8 machines and "
        "improve further, with diminishing returns at 16-32 — the same "
        "win/loss pattern and crossover region as the paper.",
        None,  # filled in main() (needs the workload)
    ),
    (
        "FIG6 — random 4-edge-pattern queries on a uniform random graph",
        "Figure 6: 10 random queries with four edge patterns each "
        "on 2-32 machines; heavy queries scale very well, fast queries "
        "gain little and pay overhead.",
        "The heavy group (starred) speeds up by an order of "
        "magnitude from 2 to 32 machines; the fast group's speedup is "
        "clearly smaller — same split the paper reports.  (At this "
        "simulation scale even 'fast' queries carry some parallelizable "
        "bootstrap work, so they still improve somewhat rather than "
        "flatten entirely.)",
        None,
    ),
    (
        "ABL1 — intermediate-state explosion (§1/§2 claim)",
        "BFT/join evaluation materializes exponentially many "
        "intermediate results; DFT keeps few active ones.",
        "BFT and join peaks track the (exploding) match "
        "count one-for-one; the async DFT engine's live state stays "
        "bounded by the flow-control budget, orders of magnitude lower.",
        lambda: run_abl1(),
    ),
    (
        "ABL2 — strict flow control bounds memory (§3.3)",
        "Per-(stage, machine) windows give a deterministic "
        "completion guarantee under finite memory.",
        "Identical results at every budget; the peak "
        "buffered-context count shrinks with the window, and the engine "
        "pays with worker suspensions and time instead of failing.",
        lambda: run_abl2(),
    ),
    (
        "ABL3 — dynamic memory management (§3.3)",
        "Redistributing completed stages' windows and borrowing "
        "capacity between machines 'improves the utilization of the "
        "memory used for message buffers'.",
        "Under a tight budget on a skewed partition the "
        "dynamic mode borrows capacity, suspends less often, and "
        "completes no slower than the static windows of Potter et al.",
        lambda: run_abl3(),
    ),
    (
        "ABL4 — asynchrony hides communication latency (§1)",
        "Asynchronous DFT overlaps communication with work from "
        "other stages.",
        "Blocking (RPC-style) traversal degrades linearly "
        "with network latency while the async engine stays nearly flat; "
        "the gap widens to ~30x at high latency.",
        lambda: run_abl4(),
    ),
    (
        "ABL5 — selectivity-based query scheduling (§5 future work)",
        "For the person/song/band query 'we would prefer to "
        "start by matching the vertex band'.",
        "The selectivity scheduler picks band as the root "
        "and cuts total work by >4x and shipped contexts by orders of "
        "magnitude, with identical results.",
        lambda: run_abl5(),
    ),
    (
        "ABL6 — specialized common-neighbor hop engine (§3.2/§5)",
        "Compute common neighbors 'by simply exchanging the "
        "edges of one another' instead of per-neighbor traffic.",
        "With both sources bound, CN_COLLECT/CN_PROBE ships "
        "fewer messages and completes faster than the decomposed "
        "neighbor-hop + edge-check plan, with identical results.",
        lambda: run_abl6(),
    ),
    (
        "ABL7 — intra-machine work sharing (§1/§3.3/§4.1)",
        "The paper names missing 'intra-machine workload balancing' as a "
        "reason its short queries do not scale; describes computations "
        "'submitted internally to facilitate work-sharing'.",
        "Enabling the bounded local work-sharing queues "
        "more than halves the completion time of a single-origin heavy "
        "query and collapses worker idle time, with identical results.",
        lambda: run_abl7(),
    ),
    (
        "ABL8 — ghost nodes (§4, disabled in the paper's experiments)",
        "PGX.D can replicate high-degree vertices ('ghost nodes'); the "
        "paper turns the feature off for its runs.  We implement it and "
        "measure what it buys.",
        "On a power-law graph whose hubs are hop targets, "
        "replicated ghost data lets senders pre-filter remote hops: a "
        "selective target filter prunes most messages to hubs (3x+ "
        "fewer work messages) with identical results.",
        lambda: run_abl8(),
    ),
    (
        "ABL9 — partitioning sensitivity (§4, experimental settings)",
        "The paper partitions vertices randomly 'except that the system "
        "attempts to distribute a similar number of edges to each "
        "machine'.",
        "On a hub-heavy graph, the paper's edge-balanced random "
        "placement balances edges better and completes faster than "
        "contiguous block placement, whose hub-owning machines become "
        "stragglers; results are identical under every partitioner.",
        lambda: run_abl9(),
    ),
]


def capture(func):
    buffer = io.StringIO()
    started = time.time()
    with contextlib.redirect_stdout(buffer):
        func()
    elapsed = time.time() - started
    return buffer.getvalue().strip(), elapsed


def main(output_path="EXPERIMENTS.md"):
    from repro.graph import uniform_random_graph
    from repro.workloads import generate_bsbm, query5_parts, \
        random_query_suite

    bsbm = generate_bsbm(num_products=10_000, seed=7, num_features=250)
    parts = query5_parts(bsbm, num_parts=10, seed=7)
    random_graph = uniform_random_graph(2_500, 12_500, seed=11, num_types=8)
    random_queries = random_query_suite(num_queries=10, num_edges=4, seed=11)

    runners = {
        "FIG5": lambda: run_fig5(bsbm, parts),
        "FIG6": lambda: run_fig6(random_graph, random_queries),
    }

    sections = []
    for title, paper, measured, func in EXPERIMENTS:
        if func is None:
            func = runners[title.split(" ")[0]]
        print("running %s ..." % title.split(" — ")[0], flush=True)
        table, elapsed = capture(func)
        print("  done in %.1fs" % elapsed, flush=True)
        sections.append((title, paper, measured, table, elapsed))

    with open(output_path, "w") as handle:
        handle.write(_render(sections))
    print("wrote", output_path)


def _render(sections):
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure of the paper's evaluation (§4), plus one",
        "ablation per design claim (DESIGN.md §4).  All numbers are",
        "**simulated ticks** from the deterministic cluster model — the",
        "substitution for the authors' 32-machine InfiniBand testbed",
        "(DESIGN.md §2) — so shapes, ratios, and crossovers are the",
        "reproduction targets, not absolute milliseconds.",
        "",
        "Cost model: %s." % ", ".join(
            "%s=%s" % item for item in sorted(BENCH_BASE.items())
        ),
        "",
        "Regenerate this file with:",
        "",
        "```bash",
        "python scripts/collect_experiments.py",
        "```",
        "",
        "The benchmark suite (`pytest benchmarks/ --benchmark-only`)",
        "asserts every shape claim below on each run.",
        "",
    ]
    for title, paper, measured, table, elapsed in sections:
        lines.append("## %s" % title)
        lines.append("")
        lines.append("**Paper.** %s" % paper)
        lines.append("")
        lines.append("**Measured.** %s" % measured)
        lines.append("")
        lines.append("```")
        lines.append(table)
        lines.append("```")
        lines.append("")
        lines.append("_(harness wall time: %.1fs)_" % elapsed)
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    main(*sys.argv[1:])
