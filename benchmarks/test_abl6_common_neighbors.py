"""ABL6 — the specialized common-neighbor hop engine (paper §3.2/§5).

"Patterns like (a)-[]->(c)<-[]-(b) enumerate the common neighbors of a
and b, which is an expensive operation in a distributed setting.  We
intend to optimize the runtime with specialized common neighbor
operators which calculate common neighbors by simply exchanging the
edges of one another."

The specialized operator applies once both sources are bound, so both
plans here bind a and b first (explicit vertex order), then find the
common neighbors c — the decomposed plan hops to every out-neighbor of
a and edge-checks b individually, while CN_COLLECT/CN_PROBE "exchanges
the edges": one candidate-set message per (a, b) pair.  Expected shape:
identical results with far fewer work messages and shipped contexts
and a faster completion for the specialized plan.
"""

from repro.graph import uniform_random_graph
from repro.plan import PlannerOptions
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

QUERY = (
    "SELECT a, b, c WHERE (a)-[]->(c)<-[]-(b), "
    "a.type = 1, b.type = 2, a.value < b.value"
)
ORDER = ["a", "b", "c"]


def run_abl6():
    graph = uniform_random_graph(300, 3_000, seed=31, num_types=4)
    engine = PgxdAsyncEngine(graph, bench_config(4))

    decomposed = engine.query(
        QUERY, PlannerOptions(vertex_order=ORDER)
    )
    specialized = engine.query(
        QUERY,
        PlannerOptions(vertex_order=ORDER, use_common_neighbors=True),
    )
    assert sorted(decomposed.rows) == sorted(specialized.rows)

    rows = [
        ("decomposed hops", decomposed.metrics.ticks,
         decomposed.metrics.work_messages,
         decomposed.metrics.contexts_shipped,
         decomposed.metrics.total_ops),
        ("common-neighbor hop", specialized.metrics.ticks,
         specialized.metrics.work_messages,
         specialized.metrics.contexts_shipped,
         specialized.metrics.total_ops),
    ]
    print_table(
        "ABL6: common neighbors of bound (a, b), decomposed vs "
        "specialized (%d matches)" % len(decomposed.rows),
        ("plan", "ticks", "messages", "contexts", "ops"),
        rows,
    )
    return decomposed, specialized


def test_abl6_common_neighbors(benchmark):
    decomposed, specialized = benchmark.pedantic(
        run_abl6, rounds=1, iterations=1
    )

    # Shape 1: the specialized operator ships fewer messages — one
    # candidate set per (a, b) pair instead of per-neighbor contexts
    # plus inspection round trips.
    assert specialized.metrics.work_messages < \
        decomposed.metrics.work_messages

    # (contexts_shipped is not compared: the metric counts each compact
    # candidate-set entry like a full context, which overstates the CN
    # payloads — the message count and completion time are the fair
    # comparison.)

    # Shape 2: completing faster on this communication-bound pattern.
    assert specialized.metrics.ticks < decomposed.metrics.ticks

    # Shape 3: with less total work (no inspection round trips).
    assert specialized.metrics.total_ops < decomposed.metrics.total_ops
