"""ABL4 — asynchrony hides communication latency (paper §1).

"Asynchrony helps improve the performance of queries on distributed
graphs by using work from other stages to hide the effects of workload
imbalance and communication latency within a stage."

We sweep the network latency and compare the async engine against a
blocking variant in which a worker synchronously waits for the
acknowledgment of every remote message (classic RPC-style traversal).
Expected shape: async completion time is nearly flat in latency (the
wait is overlapped with other work), while blocking time grows linearly
and the gap widens with latency.
"""

from repro.graph import uniform_random_graph
from repro.runtime import run_query

from .conftest import bench_config, print_table

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1"
LATENCIES = [2, 8, 32]


def run_abl4():
    graph = uniform_random_graph(400, 2_400, seed=17, num_types=4)
    rows = []
    results = {}
    reference = None
    for latency in LATENCIES:
        async_run = run_query(
            graph, QUERY,
            bench_config(3, network_latency=latency,
                         blocking_remote=False),
        )
        blocking_run = run_query(
            graph, QUERY,
            bench_config(3, network_latency=latency,
                         blocking_remote=True),
        )
        if reference is None:
            reference = sorted(async_run.rows)
        assert sorted(async_run.rows) == reference
        assert sorted(blocking_run.rows) == reference
        results[latency] = (async_run.metrics.ticks,
                            blocking_run.metrics.ticks)
        rows.append((
            latency,
            async_run.metrics.ticks,
            blocking_run.metrics.ticks,
            "%.1fx" % (blocking_run.metrics.ticks
                       / max(1, async_run.metrics.ticks)),
        ))
    print_table(
        "ABL4: async DFT vs blocking (synchronous) remote hops",
        ("latency", "async ticks", "blocking ticks", "blowup"),
        rows,
    )
    return results


def test_abl4_async_vs_sync(benchmark):
    results = benchmark.pedantic(run_abl4, rounds=1, iterations=1)

    # Shape 1: async wins at every latency.
    for latency, (async_ticks, blocking_ticks) in results.items():
        assert async_ticks < blocking_ticks

    # Shape 2: the blocking engine degrades linearly with latency; the
    # async engine absorbs it (less-than-proportional growth).
    low, high = LATENCIES[0], LATENCIES[-1]
    latency_ratio = high / low
    blocking_growth = results[high][1] / max(1, results[low][1])
    async_growth = results[high][0] / max(1, results[low][0])
    assert blocking_growth > 0.5 * latency_ratio
    assert async_growth < 0.5 * blocking_growth

    # Shape 3: the async advantage widens with latency.
    assert results[high][1] / results[high][0] > \
        results[low][1] / results[low][0]
