"""ABL2 — strict flow control bounds memory without losing completion.

Paper §3.3: "To maintain a strict memory bound while satisfying
PGX.D/Async's termination condition, each stage n is independently
restricted such that on any machine m, no more than a[n][m] unprocessed
messages can be in transit to or stored for that stage" — and §1 claims
a "deterministic guarantee of query completion under a finite amount of
memory".

We sweep the flow-control window (and bulk size) downward on a heavy
query and report peak buffered contexts, completion time, and the
number of times flow control suspended a worker.  Expected shape: the
peak shrinks roughly with the budget, results never change, and the
query always completes — paying time for memory at the extreme end.
"""

from repro.graph import uniform_random_graph
from repro.runtime import run_query

from .conftest import bench_config, print_table

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1, c.value > 2000"
BUDGETS = [(16, 64), (8, 32), (4, 16), (2, 8), (1, 4), (1, 1)]


def run_abl2():
    graph = uniform_random_graph(800, 6_000, seed=5)
    reference = None
    measurements = []
    rows = []
    for window, bulk in BUDGETS:
        config = bench_config(
            4, flow_control_window=window, bulk_message_size=bulk
        )
        result = run_query(graph, QUERY, config)
        ordered = sorted(result.rows)
        if reference is None:
            reference = ordered
        assert ordered == reference, "flow control changed the answer"
        entry = (
            window,
            bulk,
            result.metrics.peak_buffered_contexts,
            result.metrics.ticks,
            result.metrics.flow_control_blocks,
        )
        measurements.append(entry)
        rows.append(entry)
    print_table(
        "ABL2: flow-control budget sweep on a heavy 2-hop query "
        "(%d matches)" % len(reference),
        ("window", "bulk", "peak buffered", "ticks", "fc blocks"),
        rows,
    )
    return measurements, len(reference)


def test_abl2_flow_control(benchmark):
    measurements, matches = benchmark.pedantic(
        run_abl2, rounds=1, iterations=1
    )
    largest = measurements[0]
    smallest = measurements[-1]

    # Shape 1: shrinking the budget shrinks the peak.  (Generous budgets
    # are not fully used — depth-first traversal rarely queues much — so
    # the contrast is between the tightest and the loosest run.)
    assert smallest[2] * 2 < largest[2]

    # Shape 2: under the minimal budget the peak is tiny compared to the
    # result set — memory is bounded by configuration, not by data.
    assert smallest[2] < matches / 50

    # Shape 3: the engine pays with suspension (and time), not failure.
    assert smallest[4] > largest[4]
    assert smallest[3] > largest[3]
