"""ABL5 — selectivity-based query scheduling (paper §5, future work).

The paper's own example: for

    SELECT person, band WHERE
      (person)-[:likes]->(song)-[:from]->(band),
      person.gender = "female", song.style = "rock",
      band.name = "Uknown1"

"we would prefer to start by matching the vertex band as it (probably)
has the lowest selectivity".  We build a music graph where exactly one
band matches, and compare the naive appearance-order plan (root =
person) with the selectivity-scheduled plan (root = band).  Expected
shape: identical results, with the scheduled plan doing a small
fraction of the naive plan's work.
"""

import random

from repro.graph import GraphBuilder
from repro.plan import PlannerOptions, SchedulingPolicy
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

PAPER_QUERY = (
    'SELECT person, band WHERE '
    '(person)-[:likes]->(song)-[:from_]->(band), '
    'person.gender = "female", song.style = "rock", '
    'band.name = "Uknown1"'
)


def build_music_graph(num_persons=3_000, num_songs=600, num_bands=60,
                      seed=23):
    rng = random.Random(seed)
    builder = GraphBuilder()
    persons = [
        builder.add_vertex(
            label="person",
            gender="female" if rng.random() < 0.5 else "male",
        )
        for _ in range(num_persons)
    ]
    songs = [
        builder.add_vertex(
            label="song",
            style="rock" if rng.random() < 0.3 else "pop",
        )
        for _ in range(num_songs)
    ]
    bands = [
        builder.add_vertex(
            label="band",
            name="Uknown1" if index == 0 else "band%d" % index,
        )
        for index in range(num_bands)
    ]
    for person in persons:
        for _ in range(5):
            builder.add_edge(person, rng.choice(songs), label="likes")
    for song in songs:
        builder.add_edge(song, rng.choice(bands), label="from_")
    return builder.build()


def run_abl5():
    graph = build_music_graph()
    engine = PgxdAsyncEngine(graph, bench_config(4))

    naive = engine.query(PAPER_QUERY)
    scheduled = engine.query(
        PAPER_QUERY,
        PlannerOptions(scheduling=SchedulingPolicy.SELECTIVITY),
    )
    assert sorted(naive.rows) == sorted(scheduled.rows)

    rows = [
        ("appearance order", naive.plan.stages[0].var,
         naive.metrics.total_ops, naive.metrics.ticks,
         naive.metrics.contexts_shipped),
        ("selectivity order", scheduled.plan.stages[0].var,
         scheduled.metrics.total_ops, scheduled.metrics.ticks,
         scheduled.metrics.contexts_shipped),
    ]
    print_table(
        "ABL5: query scheduling on the paper's person/song/band query "
        "(%d matches)" % len(naive.rows),
        ("plan", "root var", "total ops", "ticks", "contexts shipped"),
        rows,
    )
    return naive, scheduled


def test_abl5_scheduling(benchmark):
    naive, scheduled = benchmark.pedantic(run_abl5, rounds=1, iterations=1)

    # Shape 1: the scheduler picks the paper's preferred root.
    assert scheduled.plan.stages[0].var == "band"
    assert naive.plan.stages[0].var == "person"

    # Shape 2: dramatic work reduction (the paper's motivation).  Both
    # plans pay the full root scan, so the reduction is bounded by the
    # traversal work the naive plan wastes past its root.
    assert scheduled.metrics.total_ops * 4 < naive.metrics.total_ops
    assert scheduled.metrics.ticks < naive.metrics.ticks

    # Shape 3: and far less communication.
    assert scheduled.metrics.contexts_shipped < \
        naive.metrics.contexts_shipped
