"""Benchmark suite reproducing every table/figure (see DESIGN.md §4)."""
