"""TXT4 — stage-profiler overhead guard (observability ablation, part 3).

The plan-vs-actual profiler follows the tracer's and telemetry's
zero-cost-off contract: disabled, every machine holds ``None`` instead
of a :class:`MachineStageProfile` view, the bulk-kernel cache serves the
uninstrumented variant (the profiled counters are not even compiled in),
and the remaining cursor/route sites are one pointer comparison each.
This bench runs a FIG6-scale query with profiling off and on,
interleaved, and asserts:

* profiling never perturbs the simulation — identical ticks, ops, and
  rows whether the stage counters are recording or not; and
* the disabled path stays within 5% of the enabled run's cost (the same
  margin as TXT2/TXT3): if the "off" checks leaked work into the hot
  path, disabled would approach enabled and the margin would vanish.
"""

import time

from repro.plan import PlannerOptions
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

ROUNDS = 5


def run_profile_overhead_experiment(random_workload):
    graph, queries = random_workload
    query = queries[0]
    engine = PgxdAsyncEngine(graph, bench_config(8))
    profile_options = PlannerOptions(profile=True)

    # Warm up caches/lazy imports (both bulk-kernel variants compile
    # here) before timing anything.
    baseline = engine.query(query)
    profiled = engine.query(query, options=profile_options)

    # Profiling must not perturb the simulation.
    assert profiled.metrics.ticks == baseline.metrics.ticks
    assert profiled.metrics.total_ops == baseline.metrics.total_ops
    assert sorted(profiled.rows) == sorted(baseline.rows)
    assert baseline.profiler is None
    totals = profiled.profiler.stage_totals()
    assert totals[-1]["emitted"] == len(profiled.rows)

    disabled_times, enabled_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query)
        disabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query, options=profile_options)
        enabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

    disabled = sorted(disabled_times)[ROUNDS // 2]
    enabled = sorted(enabled_times)[ROUNDS // 2]
    print_table(
        "TXT4: stage-profiler overhead on a FIG6-scale query (median of %d)"
        % ROUNDS,
        ("mode", "median s", "scanned", "vs disabled"),
        [
            ("profiling disabled", "%.4f" % disabled, 0, "1.00x"),
            ("profiling enabled", "%.4f" % enabled,
             sum(entry["scanned"] for entry in totals),
             "%.2fx" % (enabled / disabled)),
        ],
    )
    return disabled, enabled


def test_txt4_profile_overhead(benchmark, random_workload):
    disabled, enabled = benchmark.pedantic(
        run_profile_overhead_experiment, args=(random_workload,),
        rounds=1, iterations=1,
    )
    # The profiling-off path must cost no more than 5% over the
    # profiling-on run's floor — the "off" configuration is the default
    # every non-observability benchmark and test pays for.
    assert disabled <= enabled * 1.05
