"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark module reproduces one table/figure of the paper (or one
ablation from DESIGN.md §4).  Benchmarks print the same row/series
structure the paper reports and assert the *shape* of the result —
absolute numbers are simulated ticks, not the authors' wall clock.

All simulated-time parameters live in ``BENCH_BASE``: 4 workers per
machine at 4 micro-ops per tick, network latency 4 ticks.  This places
one network round trip at roughly a hundred vertex operations, in the
same regime as InfiniBand microseconds versus nanosecond-scale memory
accesses on the paper's cluster.
"""

import pytest

from repro.cluster.config import ClusterConfig

#: Cost-model base shared by every benchmark.
BENCH_BASE = dict(workers_per_machine=4, ops_per_tick=4, network_latency=4)


def bench_config(num_machines, **overrides):
    params = dict(BENCH_BASE)
    params.update(overrides)
    return ClusterConfig(num_machines=num_machines, **params)


def print_table(title, header, rows):
    """Print a fixed-width table to the bench log."""
    print("\n=== %s ===" % title)
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def geometric_mean(values):
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values)) if values else 0.0


@pytest.fixture(scope="session")
def bsbm_workload():
    """The FIG5 workload: BSBM-like graph + the 10 parts of query 5."""
    from repro.workloads import generate_bsbm, query5_parts

    bsbm = generate_bsbm(num_products=10_000, seed=7, num_features=250)
    parts = query5_parts(bsbm, num_parts=10, seed=7)
    return bsbm, parts


@pytest.fixture(scope="session")
def random_workload():
    """The FIG6 workload: uniform random graph + 10 random 4-edge queries."""
    from repro.graph import uniform_random_graph
    from repro.workloads import random_query_suite

    graph = uniform_random_graph(2_500, 12_500, seed=11, num_types=8)
    queries = random_query_suite(num_queries=10, num_edges=4, seed=11)
    return graph, queries
