"""ABL9 — partitioning sensitivity (paper §4, experimental settings).

"The partitioning of vertices to machines is random, except that the
system attempts to distribute a similar number of edges to each
machine."  We compare that edge-balanced random placement against two
alternatives on a skewed (power-law) graph: plain hash placement and
contiguous block placement (which concentrates the hub-heavy id range
on few machines).

Expected shape: identical results under every partitioner; the paper's
edge-balanced random placement completes fastest (or ties hash) because
work is spread evenly, while block placement suffers from load
imbalance — the machines owning the hubs become stragglers.
"""

from repro.baselines import SharedMemoryEngine
from repro.graph import (
    BlockPartitioner,
    DistributedGraph,
    EdgeBalancedRandomPartitioner,
    HashPartitioner,
    power_law_graph,
)
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), c.type = 1"

PARTITIONERS = [
    ("edge-balanced random", EdgeBalancedRandomPartitioner(seed=0)),
    ("hash", HashPartitioner()),
    ("block", BlockPartitioner()),
]


def run_abl9():
    graph = power_law_graph(800, 6_400, seed=37, num_types=4)
    config = bench_config(4)
    reference = sorted(SharedMemoryEngine(graph).query(QUERY).rows)

    outcomes = {}
    rows = []
    for name, partitioner in PARTITIONERS:
        dist = DistributedGraph.create(
            graph, config.num_machines, partitioner=partitioner
        )
        engine = PgxdAsyncEngine(dist, config)
        result = engine.query(QUERY)
        assert sorted(result.rows) == reference
        edge_counts = dist.partition.edge_counts(graph)
        imbalance = float(edge_counts.max()) / max(1.0, edge_counts.mean())
        outcomes[name] = (result, imbalance)
        rows.append((
            name,
            "%.2f" % imbalance,
            result.metrics.ticks,
            result.metrics.contexts_shipped,
            result.metrics.total_idle_ticks,
        ))
    print_table(
        "ABL9: partitioning strategies on a power-law graph "
        "(%d matches)" % len(reference),
        ("partitioner", "edge imbalance", "ticks", "contexts", "idle"),
        rows,
    )
    return outcomes


def test_abl9_partitioning(benchmark):
    outcomes = benchmark.pedantic(run_abl9, rounds=1, iterations=1)
    balanced, balanced_imb = outcomes["edge-balanced random"]
    block, block_imb = outcomes["block"]

    # Shape 1: the paper's partitioner balances edges better than block
    # placement.  (A single hub can exceed the per-machine average on a
    # power-law graph, so perfect balance is unattainable by any
    # vertex-partitioner — the comparison is relative.)
    assert balanced_imb < block_imb

    # Shape 2: imbalance costs completion time.
    assert balanced.metrics.ticks < block.metrics.ticks
