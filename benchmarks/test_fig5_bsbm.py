"""FIG5 — BSBM query 5 parts, relative to single-machine PGX.

Paper Figure 5: the 10 parts of BSBM query 5 on an e-commerce property
graph, each bar the PGX.D/Async completion time on 1..32 machines
normalized to single-machine PGX.  Paper observations reproduced here:

* tiny parts (low similarity fan-out) do not scale — they stay above
  PGX at every machine count because fixed distributed overhead
  dominates ("these queries have inherently limited parallelism and
  they are very short");
* heavy parts drop below 1.0 once a few machines participate and keep
  improving, with diminishing returns at high machine counts.

The workload substitutes a scaled-down synthetic BSBM-shaped graph
(DESIGN.md §2); the y-axis is simulated ticks rather than milliseconds.
"""

from repro.baselines import SharedMemoryEngine
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, geometric_mean, print_table

MACHINES = [1, 2, 4, 8, 16, 32]


def run_fig5(bsbm, parts):
    graph = bsbm.graph
    pgx = SharedMemoryEngine(graph, bench_config(1))
    pgx_runs = [pgx.query(part) for part in parts]
    pgx_ticks = [run.metrics.ticks for run in pgx_runs]

    relatives = {}
    for machines in MACHINES:
        engine = PgxdAsyncEngine(graph, bench_config(machines))
        row = []
        for index, part in enumerate(parts):
            result = engine.query(part)
            assert sorted(result.rows) == sorted(pgx_runs[index].rows)
            row.append(result.metrics.ticks / max(1, pgx_ticks[index]))
        relatives[machines] = row

    header = ["machines"] + ["P%d" % (i + 1) for i in range(len(parts))]
    rows = [["PGX ticks"] + pgx_ticks]
    for machines in MACHINES:
        rows.append(
            ["%d" % machines]
            + ["%.2f" % value for value in relatives[machines]]
        )
    print_table(
        "FIG5: BSBM query-5 parts, time relative to single-machine PGX",
        header,
        rows,
    )
    return pgx_ticks, relatives


def test_fig5_bsbm(benchmark, bsbm_workload):
    bsbm, parts = bsbm_workload
    pgx_ticks, relatives = benchmark.pedantic(
        run_fig5, args=(bsbm, parts), rounds=1, iterations=1
    )
    heavy = [i for i, t in enumerate(pgx_ticks) if t >= 100]
    tiny = [i for i, t in enumerate(pgx_ticks) if t < 20]
    assert heavy, "workload must contain heavy parts"
    assert tiny, "workload must contain tiny parts"

    # Shape 1: heavy parts beat PGX at 8+ machines (paper: bars < 1).
    for index in heavy:
        assert relatives[8][index] < 1.0
        # Shape 2: and they improve vs the 1-machine configuration.
        assert relatives[32][index] < relatives[1][index]

    # Shape 3: tiny parts never benefit from distribution (paper: P8/P9
    # stay above PGX at every actually-distributed machine count).
    for index in tiny:
        for machines in MACHINES:
            if machines >= 2:
                assert relatives[machines][index] > 1.0

    # Shape 4: on average, more machines help up to the tail of the
    # sweep (diminishing, not negative, returns on this workload).
    means = {
        machines: geometric_mean(
            [relatives[machines][index] for index in heavy]
        )
        for machines in MACHINES
    }
    assert means[32] < means[2] < means[1]
