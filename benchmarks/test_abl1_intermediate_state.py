"""ABL1 — intermediate-state explosion: async DFT vs BFT vs joins.

Paper §1/§2: breadth-first traversals and join-based evaluation
"result in a potentially high maximum memory utilization due to the
volume of intermediate results and states.  Extending a pattern with
BFTs/joins can result in exponentially many active intermediate
results.  In contrast, with depth-first traversals, each worker ...
tries to complete a query instance before starting a new one, thus
reducing the number of active intermediate results."

We grow a path pattern one edge at a time and report the peak number of
live intermediate contexts in each engine.  Expected shape: BFT and
join peaks grow with the (exponentially growing) result count, while
the async DFT engine's peak stays bounded by its flow-control budget.
"""

from repro.baselines import BftEngine, JoinEngine
from repro.graph import uniform_random_graph
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

PATH_QUERIES = [
    "SELECT v0 WHERE (v0)-[]->(v1)",
    "SELECT v0 WHERE (v0)-[]->(v1)-[]->(v2)",
    "SELECT v0 WHERE (v0)-[]->(v1)-[]->(v2)-[]->(v3)",
    "SELECT v0 WHERE (v0)-[]->(v1)-[]->(v2)-[]->(v3)-[]->(v4)",
]


def run_abl1():
    graph = uniform_random_graph(600, 3_600, seed=13)
    config = bench_config(4)
    dft_engine = PgxdAsyncEngine(graph, config)
    bft_engine = BftEngine(graph, config)
    join_engine = JoinEngine(graph)

    rows = []
    measurements = []
    for edges, query in enumerate(PATH_QUERIES, start=1):
        dft = dft_engine.query(query)
        bft = bft_engine.query(query)
        join = join_engine.query(query)
        assert len(dft.rows) == len(bft.rows) == len(join.rows)
        entry = (
            edges,
            len(dft.rows),
            dft.metrics.peak_buffered_contexts,
            bft.metrics.peak_buffered_contexts,
            join.metrics.peak_buffered_contexts,
        )
        measurements.append(entry)
        rows.append(entry)
    print_table(
        "ABL1: peak live intermediate contexts while growing a path",
        ("edges", "matches", "DFT peak", "BFT peak", "join peak"),
        rows,
    )
    return measurements


def test_abl1_intermediate_state(benchmark):
    measurements = benchmark.pedantic(run_abl1, rounds=1, iterations=1)
    last = measurements[-1]
    _, matches, dft_peak, bft_peak, join_peak = last

    # Shape 1: BFT/joins materialize state proportional to the frontier.
    assert bft_peak > matches / 2
    assert join_peak >= matches

    # Shape 2: the async DFT engine keeps orders of magnitude less live
    # state on the longest pattern.
    assert dft_peak * 10 < bft_peak
    assert dft_peak * 10 < join_peak

    # Shape 3: DFT live state stays a vanishing fraction of the match
    # count as the pattern grows, while BFT's tracks it one-for-one.
    assert dft_peak < matches / 100
    assert measurements[-1][3] > 10 * measurements[0][3]
