"""TXT3 — telemetry overhead guard (observability ablation, part 2).

Live telemetry follows the tracer's zero-cost-off contract: disabled,
the runtime holds ``None`` and every instrumentation site (message
delivery, inbox wait, retransmit accounting, the per-tick sampler hook)
is one pointer comparison.  This bench runs a FIG6-scale query with
telemetry off and on, interleaved, and asserts:

* telemetry never perturbs the simulation — identical ticks, ops, and
  rows whether the sampler is recording or not; and
* the disabled path stays within 5% of the enabled run's cost (same
  margin as TXT2's tracer guard): if the "off" checks leaked work into
  the hot path, disabled would approach enabled and the margin would
  vanish.
"""

import time

from repro.plan import PlannerOptions
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

ROUNDS = 5


def run_telemetry_overhead_experiment(random_workload):
    graph, queries = random_workload
    query = queries[0]
    engine = PgxdAsyncEngine(graph, bench_config(8))
    telemetry_options = PlannerOptions(telemetry=True)

    # Warm up caches/lazy imports before timing anything.
    baseline = engine.query(query)
    sampled = engine.query(query, options=telemetry_options)

    # Telemetry must not perturb the simulation.
    assert sampled.metrics.ticks == baseline.metrics.ticks
    assert sampled.metrics.total_ops == baseline.metrics.total_ops
    assert sorted(sampled.rows) == sorted(baseline.rows)
    assert sampled.telemetry.sampler.num_samples > 0
    assert baseline.telemetry is None

    disabled_times, enabled_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query)
        disabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query, options=telemetry_options)
        enabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

    disabled = sorted(disabled_times)[ROUNDS // 2]
    enabled = sorted(enabled_times)[ROUNDS // 2]
    print_table(
        "TXT3: telemetry overhead on a FIG6-scale query (median of %d)"
        % ROUNDS,
        ("mode", "median s", "samples", "vs disabled"),
        [
            ("telemetry disabled", "%.4f" % disabled, 0, "1.00x"),
            ("telemetry enabled", "%.4f" % enabled,
             sampled.telemetry.sampler.num_samples,
             "%.2fx" % (enabled / disabled)),
        ],
    )
    return disabled, enabled


def test_txt3_telemetry_overhead(benchmark, random_workload):
    disabled, enabled = benchmark.pedantic(
        run_telemetry_overhead_experiment, args=(random_workload,),
        rounds=1, iterations=1,
    )
    # The telemetry-off path must cost no more than 5% over the
    # telemetry-on run's floor — the "off" configuration is the default
    # every non-observability benchmark and test pays for.
    assert disabled <= enabled * 1.05
