"""ABL8 — ghost nodes (PGX.D's replication of high-degree vertices).

Paper §4: "we disable the ghost nodes functionality of PGX.D" for the
experiments.  We implement the feature and measure what enabling it
buys on a hub-heavy (power-law) graph: when the target of a remote hop
is a ghost, its replicated properties let the sender run the next
stage's admission checks locally and skip messages for failing targets.

Expected shape: identical results; with ghosts enabled, a selective
target filter prunes a large share of remote messages, cutting shipped
contexts and completion time.  On a uniform graph with no hubs the
feature is inert (nothing qualifies as a ghost).
"""

from repro.baselines import SharedMemoryEngine
from repro.graph import DistributedGraph, power_law_graph
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

#: Hops travel INTO the hubs: the in-neighbor hop's targets are edge
#: sources, which the power-law generator draws from a Zipf — exactly
#: the vertices the ghost threshold replicates.
QUERY = (
    "SELECT a, b WHERE (a)<-[]-(b WITH type = 0), a.value > 2000"
)


def run_abl8():
    graph = power_law_graph(1_000, 12_000, seed=29, num_types=4)
    config = bench_config(4)
    reference = sorted(SharedMemoryEngine(graph).query(QUERY).rows)

    outcomes = {}
    rows = []
    for threshold in (None, 100, 30):
        dist = DistributedGraph.create(
            graph, config.num_machines, ghost_threshold=threshold
        )
        engine = PgxdAsyncEngine(dist, config)
        result = engine.query(QUERY)
        assert sorted(result.rows) == reference
        outcomes[threshold] = result
        rows.append((
            "off" if threshold is None else ">= %d" % threshold,
            dist.num_ghosts,
            result.metrics.ticks,
            result.metrics.work_messages,
            result.metrics.contexts_shipped,
            result.metrics.ghost_prunes,
        ))
    print_table(
        "ABL8: ghost nodes on a power-law graph (%d matches)"
        % len(reference),
        ("ghosts", "#ghosts", "ticks", "messages", "contexts", "prunes"),
        rows,
    )
    return outcomes


def test_abl8_ghost_nodes(benchmark):
    outcomes = benchmark.pedantic(run_abl8, rounds=1, iterations=1)
    off = outcomes[None]
    aggressive = outcomes[30]

    # Shape 1: the pre-filter engages and skips real traffic.
    assert aggressive.metrics.ghost_prunes > 0
    assert aggressive.metrics.contexts_shipped < \
        off.metrics.contexts_shipped

    # Shape 2: a lower threshold (more ghosts) prunes at least as much.
    assert outcomes[30].metrics.ghost_prunes >= \
        outcomes[100].metrics.ghost_prunes

    # Shape 3: the saved communication shows up as time.
    assert aggressive.metrics.ticks <= off.metrics.ticks
