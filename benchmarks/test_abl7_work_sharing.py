"""ABL7 — intra-machine work sharing (paper §1/§3.3/§4.1).

The paper attributes part of its small-query scaling losses to the
missing "intra-machine workload balancing capabilities": a computation
is one depth-first stack, so without work sharing a machine with one
hot traversal keeps one worker busy and the rest idle.  Our runtime
implements the sharing the paper describes ("computations ... submitted
internally to facilitate work-sharing") behind a config flag.

We run a single-origin query — whose traversal starts as exactly one
DFS — with sharing on and off.  Expected shape: identical results; with
sharing enabled the machine's workers split the traversal and the query
completes several times faster; idle time collapses.
"""

from repro.runtime import PgxdAsyncEngine
from repro.workloads import generate_bsbm, query5_parts

from .conftest import bench_config, print_table


def run_abl7():
    bsbm = generate_bsbm(num_products=3_000, seed=7, num_features=80)
    heavy_part = query5_parts(bsbm, num_parts=10, seed=7)[-1]

    outcomes = {}
    rows = []
    for sharing in (False, True):
        engine = PgxdAsyncEngine(
            bsbm.graph, bench_config(4, work_sharing=sharing)
        )
        result = engine.query(heavy_part)
        outcomes[sharing] = result
        rows.append((
            "enabled" if sharing else "disabled",
            result.metrics.ticks,
            result.metrics.total_idle_ticks,
            result.metrics.total_ops,
        ))
    print_table(
        "ABL7: intra-machine work sharing on a single-origin heavy query "
        "(%d matches)" % len(outcomes[True].rows),
        ("work sharing", "ticks", "idle worker-ticks", "ops"),
        rows,
    )
    return outcomes


def test_abl7_work_sharing(benchmark):
    outcomes = benchmark.pedantic(run_abl7, rounds=1, iterations=1)
    without = outcomes[False]
    with_sharing = outcomes[True]

    # Correctness is unaffected.
    assert sorted(without.rows) == sorted(with_sharing.rows)

    # Shape 1: sharing shortens the single-origin query substantially.
    assert with_sharing.metrics.ticks * 2 < without.metrics.ticks

    # Shape 2: worker idle time shrinks (the whole point).
    assert with_sharing.metrics.total_idle_ticks < \
        without.metrics.total_idle_ticks
