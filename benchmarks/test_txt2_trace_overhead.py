"""TXT2 — tracing overhead guard (observability ablation).

The tracer is designed to be zero-cost when disabled: the runtime holds
``None`` and every instrumentation site is a single pointer comparison.
This bench runs a FIG6-scale query with the tracer disabled and enabled,
interleaved to cancel out thermal/allocator drift, and asserts:

* tracing never perturbs the simulation — identical ticks and rows; and
* the disabled path costs < 5% wall time over the pre-tracing engine
  (measured as disabled-vs-enabled, where the enabled run pays the full
  event-allocation price, so disabled must be comfortably cheaper).
"""

import time

from repro.plan import PlannerOptions
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

ROUNDS = 5


def run_trace_overhead_experiment(random_workload):
    graph, queries = random_workload
    query = queries[0]
    engine = PgxdAsyncEngine(graph, bench_config(8))
    traced_options = PlannerOptions(trace=True)

    # Warm up caches/lazy imports before timing anything.
    baseline = engine.query(query)
    traced = engine.query(query, options=traced_options)

    # Tracing must not perturb the simulation.
    assert traced.metrics.ticks == baseline.metrics.ticks
    assert traced.metrics.total_ops == baseline.metrics.total_ops
    assert sorted(traced.rows) == sorted(baseline.rows)
    assert len(traced.trace) > 0

    disabled_times, enabled_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query)
        disabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

        start = time.perf_counter()  # repro: allow(RPR001) wall-clock overhead measurement is the experiment
        engine.query(query, options=traced_options)
        enabled_times.append(time.perf_counter() - start)  # repro: allow(RPR001) wall-clock overhead measurement is the experiment

    disabled = sorted(disabled_times)[ROUNDS // 2]
    enabled = sorted(enabled_times)[ROUNDS // 2]
    print_table(
        "TXT2: tracer overhead on a FIG6-scale query (median of %d)" % ROUNDS,
        ("mode", "median s", "events", "vs disabled"),
        [
            ("trace disabled", "%.4f" % disabled, 0, "1.00x"),
            ("trace enabled", "%.4f" % enabled, len(traced.trace),
             "%.2fx" % (enabled / disabled)),
        ],
    )
    return disabled, enabled


def test_txt2_trace_overhead(benchmark, random_workload):
    disabled, enabled = benchmark.pedantic(
        run_trace_overhead_experiment, args=(random_workload,),
        rounds=1, iterations=1,
    )
    # The disabled path must be within 5% of the enabled run's cost
    # floor: if the "zero-overhead" checks leaked allocation or work
    # into the disabled path, disabled would approach enabled from
    # below and this margin would vanish.
    assert disabled <= enabled * 1.05
