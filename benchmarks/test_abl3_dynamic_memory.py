"""ABL3 — dynamic memory management of flow control (paper §3.3).

The paper refines the static per-(stage, machine) windows of Potter et
al. with two mechanisms: completed stages donate their window capacity
to later stages, and machines borrow unused capacity from peers for the
same (stage, destination).  "Dynamic memory management improves the
utilization of the memory used for message buffers over the previous
flow control mechanism."

We run a multi-stage query under a tight budget on a *skewed* partition
(BlockPartitioner concentrates hot vertices) with dynamic flow control
on and off.  Expected shape: identical results; with dynamics enabled,
fewer flow-control suspensions and equal-or-better completion time for
the same configured budget — i.e. better utilization of the same
memory.
"""

from repro.graph import BlockPartitioner, DistributedGraph, power_law_graph
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)-[]->(d), b.type = 1"


def run_abl3():
    graph = power_law_graph(600, 4_200, seed=9)
    rows = []
    outcomes = {}
    for dynamic in (False, True):
        config = bench_config(
            4,
            flow_control_window=1,
            bulk_message_size=4,
            dynamic_flow_control=dynamic,
        )
        dist = DistributedGraph.create(
            graph, config.num_machines, partitioner=BlockPartitioner()
        )
        engine = PgxdAsyncEngine(dist, config)
        result = engine.query(QUERY)
        outcomes[dynamic] = result
        rows.append((
            "dynamic" if dynamic else "static",
            result.metrics.ticks,
            result.metrics.flow_control_blocks,
            result.metrics.quota_requests,
            result.metrics.quota_granted,
            result.metrics.peak_buffered_contexts,
        ))
    print_table(
        "ABL3: static vs dynamic flow control (skewed partition, "
        "window=1)",
        ("mode", "ticks", "fc blocks", "quota req", "quota granted",
         "peak buffered"),
        rows,
    )
    return outcomes


def test_abl3_dynamic_memory(benchmark):
    outcomes = benchmark.pedantic(run_abl3, rounds=1, iterations=1)
    static = outcomes[False]
    dynamic = outcomes[True]

    # Correctness is unaffected.
    assert sorted(static.rows) == sorted(dynamic.rows)

    # Shape 1: the borrowing machinery actually engages under pressure.
    assert dynamic.metrics.quota_requests > 0
    assert dynamic.metrics.quota_granted > 0
    assert static.metrics.quota_requests == 0

    # Shape 2: dynamic mode suspends workers less often — the same
    # configured budget is utilized better.
    assert dynamic.metrics.flow_control_blocks < \
        static.metrics.flow_control_blocks

    # Shape 3: and completes no slower (allowing a small tolerance for
    # scheduling noise).
    assert dynamic.metrics.ticks <= 1.1 * static.metrics.ticks
