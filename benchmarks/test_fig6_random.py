"""FIG6 — random 4-edge-pattern queries on a uniform random graph.

Paper Figure 6: "an artificial uniformly random graph ... 10 randomly
selected queries, with four edge patterns each", run on 2-32 machines,
with the queries split into *heavy* (seconds-scale) and *fast* groups:

    "PGX.D/Async achieves very good scalability on the heavy queries,
    since there is enough work to leverage the additional machines.  In
    contrast, for small queries ... adding more machines does not bring
    any benefits and, as expected, using more machines introduces some
    overhead."

The graph is scaled down (DESIGN.md §2): 200M vertices / 2B edges in
the paper versus a seeded uniform graph here; the time axis is
simulated ticks.
"""

from repro.runtime import PgxdAsyncEngine
from repro.workloads import split_heavy_fast

from .conftest import bench_config, geometric_mean, print_table

MACHINES = [2, 4, 8, 16, 32]


def run_fig6(graph, queries):
    ticks = {}
    work = {}
    reference_rows = {}
    for machines in MACHINES:
        engine = PgxdAsyncEngine(graph, bench_config(machines))
        for index, query in enumerate(queries):
            result = engine.query(query)
            ticks[(machines, index)] = result.metrics.ticks
            if machines == MACHINES[0]:
                work[index] = result.metrics.total_ops
                reference_rows[index] = sorted(result.rows)
            else:
                assert sorted(result.rows) == reference_rows[index]

    heavy, fast = split_heavy_fast(work)
    header = ["machines"] + [
        "Q%d%s" % (index + 1, "*" if index in heavy else "")
        for index in range(len(queries))
    ]
    rows = []
    for machines in MACHINES:
        rows.append(
            ["%d" % machines]
            + [ticks[(machines, index)] for index in range(len(queries))]
        )
    print_table(
        "FIG6: time (ticks) to complete 10 random queries "
        "(* = heavy group)",
        header,
        rows,
    )
    return ticks, heavy, fast


def test_fig6_random(benchmark, random_workload):
    graph, queries = random_workload
    ticks, heavy, fast = benchmark.pedantic(
        run_fig6, args=(graph, queries), rounds=1, iterations=1
    )
    assert heavy and fast, "the suite must split into heavy and fast"

    # Shape 1: heavy queries scale well — going 2 -> 32 machines cuts
    # completion time by at least 3x on geometric average.
    heavy_speedups = [
        ticks[(2, index)] / max(1, ticks[(32, index)]) for index in heavy
    ]
    assert geometric_mean(heavy_speedups) > 3.0

    # Shape 2: every heavy query improves monotonically-ish: 32 machines
    # always beat 2 machines.
    for index in heavy:
        assert ticks[(32, index)] < ticks[(2, index)]

    # Shape 3: fast queries gain little or regress — their best possible
    # speedup stays far below the heavy group's.
    fast_speedups = [
        ticks[(2, index)] / max(1, ticks[(32, index)]) for index in fast
    ]
    assert geometric_mean(fast_speedups) < 0.7 * geometric_mean(
        heavy_speedups
    )
