"""TXT1 — distributed overhead on tiny queries (paper §4.1, in text).

    "PGX takes 3 ms to complete a tiny query on a tiny graph, compared
    to 37 ms of PGX.D/Async on two machines, and more than 50 ms on 32
    machines."

We run a single-origin one-hop query on a tiny graph and report the
absolute simulated time of single-machine PGX versus the distributed
engine at 2..32 machines.  The reproduced shape: the distributed engine
is roughly an order of magnitude slower than PGX on such a query, and
the overhead *grows* with the machine count (termination and bootstrap
traffic scale with M).
"""

from repro.baselines import SharedMemoryEngine
from repro.graph import uniform_random_graph
from repro.runtime import PgxdAsyncEngine

from .conftest import bench_config, print_table

TINY_QUERY = "SELECT v, b WHERE (v WITH id() = 5)-[]->(b)"
MACHINES = [2, 4, 8, 16, 32]


def run_overhead_experiment():
    graph = uniform_random_graph(100, 400, seed=3)
    pgx = SharedMemoryEngine(graph, bench_config(1))
    pgx_ticks = pgx.query(TINY_QUERY).metrics.ticks

    rows = [("PGX (1 machine)", pgx_ticks, "1.0x")]
    distributed_ticks = []
    for machines in MACHINES:
        engine = PgxdAsyncEngine(graph, bench_config(machines))
        result = engine.query(TINY_QUERY)
        assert len(result.rows) == len(pgx.query(TINY_QUERY).rows)
        distributed_ticks.append(result.metrics.ticks)
        rows.append((
            "PGX.D/Async (%d machines)" % machines,
            result.metrics.ticks,
            "%.1fx" % (result.metrics.ticks / max(1, pgx_ticks)),
        ))
    print_table(
        "TXT1: tiny-query overhead (paper: 3 ms vs 37 ms vs >50 ms)",
        ("engine", "ticks", "vs PGX"),
        rows,
    )
    return pgx_ticks, distributed_ticks


def test_txt1_overhead(benchmark):
    pgx_ticks, distributed_ticks = benchmark.pedantic(
        run_overhead_experiment, rounds=1, iterations=1
    )
    # Shape 1: the distributed engine pays a large fixed overhead.
    assert distributed_ticks[0] > 5 * pgx_ticks
    # Shape 2: overhead grows with the machine count (37 ms -> >50 ms).
    assert distributed_ticks[-1] > distributed_ticks[0]
