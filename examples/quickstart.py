#!/usr/bin/env python
"""Quickstart: build a small social property graph and query it.

Walks through the whole public API surface:

1. construct a graph with :class:`GraphBuilder`;
2. start a :class:`PgxdAsyncEngine` on a simulated 4-machine cluster;
3. run the paper's introductory query and a few variations;
4. inspect execution metrics (simulated ticks, messages, memory peaks).

Run with::

    python examples/quickstart.py
"""

from repro import ClusterConfig, GraphBuilder, PgxdAsyncEngine


def build_social_graph():
    """A toy social network with people, items, and purchases."""
    builder = GraphBuilder()

    people = {}
    for name, age in [
        ("alice", 31), ("bob", 17), ("carol", 25),
        ("dave", 16), ("erin", 42), ("frank", 19),
    ]:
        people[name] = builder.add_vertex(label="person", name=name, age=age)

    items = {}
    for name, price in [
        ("laptop", 1400.0), ("phone", 900.0), ("book", 20.0),
        ("guitar", 1100.0), ("pen", 2.5),
    ]:
        items[name] = builder.add_vertex(label="item", name=name, price=price)

    friendships = [
        ("alice", "bob"), ("alice", "carol"), ("bob", "dave"),
        ("carol", "erin"), ("erin", "alice"), ("frank", "bob"),
    ]
    for src, dst in friendships:
        builder.add_edge(people[src], people[dst], label="friend")

    purchases = [
        ("alice", "laptop", 2015), ("bob", "phone", 2019),
        ("dave", "guitar", 2021), ("dave", "book", 2020),
        ("erin", "laptop", 2018), ("frank", "pen", 2022),
    ]
    for who, what, when in purchases:
        builder.add_edge(people[who], items[what], label="bought", when=when)

    return builder.build()


def main():
    graph = build_social_graph()
    print("graph:", graph)

    engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=4))

    # The paper's introductory example (Section 1).
    result = engine.query(
        "SELECT a, b WHERE (a WITH age > 18)-[:friend]->(b)"
    )
    print("\nadult friendships (vertex ids):")
    print(result.result_set.pretty())

    # The paper's Figure 1 query: minors who bought expensive items.
    result = engine.query(
        "SELECT p.name, b.when, i.name WHERE "
        "(p WITH age < 18) -[b:bought]-> (i WITH price > 1000)"
    )
    print("\nminors with expensive purchases:")
    print(result.result_set.pretty())

    # Aggregation (a paper §5 extension): purchases per person age band.
    result = engine.query(
        "SELECT COUNT(*), a.age - a.age % 10 AS decade WHERE "
        "(a)-[:bought]->(i) GROUP BY a.age - a.age % 10 ORDER BY decade"
    )
    print("\npurchases per age decade:")
    print(result.result_set.pretty())

    metrics = result.metrics
    print("\nexecution metrics (simulated):")
    print("  ticks            :", metrics.ticks)
    print("  work messages    :", metrics.work_messages)
    print("  contexts shipped :", metrics.contexts_shipped)
    print("  peak buffered    :", metrics.peak_buffered_contexts)
    print("  peak live frames :", metrics.peak_live_frames)


if __name__ == "__main__":
    main()
