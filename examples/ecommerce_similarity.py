#!/usr/bin/env python
"""E-commerce product similarity on the BSBM-like workload.

Reproduces the flavour of the paper's first experiment interactively:
generate the BSBM-shaped property graph, run BSBM query 5 ("find similar
products") for several origin products on both the single-machine PGX
baseline and the distributed engine, and compare the behaviour of heavy
versus tiny query parts.

Run with::

    python examples/ecommerce_similarity.py
"""

from repro import ClusterConfig, PgxdAsyncEngine
from repro.baselines import SharedMemoryEngine
from repro.workloads import generate_bsbm, query5_parts


def main():
    bsbm = generate_bsbm(num_products=300, seed=42)
    graph = bsbm.graph
    print("BSBM-like graph:", graph)
    print("  products :", len(bsbm.product_ids))
    print("  features :", len(bsbm.feature_ids))
    print("  offers   :", len(bsbm.offer_ids))
    print("  reviews  :", len(bsbm.review_ids))

    parts = query5_parts(bsbm, num_parts=10, seed=42)
    pgx = SharedMemoryEngine(graph)
    pgxd = PgxdAsyncEngine(graph, ClusterConfig(num_machines=8))

    print("\n%-5s %8s %12s %12s %10s" % (
        "part", "matches", "PGX ticks", "PGXD8 ticks", "messages"))
    for index, query in enumerate(parts, start=1):
        single = pgx.query(query)
        distributed = pgxd.query(query)
        assert sorted(single.rows) == sorted(distributed.rows)
        print("%-5s %8d %12d %12d %10d" % (
            "P%d" % index,
            len(single.rows),
            single.metrics.ticks,
            distributed.metrics.ticks,
            distributed.metrics.work_messages,
        ))

    print(
        "\nHeavy parts benefit from distribution; tiny parts are dominated"
        "\nby messaging and termination overhead — the Figure 5 story."
    )

    # Show an actual answer: the most similar products for one origin.
    heavy = parts[-1]
    result = pgxd.query(heavy)
    print("\nsample similar-product pairs (last part):")
    print(result.result_set.pretty(limit=10))


if __name__ == "__main__":
    main()
