#!/usr/bin/env python
"""Flow control in action: completing a heavy query under tiny budgets.

The paper's core systems claim is that depth-first traversal plus strict
flow control give "a deterministic guarantee of query completion under a
finite amount of memory."  This example runs the same heavy query with
progressively smaller flow-control windows and shows that:

* peak buffered contexts shrink with the configured window;
* the query still completes, with identical results, every time;
* the breadth-first baseline on the same query materializes orders of
  magnitude more intermediate state no matter what.

Run with::

    python examples/memory_bounds.py
"""

from repro import ClusterConfig, run_query, uniform_random_graph
from repro.baselines import BftEngine


def main():
    graph = uniform_random_graph(800, 6_000, seed=5)
    query = (
        "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), "
        "a.type = 1, c.value > 2000"
    )
    print("graph:", graph)
    print("query:", query)

    machines = 4
    reference_rows = None
    print("\n%-8s %-6s %16s %12s" % ("window", "bulk", "peak buffered",
                                     "ticks"))
    for window, bulk in [(16, 64), (8, 32), (4, 16), (2, 8), (1, 4), (1, 1)]:
        config = ClusterConfig(
            num_machines=machines,
            flow_control_window=window,
            bulk_message_size=bulk,
        )
        result = run_query(graph, query, config)
        rows = sorted(result.rows)
        if reference_rows is None:
            reference_rows = rows
        assert rows == reference_rows, "flow control changed the answer!"
        print("%-8d %-6d %16d %12d" % (
            window, bulk,
            result.metrics.peak_buffered_contexts,
            result.metrics.ticks,
        ))

    bft = BftEngine(graph, ClusterConfig(num_machines=machines)).query(query)
    assert sorted(bft.rows) == reference_rows
    print("\nBFT baseline peak intermediate state: %d contexts"
          % bft.metrics.peak_buffered_contexts)
    print("matches:", len(reference_rows))


if __name__ == "__main__":
    main()
