#!/usr/bin/env python
"""Live telemetry end to end: registry, time series, exporters, bench.

Runs one query with telemetry enabled and walks through everything the
subsystem records:

* the one-line summary and the Prometheus text exposition of the
  metrics registry (latency histograms, per-machine gauges/counters);
* the per-tick time series — the bounded-memory claim as a curve, with
  ``max(buffered_max) == peak_buffered_contexts <= budget`` checked
  explicitly;
* a dashboard frame rendered from the recorded series (the same frame
  ``python -m repro monitor`` animates live);
* the exporter round-trip (JSONL series back into typed rows);
* a quick benchmark document and a self-comparison through the
  regression gate.

Run with::

    python examples/monitoring.py
"""

from repro import ClusterConfig, PgxdAsyncEngine, uniform_random_graph
from repro.bench import compare, run_bench, validate
from repro.obs.dashboard import render_frame
from repro.obs.exporters import parse_series_jsonl, series_jsonl


def main():
    graph = uniform_random_graph(600, 3_000, seed=5)
    query = (
        "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), "
        "a.type = 1, c.value > 2000"
    )
    config = ClusterConfig(num_machines=4, seed=5, telemetry=True)
    engine = PgxdAsyncEngine(graph, config)

    print("graph:", graph)
    print("query:", query)
    result = engine.query(query)
    telemetry = result.telemetry

    print("\n--- summary " + "-" * 48)
    print("metrics  :", result.metrics.summary())
    print(telemetry.summary())

    print("\n--- the bounded-memory claim, as a curve " + "-" * 20)
    sampler = telemetry.sampler
    peak = sampler.peak("buffered_max")
    print("budget (stages * senders * bulk * (window+1)):", sampler.budget)
    print("peak buffered contexts, from the series     :", peak)
    print("peak buffered contexts, from QueryMetrics   :",
          result.metrics.peak_buffered_contexts)
    assert peak == result.metrics.peak_buffered_contexts <= sampler.budget

    print("\n--- dashboard frame (what `repro monitor` animates) " + "-" * 8)
    for line in render_frame(sampler, telemetry.meta["ticks"]):
        print(line)

    print("\n--- Prometheus exposition (first lines) " + "-" * 20)
    for line in telemetry.prometheus().splitlines()[:12]:
        print(line)

    print("\n--- series export round-trip " + "-" * 31)
    text = series_jsonl(sampler)
    meta, rows = parse_series_jsonl(text)
    print("exported %d samples x %d machines = %d rows; budget %d"
          % (meta["samples"], meta["num_machines"], len(rows),
             meta["budget"]))

    print("\n--- bench + regression gate " + "-" * 32)
    doc = run_bench(tag="example", quick=True, seed=0)
    assert validate(doc) == []
    regressions, lines = compare(doc, doc, threshold=25.0)
    for line in lines:
        print(" ", line)
    print("regressions vs self:", len(regressions))


if __name__ == "__main__":
    main()
