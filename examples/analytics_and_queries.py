#!/usr/bin/env python
"""Computational analytics and pattern matching on one cluster.

The paper positions PGX.D/Async as the pattern-matching complement to
PGX.D's bulk-synchronous computational analytics (§1: "graph analysis
is performed with two distinct but correlated methods").  This example
runs both sides against the *same* distributed graph:

1. PageRank, connected components and triangle counting through the
   BSP engine;
2. a PGQL query that uses the analytics output (top-ranked vertices
   become single-origin pattern queries).

Run with::

    python examples/analytics_and_queries.py
"""

from repro import ClusterConfig, DistributedGraph, uniform_random_graph
from repro.analytics import (
    BspEngine,
    PageRank,
    TriangleCount,
    WeaklyConnectedComponents,
)
from repro.runtime import PgxdAsyncEngine


def main():
    config = ClusterConfig(num_machines=4)
    graph = uniform_random_graph(1_500, 9_000, seed=3, num_types=5)
    dist = DistributedGraph.create(graph, config.num_machines)
    print("graph:", graph)

    analytics = BspEngine(dist, config)

    ranks = analytics.run(PageRank(iterations=15))
    print("\nPageRank: %d supersteps, %d messages, ticks=%d" % (
        ranks.supersteps, ranks.metrics.work_messages, ranks.metrics.ticks))
    top = sorted(ranks.values, key=ranks.values.get, reverse=True)[:5]
    print("top-5 vertices by rank:", top)

    components = analytics.run(WeaklyConnectedComponents())
    labels = set(components.values.values())
    print("\nweakly connected components:", len(labels))

    triangles = analytics.run(TriangleCount())
    print("triangles:", sum(triangles.values.values()))

    # Feed the analytics result into pattern matching: highly ranked
    # vertices are the ones many paths point AT, so explore who reaches
    # them in two hops and through which intermediaries.
    matcher = PgxdAsyncEngine(dist, config)
    print("\n2-hop in-neighborhoods of the top-ranked vertices:")
    for vertex in top[:3]:
        result = matcher.query(
            "SELECT c, b.type WHERE "
            "(a WITH id() = %d)<-[]-(b)<-[]-(c), c.value > 5000" % vertex
        )
        print("  vertex %5d: %4d matches, ticks=%d" % (
            vertex, len(result.rows), result.metrics.ticks))


if __name__ == "__main__":
    main()
