#!/usr/bin/env python
"""Matching semantics and advanced patterns side by side.

Demonstrates the paper's §5 "Graph Isomorphism" discussion and the
advanced pattern features:

* the same triangle query under homomorphism (the paper's default),
  isomorphism, and induced-subgraph semantics;
* a bounded variable-length path (future-work "recursive paths");
* the specialized common-neighbor hop engine.

Run with::

    python examples/matching_semantics.py
"""

from repro import ClusterConfig, PlannerOptions, uniform_random_graph
from repro.plan import MatchSemantics
from repro.runtime import PgxdAsyncEngine


def main():
    graph = uniform_random_graph(300, 2_400, seed=8, num_types=4)
    engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=4))
    print("graph:", graph)

    # --- semantics ----------------------------------------------------
    triangle = (
        "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), (c)-[]->(a)"
    )
    print("\ntriangle query under the three semantics:")
    for semantics in MatchSemantics:
        result = engine.query(
            triangle, PlannerOptions(semantics=semantics)
        )
        print("  %-13s %6d matches  (ticks=%d)" % (
            semantics.value, len(result.rows), result.metrics.ticks))
    print(
        "  homomorphism >= isomorphism >= induced, because each level\n"
        "  adds constraints: distinct vertices/edges, then no extra edges."
    )

    # --- variable-length paths ----------------------------------------
    reach = engine.query(
        "SELECT DISTINCT b WHERE (a WITH id() = 0)-/{1,3}/->(b) ORDER BY b"
    )
    print("\nvertices within 3 hops of vertex 0: %d" % len(reach.rows))

    # --- common neighbors ----------------------------------------------
    cn_query = (
        "SELECT a, b, c WHERE (a)-[]->(c)<-[]-(b), "
        "a.type = 0, b.type = 1, a.value < b.value"
    )
    plain = engine.query(
        cn_query, PlannerOptions(vertex_order=["a", "b", "c"])
    )
    optimized = engine.query(
        cn_query,
        PlannerOptions(vertex_order=["a", "b", "c"],
                       use_common_neighbors=True),
    )
    assert sorted(plain.rows) == sorted(optimized.rows)
    print("\ncommon-neighbor pattern (%d matches):" % len(plain.rows))
    print("  decomposed plan : %6d messages, ticks=%d" % (
        plain.metrics.work_messages, plain.metrics.ticks))
    print("  CN hop engine   : %6d messages, ticks=%d" % (
        optimized.metrics.work_messages, optimized.metrics.ticks))


if __name__ == "__main__":
    main()
