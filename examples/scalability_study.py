#!/usr/bin/env python
"""Scalability study on a uniform random graph (the Figure 6 story).

Runs one heavy and one fast random pattern query over 2..16 simulated
machines and prints how simulated completion time scales, illustrating
the paper's observation: heavy queries scale with the number of
machines, fast queries do not (fixed distributed overhead dominates).

Run with::

    python examples/scalability_study.py
"""

from repro import ClusterConfig, run_query, uniform_random_graph
from repro.workloads import random_query_suite


def main():
    graph = uniform_random_graph(2_000, 12_000, seed=11)
    print("graph:", graph)

    queries = random_query_suite(num_queries=6, num_edges=4, seed=11)

    # Rank the queries by work on a 2-machine baseline, pick extremes.
    baseline = {}
    for index, query in enumerate(queries):
        result = run_query(graph, query,
                           ClusterConfig(num_machines=2))
        baseline[index] = result.metrics.total_ops
    heavy_index = max(baseline, key=baseline.get)
    fast_index = min(baseline, key=baseline.get)
    print("heavy query :", queries[heavy_index][:100])
    print("fast query  :", queries[fast_index][:100])

    machine_counts = [2, 4, 8, 16]
    print("\n%-8s %14s %14s" % ("machines", "heavy ticks", "fast ticks"))
    for machines in machine_counts:
        config = ClusterConfig(num_machines=machines)
        heavy = run_query(graph, queries[heavy_index], config)
        fast = run_query(graph, queries[fast_index], config)
        print("%-8d %14d %14d" % (
            machines, heavy.metrics.ticks, fast.metrics.ticks))

    print(
        "\nHeavy query time should fall as machines are added; the fast"
        "\nquery flattens out (or worsens) because bootstrap, messaging"
        "\nand the termination protocol do not shrink with more machines."
    )


if __name__ == "__main__":
    main()
