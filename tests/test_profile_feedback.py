"""Plan-vs-actual observability: the stage profiler, the execution
profile (drift + skew), the planner feedback store, and the Prometheus
round-trip for hostile label payloads.

The load-bearing property: the profiler's guarded counters
(``scanned`` / ``emitted``) and the absorbed unconditional counters
(``visits`` / ``passes`` / ``remote_in``) must sum across machines to
the same totals whichever execution path ran — compiled bulk kernels,
micro-stepped cursors, or a chaotic network behind the reliability
layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, PlannerOptions, run_query
from repro.chaos import profile as chaos_profile
from repro.graph import uniform_random_graph
from repro.obs import (
    FeedbackStore,
    MetricsRegistry,
    parse_prometheus,
    prometheus_text,
    q_error,
    query_fingerprint,
)
from repro.obs.feedback import CORRECTION_MAX, CORRECTION_MIN
from repro.plan import SchedulingPolicy
from repro.runtime import PgxdAsyncEngine
from repro.workloads.skewed import skewed_workload

QUERY_POOL = [
    "SELECT a, b WHERE (a)-[]->(b)",
    "SELECT a, b WHERE (a WITH type = 1)-[]->(b WITH value > 5000)",
    "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.value < c.value",
    "SELECT a, COUNT(*) WHERE (a)-[]->(b) GROUP BY a",
]

PROFILE = PlannerOptions(profile=True)


def profiled_run(query, machines=3, seed=2, bulk_kernels=True, chaos=None):
    graph = uniform_random_graph(80, 360, seed=seed, num_types=4)
    config = ClusterConfig(
        num_machines=machines,
        bulk_kernels=bulk_kernels,
        chaos=chaos,
        reliability=chaos is not None,
    )
    return run_query(graph, query, config, options=PROFILE)


def rows_exact(query):
    """True when emitted rows equal result rows (no aggregation,
    grouping, DISTINCT, or LIMIT collapsing matches after emission)."""
    from repro.pgql.ast import Aggregate

    if query.group_by or query.distinct or query.limit is not None:
        return False
    return not any(
        isinstance(node, Aggregate)
        for item in query.select_items
        for node in item.expr.walk()
    )


def check_invariants(result):
    """The cross-machine sums must agree with the engine's own books."""
    totals = result.profiler.stage_totals()
    assert len(totals) == result.plan.num_stages
    # visits/passes/remote_in are absorbed from the unconditional stage
    # counters, so the profiler must reproduce stage_profile exactly.
    for entry, expected in zip(totals, result.stage_profile):
        assert entry["visits"] == expected["visits"]
        assert entry["passes"] == expected["passes"]
        assert entry["remote_in"] == expected["remote_in"]
    # emitted[s] is the continuation weight stage s produced — exactly
    # the contexts entering stage s+1 — and the output stage emits one
    # row per passing context (aggregation collapses rows *after*
    # emission, so this equals len(rows) only for non-aggregates).
    for stage in range(len(totals) - 1):
        assert totals[stage]["emitted"] == totals[stage + 1]["visits"]
    assert totals[-1]["emitted"] == totals[-1]["passes"]
    if rows_exact(result.plan.query):
        assert totals[-1]["emitted"] == len(result.rows)
    # A stage can only pass contexts it scanned candidates for (root
    # bootstrap stages scan nothing, hence no lower bound on scanned).
    for entry in totals:
        assert entry["scanned"] >= 0
    return totals


class TestStageProfilerProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        machines=st.integers(min_value=1, max_value=4),
        query=st.sampled_from(QUERY_POOL),
        bulk=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_totals_match_engine_counters(self, seed, machines, query,
                                          bulk):
        result = profiled_run(query, machines=machines, seed=seed,
                              bulk_kernels=bulk)
        check_invariants(result)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        query=st.sampled_from(QUERY_POOL),
    )
    @settings(max_examples=10, deadline=None)
    def test_kernels_and_cursors_profile_identically(self, seed, query):
        fast = profiled_run(query, seed=seed, bulk_kernels=True)
        slow = profiled_run(query, seed=seed, bulk_kernels=False)
        assert fast.profiler.stage_totals() == slow.profiler.stage_totals()
        assert [v.to_dict() for v in fast.profiler.views()] \
            == [v.to_dict() for v in slow.profiler.views()]

    def test_profile_survives_chaos(self):
        clean = profiled_run(QUERY_POOL[2], machines=4)
        chaotic = profiled_run(
            QUERY_POOL[2], machines=4,
            chaos=chaos_profile("soak", seed=5),
        )
        assert sorted(chaotic.rows) == sorted(clean.rows)
        totals = check_invariants(chaotic)
        assert totals[-1]["emitted"] == len(clean.rows)

    def test_profiling_off_by_default(self):
        graph = uniform_random_graph(60, 240, seed=3, num_types=4)
        result = run_query(graph, QUERY_POOL[0],
                           ClusterConfig(num_machines=2))
        assert result.profiler is None
        assert result.execution_profile() is None
        # The public stage_profile shape is pinned: profiling extras
        # (scanned/emitted) live on the profiler only.
        for entry in result.stage_profile:
            assert set(entry) == {"visits", "passes", "remote_in"}

    def test_profiling_never_perturbs_the_simulation(self):
        graph = uniform_random_graph(80, 360, seed=4, num_types=4)
        config = ClusterConfig(num_machines=3)
        baseline = run_query(graph, QUERY_POOL[2], config)
        profiled = run_query(graph, QUERY_POOL[2], config, options=PROFILE)
        assert profiled.metrics.ticks == baseline.metrics.ticks
        assert profiled.metrics.total_ops == baseline.metrics.total_ops
        assert sorted(profiled.rows) == sorted(baseline.rows)


class TestExecutionProfile:
    def cost_run(self, options=None):
        config = ClusterConfig(num_machines=4)
        graph, queries = skewed_workload(
            config, num_persons=120, num_bands=6, num_songs=30,
            fan_edges=360, likes_edges=240,
        )
        engine = PgxdAsyncEngine(graph, config)
        options = options or PlannerOptions(
            scheduling=SchedulingPolicy.COST, profile=True
        )
        return graph, queries, [
            engine.query(query, options) for query in queries
        ]

    def test_drift_join_and_q_error(self):
        _graph, _queries, results = self.cost_run()
        joined = False
        for result in results:
            profile = result.execution_profile()
            assert profile is not None
            for row in profile.operators:
                if row["actual"] is not None:
                    joined = True
                    assert row["q_error"] >= 1.0
                    assert row["q_error"] == q_error(
                        row["estimated"], row["actual"]
                    )
        assert joined, "no operator joined estimates against actuals"

    def test_explain_analyze_sections(self):
        _graph, _queries, results = self.cost_run()
        text = results[0].explain_analyze()
        assert "scanned=" in text and "emitted=" in text
        assert "estimated vs actual rows (q-error):" in text
        assert "worst q-error:" in text
        assert "per-machine skew" in text
        assert "straggler:" in text

    def test_drift_gauges_reach_prometheus(self):
        config = ClusterConfig(num_machines=4)
        graph, queries = skewed_workload(
            config, num_persons=120, num_bands=6, num_songs=30,
            fan_edges=360, likes_edges=240,
        )
        engine = PgxdAsyncEngine(graph, config)
        result = engine.query(
            queries[0],
            PlannerOptions(scheduling=SchedulingPolicy.COST, profile=True,
                           telemetry=True),
        )
        text = result.telemetry.prometheus()
        assert "repro_plan_q_error_max" in text
        assert "repro_stage_skew_ratio" in text
        parsed = parse_prometheus(text)
        drift = {name for name, _labels in parsed
                 if name.startswith("repro_plan_")}
        assert "repro_plan_estimated_rows" in drift
        assert "repro_plan_actual_rows" in drift


class TestFeedbackStore:
    def record_all(self, persons=120, bands=6, songs=30, fans=360,
                   likes=240):
        config = ClusterConfig(num_machines=4)
        graph, queries = skewed_workload(
            config, num_persons=persons, num_bands=bands, num_songs=songs,
            fan_edges=fans, likes_edges=likes,
        )
        engine = PgxdAsyncEngine(graph, config)
        store = FeedbackStore()
        options = PlannerOptions(scheduling=SchedulingPolicy.COST,
                                 profile=True)
        results = []
        for query in queries:
            result = engine.query(query, options)
            store.record(result.plan.query, result.plan.graph,
                         result.plan.choice, result.execution_profile())
            results.append(result)
        return graph, queries, engine, store, results

    def test_record_and_corrections(self):
        graph, _queries, _engine, store, results = self.record_all()
        assert len(store) > 0
        for result in results:
            factors = store.corrections(result.plan.query, graph)
            assert factors, "recorded query yielded no corrections"
            for factor in factors.values():
                assert CORRECTION_MIN <= factor <= CORRECTION_MAX
        # An unseen query has no entry and thus no corrections.
        other = uniform_random_graph(10, 20, seed=1, num_types=2)
        assert store.corrections(results[0].plan.query, other) == {}

    def test_round_trip_is_deterministic(self, tmp_path):
        _graph, _queries, _engine, store, _results = self.record_all()
        first = tmp_path / "feedback_a.json"
        second = tmp_path / "feedback_b.json"
        store.save(str(first))
        store.save(str(second))
        assert first.read_bytes() == second.read_bytes()
        loaded = FeedbackStore(str(first))
        assert loaded.to_dict() == store.to_dict()

    def test_feedback_identical_rows_never_worse(self):
        # The bench pillar's exact spec (skewed_planner_300p_q4): the CI
        # drift gate asserts the same dominance on the same simulation.
        graph, queries, engine, store, results = self.record_all(
            persons=300, bands=8, songs=40, fans=900, likes=600,
        )
        corrected_options = PlannerOptions(
            scheduling=SchedulingPolicy.COST, feedback=store
        )
        for query, baseline in zip(queries, results):
            rerun = engine.query(query, corrected_options)
            assert sorted(rerun.rows) == sorted(baseline.rows)
            assert rerun.metrics.ticks <= baseline.metrics.ticks
            assert rerun.metrics.total_ops <= baseline.metrics.total_ops
            assert rerun.metrics.work_messages \
                <= baseline.metrics.work_messages

    def test_fingerprint_scoped_by_graph_shape(self):
        small = uniform_random_graph(10, 20, seed=1, num_types=2)
        large = uniform_random_graph(20, 40, seed=1, num_types=2)
        config = ClusterConfig(num_machines=1)
        result = run_query(small, QUERY_POOL[0], config)
        query = result.plan.query
        assert query_fingerprint(query, small) \
            != query_fingerprint(query, large)
        assert query_fingerprint(query, small) \
            == query_fingerprint(query, small)


HOSTILE_VALUES = [
    'back\\slash',
    'quote"quote',
    'new\nline',
    '\\n literal backslash-n',
    'trailing backslash\\',
    'spaces and {braces} and = signs',
    '"',
    '\\',
    '\\\\n',
]


class TestPrometheusRoundTrip:
    def registry_with(self, values):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_hostile", "hostile labels",
                               labels=("name",))
        for index, value in enumerate(values):
            gauge.labels(value).set(index + 1)
        return registry

    def test_eof_terminator_and_sorted_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total", "b").inc()
        registry.gauge("repro_a", "a").set(1)
        text = prometheus_text(registry)
        assert text.endswith("# EOF\n")
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert families == sorted(families)

    def test_hostile_label_values_round_trip(self):
        registry = self.registry_with(HOSTILE_VALUES)
        parsed = parse_prometheus(prometheus_text(registry))
        seen = {}
        for (name, labels), value in parsed.items():
            if name == "repro_hostile":
                seen[dict(labels)["name"]] = value
        assert seen == {
            value: index + 1 for index, value in enumerate(HOSTILE_VALUES)
        }

    @given(value=st.text(
        alphabet=st.characters(
            codec="utf-8", exclude_characters="\r",
        ),
        min_size=0, max_size=24,
    ))
    @settings(max_examples=80, deadline=None)
    def test_any_label_value_round_trips(self, value):
        registry = self.registry_with([value])
        parsed = parse_prometheus(prometheus_text(registry))
        assert parsed[
            ("repro_hostile", frozenset({("name", value)}))
        ] == 1
