"""Integration tests: end-to-end query execution on the async engine."""

import pytest

from repro import (
    ClusterConfig,
    ClusterConfigError,
    DistributedGraph,
    PgxdAsyncEngine,
    run_query,
)


def rows(graph, query, machines=3, **config_kwargs):
    config = ClusterConfig(num_machines=machines, **config_kwargs)
    return sorted(
        run_query(graph, query, config, debug_checks=True).rows
    )


class TestPaperIntroQueries:
    def test_intro_query(self, social_graph):
        got = rows(
            social_graph,
            "SELECT a, b WHERE (a WITH age > 18)-[:friend]->(b)",
        )
        assert got == [(0, 1), (2, 0)]

    def test_figure1_query(self, social_graph):
        got = rows(
            social_graph,
            "SELECT p, b.when, i.name WHERE "
            "(p WITH age < 18) -[b:bought]-> (i WITH price > 1000)",
        )
        assert got == [(1, 2021, "laptop")]

    def test_single_vertex_origin(self, social_graph):
        got = rows(
            social_graph, "SELECT v, b WHERE (v WITH id() = 0)-[]->(b)"
        )
        assert got == [(0, 1), (0, 4)]

    def test_origin_out_of_range_matches_nothing(self, social_graph):
        got = rows(
            social_graph, "SELECT v WHERE (v WITH id() = 9999)-[]->(b)"
        )
        assert got == []


class TestResultConsistencyAcrossClusters:
    @pytest.mark.parametrize("machines", [1, 2, 4, 7])
    def test_machine_count_does_not_change_answers(self, random_graph,
                                                   machines):
        reference = rows(
            random_graph,
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = c.type",
            machines=1,
        )
        got = rows(
            random_graph,
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = c.type",
            machines=machines,
        )
        assert got == reference

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_worker_count_does_not_change_answers(self, random_graph,
                                                  workers):
        got = rows(
            random_graph,
            "SELECT a, b WHERE (a WITH type = 0)-[]->(b)",
            machines=3,
            workers_per_machine=workers,
        )
        reference = rows(
            random_graph,
            "SELECT a, b WHERE (a WITH type = 0)-[]->(b)",
            machines=1,
        )
        assert got == reference

    def test_determinism(self, random_graph):
        config = ClusterConfig(num_machines=4)
        query = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"
        first = run_query(random_graph, query, config)
        second = run_query(random_graph, query, config)
        assert first.rows == second.rows
        assert first.metrics.ticks == second.metrics.ticks


class TestEngineApi:
    def test_engine_reuse(self, social_graph):
        engine = PgxdAsyncEngine(
            social_graph, ClusterConfig(num_machines=2)
        )
        first = engine.query("SELECT a WHERE (a:person)")
        second = engine.query("SELECT i WHERE (i:item)")
        assert len(first) == 4
        assert len(second) == 2

    def test_prebuilt_distributed_graph(self, social_graph):
        dist = DistributedGraph.create(social_graph, 2)
        engine = PgxdAsyncEngine(dist, ClusterConfig(num_machines=2))
        assert len(engine.query("SELECT a WHERE (a:person)")) == 4

    def test_machine_count_mismatch_rejected(self, social_graph):
        dist = DistributedGraph.create(social_graph, 2)
        with pytest.raises(ClusterConfigError):
            PgxdAsyncEngine(dist, ClusterConfig(num_machines=4))

    def test_plan_without_execution(self, social_graph):
        engine = PgxdAsyncEngine(social_graph)
        plan = engine.plan("SELECT a WHERE (a)-[]->(b)")
        assert plan.num_stages == 2
        result = engine.execute_plan(plan)
        assert len(result) == social_graph.num_edges

    def test_columns_named(self, social_graph):
        engine = PgxdAsyncEngine(social_graph)
        result = engine.query(
            "SELECT a.name AS who, a.age WHERE (a:person)"
        )
        assert result.columns == ["who", "a.age"]


class TestPatternShapes:
    def test_single_vertex_pattern(self, social_graph):
        got = rows(social_graph, "SELECT a WHERE (a:person)")
        assert got == [(0,), (1,), (2,), (3,)]

    def test_cartesian_product(self, social_graph):
        got = rows(social_graph, "SELECT a, b WHERE (a:item), (b:item)")
        assert got == [(4, 4), (4, 5), (5, 4), (5, 5)]

    def test_cycle(self, social_graph):
        got = rows(
            social_graph,
            "SELECT a, b, c WHERE (a)-[:friend]->(b)-[:friend]->(c), "
            "(c)-[:friend]->(a)",
        )
        assert got == [(0, 1, 2), (1, 2, 0), (2, 0, 1)]

    def test_in_neighbor_hop(self, social_graph):
        got = rows(social_graph, "SELECT b, a WHERE (b)<-[:friend]-(a)")
        assert got == [(0, 2), (1, 0), (2, 1)]

    def test_self_loop_matching(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        v = builder.add_vertex()
        builder.add_edge(v, v)
        graph = builder.build()
        got = rows(graph, "SELECT a, b WHERE (a)-[]->(b)", machines=2)
        assert got == [(0, 0)]

    def test_empty_graph(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertex()
        graph = builder.build()
        got = rows(graph, "SELECT a, b WHERE (a)-[]->(b)", machines=2)
        assert got == []

    def test_parallel_edges_each_match(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        a = builder.add_vertex()
        b = builder.add_vertex()
        builder.add_edge(a, b, w=1)
        builder.add_edge(a, b, w=2)
        graph = builder.build()
        got = rows(graph, "SELECT a, e.w WHERE (a)-[e]->(b)", machines=2)
        assert got == [(0, 1), (0, 2)]

    def test_edge_check_enumerates_parallel_edges(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        a = builder.add_vertex()
        b = builder.add_vertex()
        builder.add_edge(a, b, w=1)
        builder.add_edge(a, b, w=2)
        builder.add_edge(a, b, w=3)
        graph = builder.build()
        # e1 is matched by the neighbor hop; e2 by the edge check.
        got = rows(
            graph,
            "SELECT e1.w, e2.w WHERE (a)-[e1]->(b), (a)-[e2]->(b)",
            machines=2,
        )
        assert len(got) == 9


class TestMetrics:
    def test_single_machine_sends_no_work_messages(self, random_graph):
        result = run_query(
            random_graph,
            "SELECT a, b WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=1),
        )
        assert result.metrics.work_messages == 0

    def test_results_counted(self, random_graph):
        result = run_query(
            random_graph,
            "SELECT a, b WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=3),
        )
        assert result.metrics.num_results == len(result.rows)
        assert result.metrics.num_results == random_graph.num_edges

    def test_messages_scale_with_machines(self, random_graph):
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        few = run_query(random_graph, query, ClusterConfig(num_machines=2))
        many = run_query(random_graph, query, ClusterConfig(num_machines=8))
        assert many.metrics.contexts_shipped > few.metrics.contexts_shipped
