"""Unit tests for step i: the logical plan."""

import pytest

from repro.errors import PlanError
from repro.graph.types import Direction
from repro.pgql import parse_and_validate
from repro.plan import (
    CartesianRootMatch,
    CommonNeighborMatch,
    EdgeCheck,
    NeighborMatch,
    RootVertexMatch,
    build_logical_plan,
)


def logical(text, **kwargs):
    return build_logical_plan(parse_and_validate(text), **kwargs)


class TestOperatorSequence:
    def test_single_edge(self):
        plan = logical("SELECT a WHERE (a)-[:f]->(b)")
        assert isinstance(plan.ops[0], RootVertexMatch)
        assert isinstance(plan.ops[1], NeighborMatch)
        assert plan.ops[1].direction is Direction.OUT
        assert plan.ops[1].edge_label == "f"

    def test_reverse_edge_normalized(self):
        plan = logical("SELECT a WHERE (a)<-[]-(b)")
        match = plan.ops[1]
        # Pattern edge is b -> a; traversal from a uses in-neighbors.
        assert match.src_var == "a"
        assert match.dst_var == "b"
        assert match.direction is Direction.IN

    def test_triangle_edge_check(self):
        plan = logical("SELECT a WHERE (a)-[]->(b)-[]->(c), (a)-[]->(c)")
        kinds = [type(op).__name__ for op in plan.ops]
        assert kinds == [
            "RootVertexMatch", "NeighborMatch", "NeighborMatch", "EdgeCheck",
        ]
        check = plan.ops[3]
        assert (check.src_var, check.dst_var) == ("a", "c")

    def test_disconnected_becomes_cartesian(self):
        plan = logical("SELECT a, b WHERE (a), (b)")
        assert isinstance(plan.ops[0], RootVertexMatch)
        assert isinstance(plan.ops[1], CartesianRootMatch)

    def test_vertex_order_override(self):
        plan = logical(
            "SELECT a WHERE (a)-[]->(b)", vertex_order=["b", "a"]
        )
        assert plan.ops[0].var == "b"
        match = plan.ops[1]
        assert match.src_var == "b"
        assert match.dst_var == "a"
        assert match.direction is Direction.IN

    def test_bad_vertex_order(self):
        with pytest.raises(PlanError):
            logical("SELECT a WHERE (a)-[]->(b)", vertex_order=["a", "z"])


class TestFilters:
    def test_filters_at_earliest_binding(self):
        plan = logical(
            "SELECT a WHERE (a WITH age > 1)-[]->(b), a.x = b.x"
        )
        assert len(plan.ops[0].filters) == 1  # age > 1 at root
        assert len(plan.ops[1].filters) == 1  # a.x = b.x once b bound

    def test_edge_filter_binds_with_edge(self):
        plan = logical("SELECT a WHERE (a)-[e]->(b), e.w > 2")
        assert len(plan.ops[1].filters) == 1

    def test_single_vertex_root_detection(self):
        plan = logical("SELECT v WHERE (v WITH id() = 17)-[]->(b)")
        assert plan.ops[0].single_vertex_id == 17

    def test_single_vertex_reversed_equality(self):
        plan = logical("SELECT v WHERE (v), 17 = v.id()")
        assert plan.ops[0].single_vertex_id == 17

    def test_no_single_vertex_for_inequality(self):
        plan = logical("SELECT v WHERE (v WITH id() < 17)-[]->(b)")
        assert plan.ops[0].single_vertex_id is None


class TestCommonNeighbors:
    def test_enabled(self):
        plan = logical(
            "SELECT a WHERE (a)-[]->(c)<-[]-(b)", use_common_neighbors=True
        )
        kinds = [type(op).__name__ for op in plan.ops]
        assert "CommonNeighborMatch" in kinds
        cn = next(
            op for op in plan.ops if isinstance(op, CommonNeighborMatch)
        )
        assert cn.dst_var == "c"
        assert {cn.left_var, cn.right_var} == {"a", "b"}

    def test_disabled_by_default(self):
        plan = logical("SELECT a WHERE (a)-[]->(c)<-[]-(b)")
        kinds = [type(op).__name__ for op in plan.ops]
        assert "CommonNeighborMatch" not in kinds
        # In appearance order (a, c, b), b joins as an in-neighbor of c.
        assert kinds == ["RootVertexMatch", "NeighborMatch", "NeighborMatch"]

    def test_not_applied_without_two_sources(self):
        plan = logical(
            "SELECT a WHERE (a)-[]->(b)", use_common_neighbors=True
        )
        assert isinstance(plan.ops[1], NeighborMatch)


class TestEdgeVarBinding:
    def test_edge_check_binds_edge_var(self):
        plan = logical("SELECT e.w WHERE (a)-[]->(b), (a)-[e]->(b)")
        checks = [op for op in plan.ops if isinstance(op, EdgeCheck)]
        assert len(checks) == 1
        assert checks[0].edge_var == "e"

    def test_all_pattern_edges_covered(self):
        plan = logical(
            "SELECT a WHERE (a)-[]->(b)-[]->(c), (c)-[]->(a), (b)-[]->(a)"
        )
        total_edges = 4
        bound = sum(
            1 for op in plan.ops
            if isinstance(op, (NeighborMatch, EdgeCheck))
        )
        assert bound == total_edges
