"""Unit tests for columnar property storage."""

import numpy as np
import pytest

from repro.errors import PropertyTypeError, UnknownPropertyError
from repro.graph.property_table import PropertyColumn, PropertyTable
from repro.graph.types import PropertyType


class TestPropertyColumn:
    def test_defaults_on_creation(self):
        column = PropertyColumn("age", PropertyType.LONG, 4)
        assert [column.get(i) for i in range(4)] == [0, 0, 0, 0]

    def test_set_get_numeric(self):
        column = PropertyColumn("w", PropertyType.DOUBLE, 3)
        column.set(1, 2.5)
        assert column.get(1) == 2.5
        assert column.get(0) == 0.0

    def test_get_returns_python_scalars(self):
        column = PropertyColumn("n", PropertyType.LONG, 2)
        column.set(0, 7)
        assert type(column.get(0)) is int

    def test_string_interning(self):
        column = PropertyColumn("name", PropertyType.STRING, 5)
        for i in range(5):
            column.set(i, "shared")
        assert column.get(3) == "shared"
        # All five rows share one interned payload.
        assert len(column._strings) == 2  # "" and "shared"

    def test_type_checked_set(self):
        column = PropertyColumn("age", PropertyType.LONG, 2)
        with pytest.raises(PropertyTypeError):
            column.set(0, "not a number")

    def test_fill(self):
        column = PropertyColumn("v", PropertyType.LONG, 3)
        column.fill([5, 6, 7])
        assert [column.get(i) for i in range(3)] == [5, 6, 7]

    def test_reordered_numeric(self):
        column = PropertyColumn("v", PropertyType.LONG, 3)
        column.fill([10, 20, 30])
        order = np.array([2, 0, 1])
        clone = column.reordered(order)
        assert [clone.get(i) for i in range(3)] == [30, 10, 20]

    def test_reordered_string(self):
        column = PropertyColumn("s", PropertyType.STRING, 3)
        column.fill(["a", "b", "c"])
        clone = column.reordered(np.array([1, 2, 0]))
        assert [clone.get(i) for i in range(3)] == ["b", "c", "a"]

    def test_selectivity(self):
        column = PropertyColumn("t", PropertyType.LONG, 4)
        column.fill([1, 1, 2, 3])
        assert column.selectivity(1) == 0.5
        assert column.selectivity(9) == 0.0

    def test_selectivity_wrong_type_is_unknown(self):
        column = PropertyColumn("t", PropertyType.LONG, 4)
        assert column.selectivity("nope") == 1.0

    def test_selectivity_string(self):
        column = PropertyColumn("s", PropertyType.STRING, 4)
        column.fill(["x", "x", "y", "x"])
        assert column.selectivity("x") == 0.75
        assert column.selectivity("absent") == 0.0


class TestPropertyTable:
    def test_add_column_idempotent(self):
        table = PropertyTable("vertex", 3)
        first = table.add_column("age", PropertyType.LONG)
        second = table.add_column("age", PropertyType.LONG)
        assert first is second

    def test_add_column_type_conflict(self):
        table = PropertyTable("vertex", 3)
        table.add_column("age", PropertyType.LONG)
        with pytest.raises(PropertyTypeError):
            table.add_column("age", PropertyType.STRING)

    def test_unknown_column(self):
        table = PropertyTable("edge", 3)
        with pytest.raises(UnknownPropertyError):
            table.column("missing")

    def test_contains_and_names(self):
        table = PropertyTable("vertex", 2)
        table.add_column("a", PropertyType.LONG)
        table.add_column("b", PropertyType.STRING)
        assert "a" in table and "b" in table and "c" not in table
        assert table.names() == ["a", "b"]

    def test_get_set(self):
        table = PropertyTable("vertex", 2)
        table.add_column("a", PropertyType.LONG)
        table.set("a", 1, 42)
        assert table.get("a", 1) == 42

    def test_reordered_table(self):
        table = PropertyTable("edge", 3)
        table.add_column("w", PropertyType.DOUBLE)
        table.set("w", 0, 0.1)
        table.set("w", 2, 0.3)
        clone = table.reordered(np.array([2, 1, 0]))
        assert clone.get("w", 0) == 0.3
        assert clone.get("w", 2) == 0.1
